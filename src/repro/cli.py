"""Command-line entry points mirroring the paper's Figure 6 demo:

    GraphFlat    -n node_table -e edge_table -h hops -s sampling_strategy;
    GraphTrainer -m model_name -i input -t train_strategy -c dist_configs;
    GraphInfer   -m model -i input -c infer_configs;

Here as ``python -m repro.cli <graphflat|graphtrainer|graphinfer> ...`` over
TSV node/edge tables and a directory-backed DFS.  Trained models are stored
as pickled ``(model_name, config, state_dict)`` triples next to the DFS so
GraphInfer can reload them without retraining.
"""

from __future__ import annotations

import argparse
import itertools
import pickle
import sys
from pathlib import Path

import numpy as np

from repro.core.graphflat import SAMPLING_REGISTRY, GraphFlatConfig, graph_flat
from repro.core.graphflat.pipeline import DATASET_SINKS
from repro.core.infer import GraphInferConfig, graph_infer
from repro.core.trainer import (
    GraphTrainer,
    TrainerConfig,
    decode_samples,
    open_sample_source,
)
from repro.datasets.io import read_edge_table, read_node_table
from repro.core.infer.pipeline import SLICE_TRANSPORTS
from repro.mapreduce import BACKEND_REGISTRY, PARTITIONERS, DistFileSystem
from repro.mapreduce.fs import DATASET_LAYOUTS
from repro.nn.gnn import MODEL_REGISTRY, build_model
from repro.proto.codec import decode_prediction
from repro.tasks import EDGE_TASKS, TASK_REGISTRY
from repro.transport import SHUFFLE_TRANSPORTS

__all__ = ["main", "save_model", "load_model"]


def save_model(path: str | Path, model, model_name: str) -> None:
    """Persist ``(name, config, state)`` — enough to rebuild anywhere."""
    payload = {
        "model_name": model_name,
        "config": model.config,
        "state": model.state_dict(),
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_model(path: str | Path):
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    model = build_model(payload["model_name"], **payload["config"])
    model.load_state_dict(payload["state"])
    return model


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dfs", required=True, help="root directory of the local DFS")
    parser.add_argument(
        "--backend",
        choices=["auto", *sorted(BACKEND_REGISTRY)],
        default="auto",
        help="MapReduce backend; 'auto' picks threads when --num-workers > 1, "
        "'processes' gives true multi-core scaling",
    )
    parser.add_argument(
        "--num-workers", "--workers", dest="num_workers", type=int, default=2,
        help="map/reduce worker count for the pooled backends",
    )
    parser.add_argument(
        "--spill-dir", default=None,
        help="shuffle spill directory (out-of-core); processes backend spills "
        "to a private temp dir by default",
    )
    parser.add_argument(
        "--shuffle-transport", choices=SHUFFLE_TRANSPORTS, default="local",
        help="how map-side runs reach reducers: 'local' (same-host spill "
        "files), 'tcp' (length-prefixed frames from a shuffle peer server; "
        "CRC trailers verified end-to-end), or 'shared-dir' (map tasks push "
        "runs into per-partition subdirectories of --spill-dir, e.g. a DFS "
        "mount); output is byte-identical across all three",
    )
    parser.add_argument(
        "--hosts", default=None,
        help="cluster roster as comma-separated host:port entries; the "
        "first entry is the coordinator (its base port seeds the "
        "control/PS/shuffle/broadcast port plan, 0 = ephemeral). "
        "Unset = single-host loopback",
    )
    parser.add_argument(
        "--shuffle-codec", choices=["binary", "pickle"], default="binary",
        help="spill record encoding: flat binary records (default; faster, "
        "smaller, byte-identical output) or per-record pickles",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempt budget per map/reduce task before the job fails",
    )
    parser.add_argument(
        "--task-timeout", dest="task_timeout_s", type=float, default=None,
        metavar="SECONDS",
        help="per-attempt deadline: an attempt running longer is discarded "
        "(worker pool killed under the processes backend) and retried",
    )
    parser.add_argument(
        "--speculation-factor", type=float, default=None, metavar="FACTOR",
        help="straggler speculation (processes backend): a task running "
        "longer than FACTOR x the phase's median completed duration races "
        "a duplicate attempt; first completion wins",
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_dist(parser: argparse.ArgumentParser) -> None:
    """Distributed-training knobs (§3.3's GraphTrainer ``dist_configs``)."""
    parser.add_argument(
        "--dist-workers", type=int, default=0,
        help="data-parallel training workers; 0 trains single-process, "
        ">= 1 trains against a parameter-server group",
    )
    parser.add_argument(
        "--dist-mode", choices=["async", "bsp", "ssp"], default="async",
        help="PS consistency: apply-on-arrival, barrier-averaged, or "
        "bounded staleness",
    )
    parser.add_argument(
        "--dist-backend", choices=["threads", "processes"], default="processes",
        help="worker execution: threads of this process, or real OS "
        "processes (true multi-core gradient computation)",
    )
    parser.add_argument(
        "--dist-transport", choices=["auto", "local", "shm", "tcp"],
        default="auto",
        help="PS transport: in-process lock-based state, shared-memory "
        "slabs (zero-copy version-keyed pulls), or a TCP parameter server "
        "(same version-keyed pull/push protocol over sockets; required "
        "for --dist-remote-workers)",
    )
    parser.add_argument(
        "--dist-remote-workers", type=int, default=0,
        help="train with workers that join over the network instead of "
        "spawning locally: opens a worker hub and blocks until this many "
        "worker ids are claimed by `repro.cli worker --join` processes "
        "(requires --dist-transport tcp and must equal --dist-workers)",
    )
    parser.add_argument(
        "--hub-port", type=int, default=0,
        help="worker-hub control port for --dist-remote-workers "
        "(0 = ephemeral; the chosen endpoint is printed before training)",
    )
    parser.add_argument(
        "--dist-servers", type=int, default=2,
        help="parameter-server shard count",
    )
    parser.add_argument(
        "--staleness", type=int, default=2,
        help="SSP staleness bound (steps the fastest worker may run ahead)",
    )


def _dist_config(args):
    """DistributedConfig from CLI knobs; invalid combinations exit with a
    usage-style message instead of a traceback."""
    from repro.ps import DistributedConfig

    tcp_host = "127.0.0.1"
    if getattr(args, "hosts", None):
        from repro.transport import ClusterSpec

        tcp_host = ClusterSpec.parse(args.hosts).coordinator.host
    try:
        return DistributedConfig(
            num_workers=max(args.dist_workers, 1),
            num_servers=args.dist_servers,
            mode=args.dist_mode,
            staleness=args.staleness,
            seed=args.seed,
            worker_backend=args.dist_backend,
            transport=None if args.dist_transport == "auto" else args.dist_transport,
            remote_workers=args.dist_remote_workers,
            tcp_host=tcp_host,
            hub_port=args.hub_port,
        )
    except ValueError as exc:
        raise SystemExit(f"error: invalid --dist configuration: {exc}")


def _topology_line(dist) -> str:
    remote = f" remote={dist.remote_workers}" if dist.remote_workers else ""
    return (
        f"ps topology: servers={dist.num_servers} workers={dist.num_workers} "
        f"mode={dist.mode} transport={dist.transport} "
        f"backend={dist.worker_backend} staleness={dist.staleness}{remote}"
    )


def _backend_name(args) -> str:
    if args.backend != "auto":
        return args.backend
    return "threads" if args.num_workers > 1 else "serial"


def _print_shuffle_summary(round_stats, codec: str, transport: str = "local") -> None:
    """One line of shuffle accounting so codec wins are visible without
    running the benchmark suite."""
    records = sum(rs.shuffled_records for rs in round_stats)
    spilled = sum(rs.shuffle_bytes_written for rs in round_stats)
    combined = sum(rs.combined_records for rs in round_stats)
    peak = max((rs.peak_reducer_buffer_bytes for rs in round_stats), default=0)
    detail = f", {combined} map-combined" if combined else ""
    if spilled:
        print(
            f"shuffle: {records} records, {spilled / 2**20:.2f} MiB spilled "
            f"({codec} codec, {len(round_stats)} rounds{detail}, "
            f"peak reducer buffer {peak / 2**20:.2f} MiB)"
        )
    else:
        print(
            f"shuffle: {records} records (in-memory, {len(round_stats)} "
            f"rounds{detail})"
        )
    _print_transport_summary(round_stats, transport)
    _print_skew_summary(round_stats)


def _print_transport_summary(round_stats, transport: str) -> None:
    """One line of transport accounting: which shuffle transport carried
    the runs and how many bytes actually crossed it.  The local transport
    moves nothing (reducers read the spill files in place), so it only
    reports the name."""
    sent = sum(rs.transport_bytes_sent for rs in round_stats)
    received = sum(rs.transport_bytes_received for rs in round_stats)
    if sent or received:
        print(
            f"transport: {transport} ({sent / 2**20:.2f} MiB sent, "
            f"{received / 2**20:.2f} MiB received)"
        )
    else:
        print(f"transport: {transport} (in-place, 0 bytes moved)")


def _print_skew_summary(round_stats) -> None:
    """Reducer balance: skew factor = max partition load / mean partition
    load, so 1.0 is perfectly balanced and N means one reducer carried the
    whole round.  Reported per worst round — a single hot reducer gates the
    round's wall clock no matter how idle the rest are."""
    rec_skews = [rs.records_skew() for rs in round_stats]
    if not any(rec_skews):
        return  # single-partition rounds only: skew is not meaningful
    byte_skews = [rs.bytes_skew() for rs in round_stats]
    worst = max(range(len(rec_skews)), key=lambda i: rec_skews[i])
    populated = [s for s in rec_skews if s]
    mean_rec = sum(populated) / len(populated)
    byte_part = ""
    if any(byte_skews):
        byte_part = f", bytes x{byte_skews[worst]:.2f} in worst round"
    print(
        f"partition skew: records x{rec_skews[worst]:.2f} worst round "
        f"(round {worst}), x{mean_rec:.2f} mean{byte_part}"
    )


def _print_fault_summary(round_stats) -> None:
    """One line of fault-tolerance accounting: how many attempts the run
    actually took, and what the chaos plane (deadlines, speculation,
    backoff) did about the slow and broken ones."""
    attempts = sum(rs.map_attempts + rs.reduce_attempts for rs in round_stats)
    injected = sum(rs.injected_failures for rs in round_stats)
    timeouts = sum(rs.timeouts for rs in round_stats)
    launched = sum(rs.speculative_launched for rs in round_stats)
    won = sum(rs.speculative_won for rs in round_stats)
    backoff = sum(rs.backoff_total_s for rs in round_stats)
    extras = []
    if injected:
        extras.append(f"{injected} injected failures")
    if timeouts:
        extras.append(f"{timeouts} timeouts")
    if launched:
        extras.append(f"speculative duplicates {won}/{launched} won")
    if backoff:
        extras.append(f"{backoff:.2f}s retry backoff")
    detail = ", ".join(extras) if extras else "no faults"
    print(f"fault tolerance: {attempts} task attempts ({detail})")


def _cmd_graphflat(args) -> int:
    nodes = read_node_table(args.node_table)
    edges = read_edge_table(args.edge_table)
    targets = None
    if args.targets:
        targets = np.loadtxt(args.targets, dtype=np.int64, ndmin=1)
    config = GraphFlatConfig(
        hops=args.hops,
        sampling=args.sampling,
        max_neighbors=args.max_neighbors,
        hub_threshold=args.hub_threshold,
        num_shards=args.shards,
        seed=args.seed,
        task=args.task,
        edge_targets=args.edge_targets,
        negative_ratio=args.negative_ratio,
        backend=_backend_name(args),
        num_workers=args.num_workers,
        spill_dir=args.spill_dir,
        shuffle_codec=args.shuffle_codec,
        shuffle_transport=args.shuffle_transport,
        hosts=args.hosts,
        partitioner=args.partitioner,
        dataset_layout=args.dataset_layout,
        dataset_sink=args.dataset_sink,
        max_attempts=args.max_attempts,
        task_timeout_s=args.task_timeout_s,
        speculation_factor=args.speculation_factor,
    )
    fs = DistFileSystem(args.dfs)
    # The config owns the runtime (graph_flat builds and closes it).
    result = graph_flat(nodes, edges, targets, config, fs=fs, dataset_name=args.output)
    unit = "edge samples" if args.task in EDGE_TASKS else "GraphFeatures"
    print(
        f"GraphFlat: wrote {result.num_targets} {unit} to "
        f"{args.dfs}/{args.output} ({args.dataset_layout} shards, "
        f"task {result.task}, "
        f"{len(result.hub_nodes)} hub nodes re-indexed, "
        f"mean neighborhood {result.neighborhood_nodes.mean():.1f} nodes)"
    )
    _print_shuffle_summary(result.round_stats, args.shuffle_codec,
                           args.shuffle_transport)
    _print_fault_summary(result.round_stats)
    return 0


def _cmd_graphtrainer(args) -> int:
    fs = DistFileSystem(args.dfs)
    # Layout-aware: columnar datasets train off mmap'd shards, row datasets
    # are decoded into memory — the trainer sees the same samples either way.
    source = open_sample_source(fs, args.input)
    if not len(source):
        print("no training samples found", file=sys.stderr)
        return 1
    probe = source.sample(0).graph_feature
    if source.label_kind == "none":
        print("training data is unlabeled", file=sys.stderr)
        return 1
    # The dataset records its task kind (edge-level tasks only; node
    # classification and legacy datasets record nothing), so `--task auto`
    # trains link-prediction output as link prediction without being told.
    recorded = fs.task(args.input)
    task = args.task
    if task == "auto" and recorded in EDGE_TASKS:
        task = recorded
    if recorded in EDGE_TASKS and task != recorded:
        print(
            f"dataset {args.input!r} holds {recorded} samples (two targets "
            f"per record); --task {task} cannot train on them",
            file=sys.stderr,
        )
        return 1
    if task in EDGE_TASKS:
        if task == "edge_classification":
            if source.label_kind != "int":
                print("edge classification needs int edge labels", file=sys.stderr)
                return 1
            num_classes = source.max_int_label() + 1
        else:
            # Link prediction scores pairs by embedding dot product — the
            # dense head is bypassed, so its width is nominal.
            num_classes = 2
    elif source.label_kind == "int":
        num_classes = source.max_int_label() + 1
        if task == "auto":
            task = "binary" if num_classes == 2 else "multiclass"
    else:
        num_classes = source.label_dim
        if task == "auto":
            task = "multilabel"

    kwargs = dict(
        in_dim=probe.feature_dim, hidden_dim=args.hidden,
        num_classes=num_classes, num_layers=args.layers, seed=args.seed,
    )
    if args.model == "gat":
        kwargs["num_heads"] = args.heads
    trainer_config = TrainerConfig(
        batch_size=args.batch_size, epochs=args.epochs, lr=args.lr,
        task=task, seed=args.seed,
        prefetch_backend=args.prefetch_backend,
        prefetch_workers=args.prefetch_workers,
        prefetch_transport=args.prefetch_transport,
        prefetch_slab_bytes=args.prefetch_slab_mb << 20,
    )
    if args.dist_workers >= 1:
        import functools

        from repro.ps import DistributedTrainer

        dist = _dist_config(args)
        factory = functools.partial(build_model, args.model, **kwargs)
        with DistributedTrainer(factory, trainer_config, dist) as trainer:
            if trainer.hub_endpoint is not None:
                hub_host, hub_port = trainer.hub_endpoint
                print(
                    f"worker hub: {hub_host}:{hub_port} (waiting for "
                    f"{dist.remote_workers} remote workers; join with "
                    f"`python -m repro.cli worker --join {hub_host}:{hub_port}`)",
                    flush=True,
                )
            history = trainer.fit(source)
            model = trainer.server_model()
            pulls = trainer.pull_stats()
        save_model(args.model_out, model, args.model)
        print(_topology_line(dist))
        print(
            f"GraphTrainer: {args.model} x{args.layers} on {len(source)} samples "
            f"({fs.layout(args.input)} shards, {dist.num_workers} "
            f"{dist.worker_backend} workers, {dist.transport} transport), "
            f"loss {history[0]['loss']:.4f} -> {history[-1]['loss']:.4f}, "
            f"{pulls['refreshes']}/{pulls['pulls']} pulls refreshed "
            f"({pulls['pull_bytes']} transport bytes), "
            f"model saved to {args.model_out}"
        )
        return 0
    model = build_model(args.model, **kwargs)
    trainer = GraphTrainer(model, trainer_config)
    history = trainer.fit(source)
    save_model(args.model_out, model, args.model)
    print(
        f"GraphTrainer: {args.model} x{args.layers} on {len(source)} samples "
        f"({fs.layout(args.input)} shards, {args.prefetch_backend} x"
        f"{args.prefetch_workers} prefetch), "
        f"loss {history[0]['loss']:.4f} -> {history[-1]['loss']:.4f}, "
        f"model saved to {args.model_out}"
    )
    return 0


def _sniff_kind(record: bytes) -> str:
    """Legacy row datasets (written before kinds landed in ``_META.json``)
    record nothing, so classify the first record by its wire format.  Only
    a record that is a well-formed prediction after failing to parse as a
    sample is called one — anything else raises, so corruption is reported
    instead of being silently misfiled."""
    try:
        decode_samples([record])
        return "samples"
    except ValueError:  # CodecError or a truncated varint: not a sample
        decode_prediction(record)  # corruption propagates from here
        return "predictions"


def _cmd_describe(args) -> int:
    """Operational tooling: inspect a DFS dataset (GraphFeature samples or
    prediction records) without loading a model."""
    fs = DistFileSystem(args.dfs)
    if not fs.exists(args.dataset):
        print(f"dataset {args.dataset!r} not found; available: {fs.list_datasets()}",
              file=sys.stderr)
        return 1
    # Only the inspected sample is materialized; the count comes from the
    # O(num_shards) metadata instead of a full dataset scan.
    records = list(itertools.islice(fs.read_dataset(args.dataset), args.sample))
    print(f"dataset:  {args.dataset}")
    print(f"layout:   {fs.layout(args.dataset)}")
    # Only non-default tasks are recorded, so both legacy datasets and
    # node-classification output render as the default with a marker.
    recorded_task = fs.task(args.dataset)
    print(f"task:     {recorded_task or 'node_classification (default/legacy)'}")
    print(f"shards:   {fs.num_shards(args.dataset)}")
    print(f"records:  {fs.count_records(args.dataset)}")
    print(f"bytes:    {fs.size_bytes(args.dataset)}")
    # The PS topology a `graphtrainer` run over this dataset would use with
    # the same --dist-* flags (validates the combination up front).  With no
    # --dist-workers, training is single-process and uses no PS at all.
    if args.dist_workers >= 1:
        print(_topology_line(_dist_config(args)))
    else:
        print("ps topology: none (single-process; pass --dist-workers N "
              "for a parameter-server run)")
    # The shuffle transport a pipeline run over this DFS would use with the
    # same --shuffle-transport/--hosts flags.
    hosts = args.hosts if args.hosts else "(single host)"
    print(f"transport: shuffle={args.shuffle_transport} hosts={hosts}")
    if not records:
        return 0
    # Dispatch on the recorded kind (metadata / columnar header) — decode
    # errors below are real corruption and propagate, never a reason to
    # reclassify the dataset.  Sniffing is reserved for legacy row datasets
    # that predate kind metadata.
    kind = fs.kind(args.dataset) or _sniff_kind(records[0])
    if kind == "predictions":
        scores = [decode_prediction(r)[1] for r in records]
        dims = {len(s) for s in scores}
        print(f"kind:     predictions (score dims {sorted(dims)})")
        return 0
    samples = decode_samples(records)
    nodes = np.array([s.graph_feature.num_nodes for s in samples])
    edges = np.array([s.graph_feature.num_edges for s in samples])
    print("kind:     GraphFeature samples")
    print(f"neighborhood nodes: mean {nodes.mean():.1f}, max {int(nodes.max())}")
    print(f"neighborhood edges: mean {edges.mean():.1f}, max {int(edges.max())}")
    labels = [s.label for s in samples if s.label is not None]
    if labels and np.ndim(labels[0]) == 0:
        unique, counts = np.unique(np.asarray(labels), return_counts=True)
        dist = ", ".join(f"{int(u)}: {c}" for u, c in zip(unique, counts))
        print(f"label distribution (first {len(labels)}): {dist}")
    elif labels:
        positives = float(np.mean([np.mean(label) for label in labels]))
        print(f"multilabel positive rate: {positives:.3f}")
    else:
        print("labels:   none (inference data)")
    return 0


def _cmd_worker(args) -> int:
    """Join a coordinator's worker hub and train the assigned shards
    (the remote half of ``graphtrainer --dist-remote-workers``)."""
    from repro.transport.worker import run_worker

    host, _, port = args.join.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: --join expects HOST:PORT, got {args.join!r}")
    stats = run_worker(
        host, int(port), capacity=args.capacity,
        join_timeout_s=args.join_timeout_s,
    )
    if not stats:
        print("worker: hub already fully subscribed, nothing to do")
        return 0
    for w in sorted(stats):
        s = stats[w]
        print(
            f"worker {w}: {s['refreshes']}/{s['pulls']} pulls refreshed "
            f"({s['pull_bytes']} transport bytes)"
        )
    return 0


def _cmd_graphinfer(args) -> int:
    model = load_model(args.model)
    nodes = read_node_table(args.node_table)
    edges = read_edge_table(args.edge_table)
    config = GraphInferConfig(
        sampling=args.sampling,
        max_neighbors=args.max_neighbors,
        hub_threshold=args.hub_threshold,
        num_shards=args.shards,
        seed=args.seed,
        backend=_backend_name(args),
        num_workers=args.num_workers,
        spill_dir=args.spill_dir,
        shuffle_codec=args.shuffle_codec,
        shuffle_transport=args.shuffle_transport,
        hosts=args.hosts,
        partitioner=args.partitioner,
        dataset_layout=args.dataset_layout,
        dataset_sink=args.dataset_sink,
        slice_transport=args.slice_transport,
        max_attempts=args.max_attempts,
        task_timeout_s=args.task_timeout_s,
        speculation_factor=args.speculation_factor,
        task=args.task,
    )
    targets = None
    if args.targets:
        targets = np.loadtxt(args.targets, dtype=np.int64, ndmin=1)
    candidates = None
    if args.candidates:
        candidates = np.loadtxt(args.candidates, dtype=np.int64, ndmin=2)
    fs = DistFileSystem(args.dfs)
    result = graph_infer(
        model, nodes, edges, config, fs=fs, dataset_name=args.output,
        targets=targets, candidates=candidates,
    )
    unit = "candidate edges" if args.task in EDGE_TASKS else "nodes"
    print(
        f"GraphInfer: scored {result.num_nodes} {unit} "
        f"({result.embedding_computations} embedding computations, "
        f"{result.slice_transport} slice transport) -> "
        f"{args.dfs}/{args.output}"
    )
    _print_shuffle_summary(result.round_stats, args.shuffle_codec,
                           args.shuffle_transport)
    _print_fault_summary(result.round_stats)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="AGL pipelines over TSV tables + local DFS"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    flat = sub.add_parser("graphflat", help="generate k-hop GraphFeatures")
    flat.add_argument("-n", "--node-table", required=True)
    flat.add_argument("-e", "--edge-table", required=True)
    flat.add_argument("--hops", type=int, default=2)
    flat.add_argument(
        "-s", "--sampling", choices=sorted(SAMPLING_REGISTRY), default="uniform"
    )
    flat.add_argument("--max-neighbors", type=int, default=32)
    flat.add_argument("--hub-threshold", type=int, default=1000)
    flat.add_argument("--targets", help="file with one target node id per line")
    flat.add_argument(
        "--task", choices=sorted(TASK_REGISTRY), default="node_classification",
        help="what a sample targets: a labeled node (default), or a target "
        "edge (link_prediction draws seeded negatives; edge_classification "
        "uses label= columns of the edge table)",
    )
    flat.add_argument(
        "--edge-targets", type=int, default=None, metavar="N",
        help="edge tasks: cap the number of positive target edges "
        "(deterministic seeded subsample); default keeps all of them",
    )
    flat.add_argument(
        "--negative-ratio", type=int, default=1, metavar="R",
        help="link prediction: negative edges drawn per positive edge",
    )
    flat.add_argument("--output", default="graphflat/output")
    flat.add_argument("--shards", type=int, default=4)
    flat.add_argument(
        "--dataset-layout", choices=DATASET_LAYOUTS, default="columnar",
        help="output shard layout: mmap-able columnar matrices (default) or "
        "framed per-sample row records",
    )
    flat.add_argument(
        "--dataset-sink", choices=DATASET_SINKS, default="auto",
        help="who writes the output shards: 'reducer' streams each final "
        "partition straight to its own columnar shard (constant parent "
        "memory), 'parent' collects and re-shards centrally; 'auto' picks "
        "reducer for columnar output",
    )
    flat.add_argument(
        "--partitioner", choices=PARTITIONERS, default="hash",
        help="shuffle partition strategy: 'hash' (crc32 of the key) or "
        "'planned' (degree-aware plan that spreads heavy keys across "
        "reducers; output stays byte-identical to hash)",
    )
    _add_common(flat)
    flat.set_defaults(func=_cmd_graphflat)

    train = sub.add_parser("graphtrainer", help="train a GNN from GraphFeatures")
    train.add_argument("-m", "--model", choices=sorted(MODEL_REGISTRY), required=True)
    train.add_argument("-i", "--input", required=True, help="DFS dataset of samples")
    train.add_argument("--model-out", required=True, help="file for the trained model")
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--hidden", type=int, default=16)
    train.add_argument("--heads", type=int, default=4)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=32)
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument(
        "--task",
        choices=["auto", "multiclass", "multilabel", "binary", *EDGE_TASKS],
        default="auto",
        help="training objective; 'auto' reads the task the dataset was "
        "flattened with (edge-level tasks are recorded in its metadata) "
        "and falls back to the label shape for node-level data",
    )
    train.add_argument(
        "--prefetch-workers", type=int, default=1,
        help="minibatch-preprocessing pool size (decode + vectorize)",
    )
    train.add_argument(
        "--prefetch-backend", choices=sorted(BACKEND_REGISTRY), default="threads",
        help="preprocessing pool backend; 'processes' shards preprocessing "
        "across cores while the main process trains",
    )
    train.add_argument(
        "--prefetch-transport", choices=["auto", "shm", "pickle"], default="auto",
        help="how prepared batches return from prefetch workers: shared-"
        "memory slabs (protocol-5 out-of-band buffers; kilobytes on the "
        "result pipe) or whole-batch pickles; 'auto' picks shm for the "
        "processes backend",
    )
    train.add_argument(
        "--prefetch-slab-mb", type=int, default=64,
        help="per-slot shm slab capacity in MiB; oversized batches fall "
        "back to the pickle pipe",
    )
    _add_common(train)
    _add_dist(train)
    train.set_defaults(func=_cmd_graphtrainer)

    infer = sub.add_parser("graphinfer", help="segmented-model inference")
    infer.add_argument("-m", "--model", required=True, help="trained model file")
    infer.add_argument("-n", "--node-table", required=True)
    infer.add_argument("-e", "--edge-table", required=True)
    infer.add_argument(
        "-s", "--sampling", choices=sorted(SAMPLING_REGISTRY), default="uniform"
    )
    infer.add_argument("--max-neighbors", type=int, default=10**9)
    infer.add_argument("--hub-threshold", type=int, default=10**9)
    infer.add_argument("--output", default="graphinfer/output")
    infer.add_argument("--shards", type=int, default=4)
    infer.add_argument("--targets",
                       help="file of node ids: score only these (pruned pipeline)")
    infer.add_argument(
        "--task", choices=sorted(TASK_REGISTRY), default="node_classification",
        help="node_classification scores every node; edge-level tasks score "
        "candidate edges (--candidates, defaulting to the graph's edges)",
    )
    infer.add_argument(
        "--candidates",
        help="edge tasks: file of candidate edges to score, one "
        "'src<TAB>dst' (or 'src dst') pair per line; default scores the "
        "graph's own edges",
    )
    infer.add_argument(
        "--dataset-layout", choices=DATASET_LAYOUTS, default="columnar",
        help="prediction shard layout: stacked columnar scores (default) or "
        "framed per-record rows",
    )
    infer.add_argument(
        "--dataset-sink", choices=DATASET_SINKS, default="auto",
        help="who writes the prediction shards: 'reducer' streams each "
        "final partition straight to its own shard, 'parent' collects and "
        "re-shards centrally; 'auto' picks reducer for columnar output",
    )
    infer.add_argument(
        "--slice-transport", choices=SLICE_TRANSPORTS, default="auto",
        help="how model slices reach reducers: 'shm' publishes them once "
        "into a shared-memory slab (zero parameter bytes per task), "
        "'pickle' embeds them in every pickled reducer; 'auto' picks shm "
        "under the processes backend",
    )
    infer.add_argument(
        "--partitioner", choices=PARTITIONERS, default="hash",
        help="shuffle partition strategy: 'hash' (crc32 of the key) or "
        "'planned' (degree-aware plan that spreads heavy keys across "
        "reducers; output stays byte-identical to hash)",
    )
    _add_common(infer)
    infer.set_defaults(func=_cmd_graphinfer)

    worker = sub.add_parser(
        "worker", help="join a coordinator's worker hub (remote training)"
    )
    worker.add_argument(
        "--join", required=True, metavar="HOST:PORT",
        help="worker-hub control endpoint printed by the coordinator's "
        "`graphtrainer --dist-remote-workers` run",
    )
    worker.add_argument(
        "--capacity", type=int, default=1,
        help="worker ids to claim from the hub (one trainer thread each)",
    )
    worker.add_argument(
        "--join-timeout", dest="join_timeout_s", type=float, default=60.0,
        metavar="SECONDS",
        help="how long to keep retrying the hub endpoint before giving up",
    )
    worker.set_defaults(func=_cmd_worker)

    describe = sub.add_parser("describe", help="inspect a DFS dataset")
    describe.add_argument("dataset", help="dataset name under the DFS root")
    describe.add_argument("--sample", type=int, default=256,
                          help="records to decode for statistics")
    _add_common(describe)
    _add_dist(describe)
    describe.set_defaults(func=_cmd_describe)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
