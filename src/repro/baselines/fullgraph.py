"""In-memory full-graph trainer — the DGL/PyG stand-in.

"DGL and PyG are designed as a single-machine system to deal with
industrial-scale graphs in-memory" (§1).  This trainer does exactly that:
the entire graph becomes one resident ``EdgeBlock``; every epoch is one
full-batch forward/backward over all labeled nodes.  No disk, no
GraphFeatures, no pruning (there is nothing to prune — every node is a
target) — and no way out when the graph outgrows RAM, which is the paper's
argument.  ``max_nodes_in_memory`` makes that failure mode explicit: the
trainer raises the same OOM-style error the paper reports for UUG on
DGL/PyG, rather than thrashing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.trainer.partition import EdgePartitionAggregator
from repro.datasets.base import GraphDataset
from repro.metrics import accuracy, micro_f1, roc_auc
from repro.nn import Adam, SGD, bce_with_logits_loss, no_grad, softmax_cross_entropy
from repro.nn.gnn.base import GNNModel
from repro.nn.gnn.block import BatchInputs, EdgeBlock

__all__ = ["FullGraphConfig", "FullGraphTrainer", "GraphTooLargeError"]


class GraphTooLargeError(MemoryError):
    """The in-memory baseline's honest OOM: the graph exceeds its budget."""


@dataclass
class FullGraphConfig:
    epochs: int = 10
    lr: float = 0.01
    optimizer: str = "adam"
    weight_decay: float = 0.0
    task: str = "multiclass"
    aggregation: str = "fused"
    """``"fused"`` = DGL proxy (segment reduction); ``"scatter"`` = PyG proxy
    (unbuffered scatter-add)."""
    max_nodes_in_memory: int | None = None
    seed: int = 0

    def __post_init__(self):
        if self.aggregation not in ("fused", "scatter"):
            raise ValueError("aggregation must be 'fused' or 'scatter'")


class FullGraphTrainer:
    """Full-batch training with the whole graph in memory."""

    def __init__(self, model: GNNModel, dataset: GraphDataset, config: FullGraphConfig):
        self.model = model
        self.dataset = dataset
        self.config = config
        graph = dataset.to_graph()
        if (
            config.max_nodes_in_memory is not None
            and graph.num_nodes > config.max_nodes_in_memory
        ):
            raise GraphTooLargeError(
                f"graph has {graph.num_nodes} nodes; in-memory budget is "
                f"{config.max_nodes_in_memory} (this is the OOM DGL/PyG hit on UUG)"
            )
        in_ptr, in_src, in_eid = graph.in_csr
        dst = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), np.diff(in_ptr))
        edge_feat = (
            None if graph.edges.features is None else graph.edges.features[in_eid]
        )
        self.block = EdgeBlock(
            in_src,
            dst,
            graph.num_nodes,
            graph.edges.weights[in_eid],
            edge_feat,
        )
        if config.aggregation == "fused":
            self.block.aggregator = EdgePartitionAggregator(self.block.dst, num_partitions=1)
        self._graph = graph
        cls = Adam if config.optimizer == "adam" else SGD
        self.optimizer = cls(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
        self.history: list[dict] = []

    # ------------------------------------------------------------------ util
    def _batch(self, node_ids: np.ndarray) -> BatchInputs:
        target_index = self._graph.index_of(node_ids)
        return BatchInputs(
            self._graph.node_features,
            target_index,
            [self.block] * self.model.num_layers,
        )

    def _loss(self, logits, labels):
        if self.config.task == "multilabel":
            return bce_with_logits_loss(logits, labels)
        return softmax_cross_entropy(logits, labels)

    # ------------------------------------------------------------------ train
    def train_epoch(self) -> float:
        self.model.train()
        ids = self.dataset.train_ids
        labels = self.dataset.labels_of(ids)
        batch = self._batch(ids)
        self.model.zero_grad()
        logits = self.model(batch)
        loss = self._loss(logits, labels)
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def fit(self, evaluate_on: str | None = None, metric: str | None = None) -> list[dict]:
        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            loss = self.train_epoch()
            entry = {"epoch": epoch, "loss": loss, "seconds": time.perf_counter() - start}
            if evaluate_on is not None:
                entry["val_metric"] = self.evaluate(evaluate_on, metric)
            self.history.append(entry)
        return self.history

    # ------------------------------------------------------------------ eval
    def evaluate(self, split: str = "test", metric: str | None = None) -> float:
        ids = self.dataset.splits[split]
        labels = self.dataset.labels_of(ids)
        self.model.eval()
        with no_grad():
            logits = self.model(self._batch(ids)).data
        if metric is None:
            metric = {"multiclass": "accuracy", "multilabel": "micro_f1", "binary": "auc"}[
                self.config.task
            ]
        if metric == "accuracy":
            return accuracy(logits, labels)
        if metric == "micro_f1":
            return micro_f1(logits, labels)
        if metric == "auc":
            return roc_auc(logits[:, 1] - logits[:, 0], labels)
        raise ValueError(f"unknown metric {metric!r}")
