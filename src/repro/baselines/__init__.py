"""Comparator systems — substrate **S10**.

The paper benchmarks AGL against DGL and PyG (Tables 3 and 4) and against
its own pre-GraphInfer "original inference module" (Table 5).  DGL/PyG are
not available offline, so we implement what they *are* for the purposes of
these experiments — in-memory full-graph trainers over the identical model
math — differing exactly where the real systems differ:

* :class:`FullGraphTrainer` with ``aggregation="fused"`` (DGL proxy): the
  whole graph resident in memory, full-batch epochs, fused C-level segment
  reduction for aggregation (DGL's gspmm analogue);
* ``aggregation="scatter"`` (PyG proxy): identical but with gather +
  unbuffered scatter-add aggregation (PyG's index_select/scatter_add
  analogue), which is the slower kernel — reproducing Table 4's
  DGL-faster-than-PyG ordering;
* :class:`OriginalInference`: per-GraphFeature forward over every target —
  recomputing shared neighborhoods once per target, which is precisely the
  repetition GraphInfer eliminates.
"""

from repro.baselines.fullgraph import FullGraphConfig, FullGraphTrainer
from repro.baselines.original import OriginalInference, OriginalInferenceResult

__all__ = [
    "FullGraphTrainer",
    "FullGraphConfig",
    "OriginalInference",
    "OriginalInferenceResult",
]
