"""The "original inference module based on GraphFeature" — Table 5 baseline.

Before GraphInfer, inference ran like training: GraphFlat materialises a
k-hop GraphFeature per target node, and the full model forward runs over
each (batch of) GraphFeature(s).  "Different k-hop neighborhoods could
overlap with each other, directly performing inference on GraphFeatures
could lead to massive repetitions of embedding inference" (§3.4) — a shared
neighbor's embedding is recomputed once per target that contains it.

This class counts those repetitions (``embedding_computations``) alongside
wall time, so the Table 5 comparison reports the mechanism, not just the
clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer.vectorize import TrainSample, decode_samples, vectorize_batch
from repro.nn import no_grad
from repro.nn.gnn.base import GNNModel

__all__ = ["OriginalInference", "OriginalInferenceResult"]


@dataclass
class OriginalInferenceResult:
    scores: dict[int, np.ndarray]
    seconds: float
    embedding_computations: int
    """Σ over batches of (merged subgraph nodes × layers) — the repetition
    GraphInfer eliminates (its count is exactly ``|V| × K``)."""
    subgraph_node_rows: int = 0
    batches: int = 0
    extra: dict = field(default_factory=dict)


class OriginalInference:
    """Per-GraphFeature forward over every target node."""

    def __init__(self, model: GNNModel, batch_size: int = 64, pruning: bool = True):
        self.model = model
        self.batch_size = batch_size
        self.pruning = pruning

    def run(self, samples) -> OriginalInferenceResult:
        """Infer prediction scores for each sample's target."""
        if samples and isinstance(samples[0], (bytes, bytearray)):
            samples = decode_samples(samples)
        samples = list(samples)
        scores: dict[int, np.ndarray] = {}
        embedding_computations = 0
        node_rows = 0
        start = time.perf_counter()
        self.model.eval()
        with no_grad():
            for lo in range(0, len(samples), self.batch_size):
                chunk: list[TrainSample] = samples[lo : lo + self.batch_size]
                batch, _ = vectorize_batch(
                    chunk, self.model.num_layers, pruning=self.pruning
                )
                logits = self.model(batch).data
                # Logit rows follow the merged batch's sorted target ids.
                ordered = np.unique([s.target_id for s in chunk])
                for row, target in enumerate(ordered):
                    scores[int(target)] = logits[row]
                node_rows += batch.num_nodes
                if self.pruning:
                    # With Equation 3, layer k only evaluates destinations
                    # still within reach; count actual aggregated rows.
                    for block in batch.layer_blocks:
                        embedding_computations += len(np.unique(block.dst))
                else:
                    embedding_computations += batch.num_nodes * self.model.num_layers
        return OriginalInferenceResult(
            scores=scores,
            seconds=time.perf_counter() - start,
            embedding_computations=embedding_computations,
            subgraph_node_rows=node_rows,
            batches=(len(samples) + self.batch_size - 1) // self.batch_size,
        )
