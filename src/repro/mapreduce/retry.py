"""Retry policy and straggler speculation for the MapReduce runtime.

:class:`RetryPolicy` is the runtime's answer to "which failures get the
MapReduce treatment, how many times, and how fast": a bounded attempt
budget, a *set* of retryable exception types (everything else propagates
immediately — a reducer bug should fail the job, not burn attempts), and a
deterministic seeded exponential backoff with jitter.  Determinism matters
for the same reason it does in the fault plan: a retried schedule must be
reproducible, so backoff draws are keyed by ``(job, task, attempt)``, not
by a shared mutable RNG whose state depends on execution order.

:class:`PhaseMonitor` tracks completed-attempt durations within one
map/reduce phase so the processes backend can spot stragglers: a task
running longer than ``speculation_factor x`` the phase's median completed
duration gets a duplicate attempt launched, and the first completion wins.
Safe because attempts are deterministic (both copies produce identical
output and spill writes are atomic + idempotent), so it does not matter
which copy's result is used.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from statistics import median

from repro.mapreduce.fault import (
    InjectedWorkerFailure,
    TaskTimeoutError,
    _uniform,
)
from repro.proto.framing import FrameCorruptionError

__all__ = ["RetryPolicy", "PhaseMonitor", "default_retryable"]


def default_retryable() -> tuple[type[BaseException], ...]:
    """The failures MapReduce re-execution is *designed* to absorb: injected
    crashes, dead worker processes, overrun deadlines, corrupted spill
    runs detected by the frame CRC, and — with a TCP shuffle or PS
    transport — dropped/reset connections and network timeouts
    (``ConnectionError`` covers resets and refused dials; ``TimeoutError``
    is ``socket.timeout`` since Python 3.10).  (``WorkerCrashError`` is
    resolved lazily to keep this module import-light for the backends
    layer.)"""
    from repro.mapreduce.backends import WorkerCrashError

    return (
        InjectedWorkerFailure,
        WorkerCrashError,
        TaskTimeoutError,
        FrameCorruptionError,
        ConnectionError,
        TimeoutError,
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How the runtime's attempt loop behaves.

    ``backoff_base_s=0`` (the default) disables sleeping entirely — local
    retries of deterministic tasks rarely benefit from waiting, and tests
    stay fast.  With a base, attempt ``n``'s delay is ``min(cap, base *
    2**n)`` scaled by a deterministic jitter draw in ``[1 - jitter, 1)``.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.0
    backoff_cap_s: float = 30.0
    jitter: float = 0.5
    seed: int = 0
    retryable: tuple[type[BaseException], ...] = field(default_factory=tuple)
    """Empty means :func:`default_retryable`."""

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def retryable_types(self) -> tuple[type[BaseException], ...]:
        return self.retryable or default_retryable()

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable_types())

    def backoff_s(self, job_name: str, task_id: str, attempt: int) -> float:
        """Delay before re-running ``task_id`` after failed attempt
        ``attempt`` — deterministic for a given (seed, job, task, attempt)."""
        if self.backoff_base_s <= 0.0:
            return 0.0
        delay = min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))
        if self.jitter > 0.0:
            u = _uniform(self.seed, f"backoff|{job_name}|{task_id}|{attempt}")
            delay *= 1.0 - self.jitter * u
        return delay


class PhaseMonitor:
    """Shared straggler detector for one execution phase.

    Coordinator threads record completed-attempt durations; a running
    attempt is a speculation candidate once enough siblings have finished
    (``min_completed``) and its elapsed time exceeds ``factor x`` the
    median completed duration (never less than ``min_runtime_s`` — with
    sub-millisecond medians everything looks like a straggler).  At most
    one duplicate per attempt; ``launched``/``won`` feed ``RunStats``.
    """

    def __init__(
        self,
        factor: float,
        min_completed: int = 3,
        min_runtime_s: float = 0.25,
    ):
        if factor <= 1.0:
            raise ValueError(f"speculation factor must be > 1, got {factor}")
        self.factor = factor
        self.min_completed = min_completed
        self.min_runtime_s = min_runtime_s
        self.launched = 0
        self.won = 0
        self._durations: list[float] = []
        self._lock = threading.Lock()

    def record(self, duration_s: float) -> None:
        with self._lock:
            self._durations.append(duration_s)

    def speculate_after_s(self) -> float | None:
        """Elapsed seconds after which a running attempt becomes a
        speculation candidate, or ``None`` while the phase has too few
        completions to call anything a straggler."""
        with self._lock:
            if len(self._durations) < self.min_completed:
                return None
            return max(self.factor * median(self._durations), self.min_runtime_s)

    def should_speculate(self, elapsed_s: float) -> bool:
        threshold = self.speculate_after_s()
        return threshold is not None and elapsed_s > threshold

    def count_launch(self) -> None:
        with self._lock:
            self.launched += 1

    def count_win(self) -> None:
        with self._lock:
            self.won += 1
