"""Partitioned shuffle spill: map-side sorted frame writes, reduce-side
streamed merge.

Each map task (or chain reducer) writes its output for reduce partition
``p`` to run files ``<root>/<job>.m<task>.p<p>.r<run>.<ext>``.  Within a
file, records are *stably sorted by canonical key bytes* (the map-side sort
of real MapReduce), so each reduce task can k-way-merge its partition's
files through a bounded buffer — one frame per file in flight — instead of
materializing the whole partition in RAM.  Merge streams are ordered
task-major then run-order and ties prefer the earlier stream, which makes
the merged stream exactly the stable sort of the old concatenation order:
grouping, and therefore job output, stays byte-identical.

Two write paths share that on-disk shape:

* :meth:`SpillLayout.write_map_output` — eager: one run (run 0) per
  partition from a fully materialized bucket list.
* :class:`SpillRunWriter` — the external sort: ``append`` streams records
  into bounded per-partition buffers and every time the run bounds fill,
  all non-empty buffers flush as key-sorted run files.  Peak writer memory
  is one run, not one task's whole output, no matter how large the shard.
  With an associative :class:`~repro.mapreduce.job.Combiner`, each key's
  buffered run is folded *before* it hits disk — for the binary codec
  directly on the encoded records (frame-level map-side combine).

Record encoding is pluggable (the ``codec`` knob):

* ``"pickle"`` — one pickle per record value; works for arbitrary jobs.
* ``"binary"`` — flat tagged records via :mod:`repro.proto.framing`; node
  and edge state goes to disk as raw little-endian blocks instead of pickled
  object graphs, which is the serialization tax AGL's C++ GraphFlat avoids
  with flat protobuf records (§3.2).  GraphFlat/GraphInfer register their
  record types' wire forms and default to this codec.

Keys are stored once per frame, as their canonical shuffle encoding
(:func:`repro.mapreduce.shuffle.key_bytes`) — it is simultaneously the merge
sort key and, via :func:`~repro.mapreduce.shuffle.decode_key`, the key
serialization.

Writes are atomic (temp file + ``os.replace``) so a task attempt that dies
mid-write can never leave a partial file for its re-execution to read, and
re-executions — being deterministic — simply overwrite.  ``cleanup`` also
glob-removes orphaned ``.tmp*`` files from attempts that died mid-write.
"""

from __future__ import annotations

import heapq
import io
import os
import pickle
from dataclasses import dataclass
from operator import itemgetter
from pathlib import Path

from repro.mapreduce.fault import take_read_fault

from repro.proto.framing import (
    FrameCorruptionError,
    decode_value,
    encode_list_payload,
    encode_value,
    iter_frames,
    read_stream_header,
    write_frame,
    write_stream_header,
)
from repro.mapreduce.shuffle import decode_key, key_bytes

__all__ = [
    "DEFAULT_RUN_BYTES",
    "DEFAULT_RUN_RECORDS",
    "SPILL_CODECS",
    "SpillLayout",
    "SpillRunWriter",
    "SpillWriteResult",
]

SPILL_CODECS = ("pickle", "binary")

_CODEC_IDS = {"pickle": 0, "binary": 1}
_CODEC_EXTS = {"pickle": "pkl", "binary": "bin"}

_READ_BUFFER_BYTES = 1 << 16
"""Per-file read buffer of the merge iterator — the explicit bound on how
much of a partition is ever resident during a streamed reduce."""

DEFAULT_RUN_RECORDS = 1 << 16
"""Run bound by record count — caps buffered *objects* for both codecs."""

DEFAULT_RUN_BYTES = 32 << 20
"""Run bound by encoded bytes (binary codec only, where per-record
encodings are produced at append time): payloads plus each frame's key
and fixed framing overhead, approximating the run's size on disk."""


_STREAM_HEADER_BYTES = 6  # AGLS magic + version + codec id

_FRAME_FIXED_BYTES = 8
"""Approximate per-frame overhead beyond key and payload: two length
varints (1-2 bytes each for typical frames) plus the 4-byte CRC trailer.
Used by the run writer's byte budget so flushes track file bytes."""


def _damage(data: bytes, kind: str) -> bytes:
    """In-memory injury of one spill file's bytes for the read faults.

    ``truncate-run`` chops the tail mid-CRC (the trailer is the last four
    bytes of every frame, so any short chop is guaranteed detectable);
    ``corrupt-run`` flips a byte in the middle of the frame region, which
    the per-frame CRC32 — covering key and payload — catches.  The header
    is left intact: the point is a *frame* integrity failure, not a codec
    mismatch."""
    if kind == "truncate-run" and len(data) > _STREAM_HEADER_BYTES + 3:
        return data[:-3]
    injured = bytearray(data)
    body = len(injured) - _STREAM_HEADER_BYTES
    if body > 0:
        injured[_STREAM_HEADER_BYTES + body // 2] ^= 0xFF
    return bytes(injured)


@dataclass(frozen=True)
class SpillWriteResult:
    """What a map task (or chain reducer) reports back to the parent after
    spilling: per-partition record counts, total bytes on disk, and the
    largest single flush (the writer's actual buffering high-water mark)."""

    counts: list[int]
    bytes_written: int = 0
    peak_buffer_bytes: int = 0
    partition_bytes: tuple[int, ...] | None = None
    """Per-partition file bytes (parallel to ``counts``), feeding the
    runtime's shuffle-skew accounting.  ``None`` from legacy callers."""


@dataclass(frozen=True)
class SpillLayout:
    """Where one job's shuffle files live, and how records are encoded.
    Picklable: it crosses the process boundary inside every map/reduce task
    of a spilling job."""

    root: str
    job_name: str
    num_partitions: int
    codec: str = "pickle"
    partition_tag: str = ""
    """Spill-tag of the partition function that routed records into this
    layout (``Partitioner.spill_tag()``) — embedded in run-file names so a
    spill directory self-describes how its partitions were assigned, and so
    runs of the same job under different partitioners can never be merged
    together.  ``""`` keeps the historical tag-less naming."""
    partition_subdirs: bool = False
    """Route each partition's runs into a ``p00007/`` peer directory under
    ``root`` (the shared-dir shuffle transport: writers push straight to
    the owning reducer's location on a DFS mount).  File *names* are
    unchanged — only the directory differs — so the merge order, and
    therefore the reduced output, is byte-identical to the flat layout."""

    def __post_init__(self):
        if self.codec not in SPILL_CODECS:
            raise ValueError(
                f"unknown spill codec {self.codec!r}; known: {SPILL_CODECS}"
            )
        if self.partition_tag and not self.partition_tag.isalnum():
            raise ValueError(
                f"partition tag {self.partition_tag!r} must be alphanumeric "
                "(it is embedded in spill file names)"
            )

    @property
    def _file_prefix(self) -> str:
        if self.partition_tag:
            return f"{self.job_name}.{self.partition_tag}"
        return self.job_name

    def path(self, map_task: int, partition: int) -> Path:
        """Path of the first (and, for eager writes, only) run file."""
        return self.run_path(map_task, partition, 0)

    def run_path(self, map_task: int, partition: int, run: int) -> Path:
        """Path of one sorted run.  Runs are numbered contiguously from 0
        per ``(map_task, partition)``; the reader scans until the first
        missing index."""
        ext = _CODEC_EXTS[self.codec]
        name = f"{self._file_prefix}.m{map_task:05d}.p{partition:05d}.r{run:05d}.{ext}"
        if self.partition_subdirs:
            return Path(self.root) / f"p{partition:05d}" / name
        return Path(self.root) / name

    # ------------------------------------------------------------ record codec
    def _encode_payload(self, values: list) -> bytes:
        """Encode one key-run (every value a map task emitted under one
        key).  Run-level framing amortizes per-frame overhead and, for the
        pickle codec, lets same-key records share pickle memoization."""
        if self.codec == "binary":
            return encode_value(values)
        return pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode_payload(self, payload: bytes) -> list:
        if self.codec == "binary":
            values, end = decode_value(payload)
            if end != len(payload):
                raise FrameCorruptionError(
                    f"{len(payload) - end} trailing bytes after spill run "
                    "(corrupt length varint inside the payload)"
                )
            return values
        return pickle.loads(payload)

    # ------------------------------------------------------------- map side
    def run_writer(
        self,
        map_task: int,
        combiner=None,
        run_records: int = DEFAULT_RUN_RECORDS,
        run_bytes: int = DEFAULT_RUN_BYTES,
    ) -> "SpillRunWriter":
        """Streaming bounded-memory writer for one task's partitioned
        output — see :class:`SpillRunWriter`."""
        return SpillRunWriter(
            self, map_task, combiner=combiner, run_records=run_records, run_bytes=run_bytes
        )

    def write_map_output(self, map_task: int, buckets: list[list[tuple]]) -> SpillWriteResult:
        """Spill one map task's partitioned output eagerly (one run per
        partition); returns per-partition record counts and bytes written
        (the only things shipped back to the parent)."""
        Path(self.root).mkdir(parents=True, exist_ok=True)
        counts = []
        partition_bytes = []
        for partition, bucket in enumerate(buckets):
            counts.append(len(bucket))
            if not bucket:
                partition_bytes.append(0)
                continue
            final = self.path(map_task, partition)
            if self.partition_subdirs:
                final.parent.mkdir(exist_ok=True)
            tmp = final.with_suffix(f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                partition_bytes.append(self._write_bucket(fh, bucket))
            os.replace(tmp, final)
        return SpillWriteResult(
            counts, sum(partition_bytes), partition_bytes=tuple(partition_bytes)
        )

    def _write_bucket(self, fh, bucket: list[tuple]) -> int:
        """Encode one bucket as key-sorted run frames — one frame per
        distinct key, holding that key's values in emission order (so the
        merged stream reproduces the in-memory shuffle's value order
        exactly); returns bytes written."""
        runs: dict[bytes, list] = {}
        for key, value in bucket:
            kb = key_bytes(key)
            values = runs.get(kb)
            if values is None:
                runs[kb] = [value]
            else:
                values.append(value)
        written = write_stream_header(fh, _CODEC_IDS[self.codec])
        for kb in sorted(runs):
            written += write_frame(fh, kb, self._encode_payload(runs[kb]))
        return written

    # ---------------------------------------------------------- reduce side
    def _iter_task_runs(self, map_task: int, partition: int):
        """Run files one task wrote for one partition, in run order."""
        run = 0
        while True:
            path = self.run_path(map_task, partition, run)
            if not path.exists():
                return
            yield path
            run += 1

    def _iter_file(self, path: Path):
        """Yield ``(key_bytes, values)`` run frames from one spill file,
        streamed through a bounded buffer.

        An armed read fault (the ``corrupt-run``/``truncate-run`` kinds of
        :class:`~repro.mapreduce.fault.FaultPlan`) damages this attempt's
        *view* of the first file it opens — never the bytes on disk — so
        the frame CRC machinery fails the attempt loudly and its retry,
        reading the intact file, reproduces byte-identical output."""
        fault = take_read_fault()
        with open(path, "rb", buffering=_READ_BUFFER_BYTES) as fh:
            if fault is not None:
                fh = io.BytesIO(_damage(fh.read(), fault))
            codec_id = read_stream_header(fh)
            if codec_id != _CODEC_IDS[self.codec]:
                raise ValueError(
                    f"spill file {path} written with codec id {codec_id}, "
                    f"layout expects {self.codec!r}"
                )
            for kb, payload in iter_frames(fh):
                yield kb, self._decode_payload(payload)

    def _iter_merged(self, partition: int, num_map_tasks: int):
        """K-way merge of one partition's run files: globally key-sorted
        ``(key_bytes, values)`` run stream, holding one frame per file in
        memory.  Streams are ordered task-major then run-order and
        ``heapq.merge`` is stable, so same-key values concatenate in their
        original emission order — exactly the order a single eager sorted
        write per task would have produced."""
        streams = []
        for map_task in range(num_map_tasks):
            for path in self._iter_task_runs(map_task, partition):
                streams.append(self._iter_file(path))
        if not streams:
            return
        if len(streams) == 1:
            yield from streams[0]
            return
        yield from heapq.merge(*streams, key=itemgetter(0))

    def iter_partition(self, partition: int, num_map_tasks: int):
        """Streamed ``(key, value)`` pairs of one partition, key-sorted."""
        for key, values in self.iter_groups(partition, num_map_tasks):
            for value in values:
                yield key, value

    def iter_groups(self, partition: int, num_map_tasks: int):
        """Streamed reduce groups ``(key, values)`` — the external-merge
        replacement for ``group_sorted(read_partition(...))``: peak memory
        is one group (plus one buffered run per spill file), not the whole
        partition."""
        current_kb: bytes | None = None
        current_key = None
        acc: list = []
        for kb, values in self._iter_merged(partition, num_map_tasks):
            if kb != current_kb:
                if current_kb is not None:
                    yield current_key, acc
                current_kb, current_key, acc = kb, decode_key(kb), list(values)
            else:
                acc.extend(values)
        if current_kb is not None:
            yield current_key, acc

    # ------------------------------------------------------------- cleanup
    def cleanup(self, num_map_tasks: int | None = None) -> None:
        """Delete the job's spill files — every run of every task, plus
        ``.tmp*`` partials left by task attempts that died mid-write — once
        the reduce is done."""
        root = Path(self.root)
        if root.exists():
            pattern = f"{self._file_prefix}.m*"
            if self.partition_subdirs:
                pattern = f"p[0-9]*/{self._file_prefix}.m*"
            for path in root.glob(pattern):
                path.unlink(missing_ok=True)


class SpillRunWriter:
    """External sort on the write side: streamed append, bounded sorted runs.

    Records are buffered per ``(partition, canonical key bytes)``.  Once the
    buffered volume crosses ``run_records`` (both codecs) or ``run_bytes``
    (binary codec — per-record encodings are produced at append time, so
    byte accounting is exact), every non-empty partition buffer is flushed
    as one key-sorted run file and the buffers reset.  Flush points are a
    deterministic function of the append sequence, so a re-executed task
    attempt rewrites byte-identical runs over any partials a crashed attempt
    left behind (each run write is itself atomic: temp file + ``os.replace``).

    ``combiner`` (a :class:`~repro.mapreduce.job.Combiner`) folds each key's
    buffered values at flush time — before they reach disk.  Under the
    binary codec the fold runs on the encoded records via
    ``combine_encoded``, falling back to decode/combine/encode only if the
    combiner declines.

    Reported ``counts`` are post-combine; ``peak_buffer_bytes`` is the
    largest single flush in file bytes — the writer's actual buffering
    high-water mark, which stays flat as task output grows.
    """

    def __init__(
        self,
        layout: SpillLayout,
        map_task: int,
        combiner=None,
        run_records: int = DEFAULT_RUN_RECORDS,
        run_bytes: int = DEFAULT_RUN_BYTES,
    ):
        if run_records < 1:
            raise ValueError("run_records must be >= 1")
        if run_bytes < 1:
            raise ValueError("run_bytes must be >= 1")
        self._layout = layout
        self._map_task = map_task
        self._combiner = combiner
        self._run_records = run_records
        self._run_bytes = run_bytes
        self._binary = layout.codec == "binary"
        num = layout.num_partitions
        # partition -> key_bytes -> (key, values) where values are encoded
        # item bytes (binary) or plain objects (pickle).
        self._buffers: list[dict[bytes, tuple[object, list]]] = [{} for _ in range(num)]
        self._pending_records = 0
        self._pending_bytes = 0
        self._next_run = [0] * num
        self._counts = [0] * num
        self._partition_bytes = [0] * num
        self._bytes_written = 0
        self._peak_flush = 0
        self._made_root = False

    def append(self, partition: int, key, value) -> None:
        kb = key_bytes(key)
        buffer = self._buffers[partition]
        if self._binary:
            value = encode_value(value)
            self._pending_bytes += len(value)
        entry = buffer.get(kb)
        if entry is None:
            buffer[kb] = (key, [value])
            if self._binary:
                # A new key means a new frame at flush time: account its
                # fixed cost (key bytes, length varints, CRC trailer) so
                # the byte budget tracks file bytes, not just payloads.
                self._pending_bytes += len(kb) + _FRAME_FIXED_BYTES
        else:
            entry[1].append(value)
        self._pending_records += 1
        if self._pending_records >= self._run_records or (
            self._binary and self._pending_bytes >= self._run_bytes
        ):
            self._flush()

    def _combine_buffer(self, buffer: dict[bytes, tuple[object, list]]) -> None:
        for kb, (key, items) in buffer.items():
            if len(items) <= 1:
                continue
            if self._binary:
                folded = self._combiner.combine_encoded(kb, items)
                if folded is None:
                    values = [decode_value(item)[0] for item in items]
                    folded = [encode_value(v) for v in self._combiner.combine(key, values)]
                buffer[kb] = (key, folded)
            else:
                buffer[kb] = (key, list(self._combiner.combine(key, items)))

    def _flush(self) -> None:
        if self._pending_records == 0:
            return
        if not self._made_root:
            Path(self._layout.root).mkdir(parents=True, exist_ok=True)
            self._made_root = True
        codec_id = _CODEC_IDS[self._layout.codec]
        flushed = 0
        for partition, buffer in enumerate(self._buffers):
            if not buffer:
                continue
            if self._combiner is not None:
                self._combine_buffer(buffer)
            final = self._layout.run_path(
                self._map_task, partition, self._next_run[partition]
            )
            if self._layout.partition_subdirs:
                final.parent.mkdir(exist_ok=True)
            tmp = final.with_suffix(f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                written = write_stream_header(fh, codec_id)
                for kb in sorted(buffer):
                    _, items = buffer[kb]
                    self._counts[partition] += len(items)
                    if self._binary:
                        payload = encode_list_payload(items)
                    else:
                        payload = pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL)
                    written += write_frame(fh, kb, payload)
            os.replace(tmp, final)
            self._next_run[partition] += 1
            self._buffers[partition] = {}
            self._partition_bytes[partition] += written
            flushed += written
        self._bytes_written += flushed
        if flushed > self._peak_flush:
            self._peak_flush = flushed
        self._pending_records = 0
        self._pending_bytes = 0

    def finish(self) -> SpillWriteResult:
        """Flush the final runs and report counts/bytes to the parent."""
        self._flush()
        return SpillWriteResult(
            list(self._counts),
            self._bytes_written,
            self._peak_flush,
            partition_bytes=tuple(self._partition_bytes),
        )
