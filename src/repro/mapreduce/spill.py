"""Partitioned shuffle spill: map-side writes, reduce-side lazy merge.

Instead of funneling every intermediate record through the parent process,
each map task writes its output for reduce partition ``p`` straight to
``<root>/<job>.m<task>.p<p>.pkl`` and hands back only per-partition record
counts.  Each reduce task then reads exactly the files of its partition —
in map-task order, which is what the in-memory shuffle's concatenation
order is, so grouping (and therefore job output) is byte-identical.

This keeps the pipeline out-of-core (intermediate k-hop state never has to
fit in the parent's RAM) and, under the ``processes`` backend, cuts the
inter-process pickling volume from *all shuffled records, twice* to file
paths and counters.

Writes are atomic (temp file + ``os.replace``) so a task attempt that dies
mid-write can never leave a partial file for its re-execution to read, and
re-executions — being deterministic — simply overwrite.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SpillLayout"]


@dataclass(frozen=True)
class SpillLayout:
    """Where one job's shuffle files live.  Picklable: it crosses the
    process boundary inside every map/reduce task of a spilling job."""

    root: str
    job_name: str
    num_partitions: int

    def path(self, map_task: int, partition: int) -> Path:
        return Path(self.root) / f"{self.job_name}.m{map_task:05d}.p{partition:05d}.pkl"

    # ------------------------------------------------------------- map side
    def write_map_output(self, map_task: int, buckets: list[list[tuple]]) -> list[int]:
        """Spill one map task's partitioned output; returns per-partition
        record counts (the only thing shipped back to the parent)."""
        Path(self.root).mkdir(parents=True, exist_ok=True)
        counts = []
        for partition, bucket in enumerate(buckets):
            counts.append(len(bucket))
            if not bucket:
                continue
            final = self.path(map_task, partition)
            tmp = final.with_suffix(f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                pickle.dump(bucket, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, final)
        return counts

    # ---------------------------------------------------------- reduce side
    def read_partition(self, partition: int, num_map_tasks: int) -> list[tuple]:
        """Merge one partition's spill files in map-task order (matching the
        in-memory shuffle's concatenation order exactly)."""
        pairs: list[tuple] = []
        for map_task in range(num_map_tasks):
            path = self.path(map_task, partition)
            if not path.exists():  # empty bucket — never written
                continue
            with open(path, "rb") as fh:
                pairs.extend(pickle.load(fh))
        return pairs

    # ------------------------------------------------------------- cleanup
    def cleanup(self, num_map_tasks: int) -> None:
        """Delete the job's spill files once the reduce phase is done."""
        for map_task in range(num_map_tasks):
            for partition in range(self.num_partitions):
                path = self.path(map_task, partition)
                if path.exists():
                    path.unlink()
