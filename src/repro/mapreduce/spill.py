"""Partitioned shuffle spill: map-side sorted frame writes, reduce-side
streamed merge.

Each map task writes its output for reduce partition ``p`` straight to
``<root>/<job>.m<task>.p<p>.<ext>`` and hands back only per-partition record
counts and byte totals.  Within a file, records are *stably sorted by
canonical key bytes* (the map-side sort of real MapReduce), so each reduce
task can k-way-merge its partition's files through a bounded buffer — one
frame per file in flight — instead of materializing the whole partition in
RAM.  Merge ties prefer the lower map-task index, which makes the merged
stream exactly the stable sort of the old concatenation order: grouping, and
therefore job output, stays byte-identical.

Record encoding is pluggable (the ``codec`` knob):

* ``"pickle"`` — one pickle per record value; works for arbitrary jobs.
* ``"binary"`` — flat tagged records via :mod:`repro.proto.framing`; node
  and edge state goes to disk as raw little-endian blocks instead of pickled
  object graphs, which is the serialization tax AGL's C++ GraphFlat avoids
  with flat protobuf records (§3.2).  GraphFlat/GraphInfer register their
  record types' wire forms and default to this codec.

Keys are stored once per frame, as their canonical shuffle encoding
(:func:`repro.mapreduce.shuffle.key_bytes`) — it is simultaneously the merge
sort key and, via :func:`~repro.mapreduce.shuffle.decode_key`, the key
serialization.

Writes are atomic (temp file + ``os.replace``) so a task attempt that dies
mid-write can never leave a partial file for its re-execution to read, and
re-executions — being deterministic — simply overwrite.  ``cleanup`` also
glob-removes orphaned ``.tmp*`` files from attempts that died mid-write.
"""

from __future__ import annotations

import heapq
import os
import pickle
from dataclasses import dataclass
from operator import itemgetter
from pathlib import Path

from repro.proto.framing import (
    FrameCorruptionError,
    decode_value,
    encode_value,
    iter_frames,
    read_stream_header,
    write_frame,
    write_stream_header,
)
from repro.mapreduce.shuffle import decode_key, key_bytes

__all__ = ["SPILL_CODECS", "SpillLayout", "SpillWriteResult"]

SPILL_CODECS = ("pickle", "binary")

_CODEC_IDS = {"pickle": 0, "binary": 1}
_CODEC_EXTS = {"pickle": "pkl", "binary": "bin"}

_READ_BUFFER_BYTES = 1 << 16
"""Per-file read buffer of the merge iterator — the explicit bound on how
much of a partition is ever resident during a streamed reduce."""


@dataclass(frozen=True)
class SpillWriteResult:
    """What a map task (or chain reducer) reports back to the parent after
    spilling: per-partition record counts plus total bytes on disk."""

    counts: list[int]
    bytes_written: int = 0


@dataclass(frozen=True)
class SpillLayout:
    """Where one job's shuffle files live, and how records are encoded.
    Picklable: it crosses the process boundary inside every map/reduce task
    of a spilling job."""

    root: str
    job_name: str
    num_partitions: int
    codec: str = "pickle"

    def __post_init__(self):
        if self.codec not in SPILL_CODECS:
            raise ValueError(
                f"unknown spill codec {self.codec!r}; known: {SPILL_CODECS}"
            )

    def path(self, map_task: int, partition: int) -> Path:
        ext = _CODEC_EXTS[self.codec]
        return Path(self.root) / (
            f"{self.job_name}.m{map_task:05d}.p{partition:05d}.{ext}"
        )

    # ------------------------------------------------------------ record codec
    def _encode_payload(self, values: list) -> bytes:
        """Encode one key-run (every value a map task emitted under one
        key).  Run-level framing amortizes per-frame overhead and, for the
        pickle codec, lets same-key records share pickle memoization."""
        if self.codec == "binary":
            return encode_value(values)
        return pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode_payload(self, payload: bytes) -> list:
        if self.codec == "binary":
            values, end = decode_value(payload)
            if end != len(payload):
                raise FrameCorruptionError(
                    f"{len(payload) - end} trailing bytes after spill run "
                    "(corrupt length varint inside the payload)"
                )
            return values
        return pickle.loads(payload)

    # ------------------------------------------------------------- map side
    def write_map_output(self, map_task: int, buckets: list[list[tuple]]) -> SpillWriteResult:
        """Spill one map task's partitioned output; returns per-partition
        record counts and bytes written (the only things shipped back to the
        parent)."""
        Path(self.root).mkdir(parents=True, exist_ok=True)
        counts = []
        total_bytes = 0
        for partition, bucket in enumerate(buckets):
            counts.append(len(bucket))
            if not bucket:
                continue
            final = self.path(map_task, partition)
            tmp = final.with_suffix(f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                total_bytes += self._write_bucket(fh, bucket)
            os.replace(tmp, final)
        return SpillWriteResult(counts, total_bytes)

    def _write_bucket(self, fh, bucket: list[tuple]) -> int:
        """Encode one bucket as key-sorted run frames — one frame per
        distinct key, holding that key's values in emission order (so the
        merged stream reproduces the in-memory shuffle's value order
        exactly); returns bytes written."""
        runs: dict[bytes, list] = {}
        for key, value in bucket:
            kb = key_bytes(key)
            values = runs.get(kb)
            if values is None:
                runs[kb] = [value]
            else:
                values.append(value)
        written = write_stream_header(fh, _CODEC_IDS[self.codec])
        for kb in sorted(runs):
            written += write_frame(fh, kb, self._encode_payload(runs[kb]))
        return written

    # ---------------------------------------------------------- reduce side
    def _iter_file(self, path: Path):
        """Yield ``(key_bytes, values)`` run frames from one spill file,
        streamed through a bounded buffer."""
        with open(path, "rb", buffering=_READ_BUFFER_BYTES) as fh:
            codec_id = read_stream_header(fh)
            if codec_id != _CODEC_IDS[self.codec]:
                raise ValueError(
                    f"spill file {path} written with codec id {codec_id}, "
                    f"layout expects {self.codec!r}"
                )
            for kb, payload in iter_frames(fh):
                yield kb, self._decode_payload(payload)

    def _iter_merged(self, partition: int, num_map_tasks: int):
        """K-way merge of one partition's files: globally key-sorted
        ``(key_bytes, values)`` run stream, ties broken toward lower map
        tasks (``heapq.merge`` is stable), holding one run per file in
        memory."""
        streams = []
        for map_task in range(num_map_tasks):
            path = self.path(map_task, partition)
            if path.exists():  # empty buckets were never written
                streams.append(self._iter_file(path))
        if len(streams) == 1:
            yield from streams[0]
            return
        yield from heapq.merge(*streams, key=itemgetter(0))

    def iter_partition(self, partition: int, num_map_tasks: int):
        """Streamed ``(key, value)`` pairs of one partition, key-sorted."""
        for key, values in self.iter_groups(partition, num_map_tasks):
            for value in values:
                yield key, value

    def iter_groups(self, partition: int, num_map_tasks: int):
        """Streamed reduce groups ``(key, values)`` — the external-merge
        replacement for ``group_sorted(read_partition(...))``: peak memory
        is one group (plus one buffered run per spill file), not the whole
        partition."""
        current_kb: bytes | None = None
        current_key = None
        acc: list = []
        for kb, values in self._iter_merged(partition, num_map_tasks):
            if kb != current_kb:
                if current_kb is not None:
                    yield current_key, acc
                current_kb, current_key, acc = kb, decode_key(kb), list(values)
            else:
                acc.extend(values)
        if current_kb is not None:
            yield current_key, acc

    def read_partition(self, partition: int, num_map_tasks: int) -> list[tuple]:
        """Materialize one partition (key-sorted).  Prefer the streaming
        :meth:`iter_partition` / :meth:`iter_groups` in reduce paths."""
        return list(self.iter_partition(partition, num_map_tasks))

    # ------------------------------------------------------------- cleanup
    def cleanup(self, num_map_tasks: int) -> None:
        """Delete the job's spill files — including ``.tmp*`` partials left
        by task attempts that died mid-write — once the reduce is done."""
        for map_task in range(num_map_tasks):
            for partition in range(self.num_partitions):
                path = self.path(map_task, partition)
                if path.exists():
                    path.unlink()
        root = Path(self.root)
        if root.exists():
            for orphan in root.glob(f"{self.job_name}.m*.tmp*"):
                orphan.unlink(missing_ok=True)
