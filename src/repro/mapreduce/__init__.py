"""Local MapReduce runtime — substrate **S3** (Dean & Ghemawat stand-in).

AGL's GraphFlat and GraphInfer are "simply implemented using MapReduce" so
they inherit the infrastructure's fault tolerance and scalability (§1, §3.1).
This package reproduces the programming contract those pipelines rely on:

* ``MapReduceJob`` — mapper / optional combiner / reducer over key-value
  pairs, with a pluggable deterministic partition function (hash default,
  degree-aware planned placement — see ``repro.mapreduce.partition``);
* ``LocalRuntime`` — pluggable ``serial`` / ``threads`` / ``processes``
  backends (see ``BACKEND_REGISTRY``), multi-round chaining, and a
  partitioned disk-spill shuffle (out-of-core operation; mandatory under
  the process backend so records never funnel through the parent);
* ``FailureInjector`` — injects worker failures so tests can assert that
  task re-execution produces byte-identical output (the fault-tolerance
  property the paper gets for free from mature infrastructure);
* ``DistFileSystem`` — a directory-backed stand-in for the cluster DFS that
  stores GraphFlat's sharded outputs.
"""

from repro.mapreduce.backends import (
    BACKEND_REGISTRY,
    Backend,
    WorkerCrashError,
    make_backend,
    register_backend,
)
from repro.mapreduce.job import Combiner, JobFailedError, MapReduceJob, SumCombiner
from repro.mapreduce.partition import (
    PARTITIONERS,
    HashPartitioner,
    PartitionPlan,
    Partitioner,
    PlannedPartitioner,
    plan_partitions,
    publish_plan,
    spill_tag,
)
from repro.mapreduce.runtime import LocalRuntime, RunStats
from repro.mapreduce.fault import (
    FAULT_KINDS,
    FailureInjector,
    FaultPlan,
    InjectedWorkerFailure,
    TaskTimeoutError,
)
from repro.mapreduce.retry import PhaseMonitor, RetryPolicy
from repro.mapreduce.fs import DistFileSystem
from repro.mapreduce.shuffle import decode_key, default_partition, key_bytes
from repro.mapreduce.spill import SPILL_CODECS, SpillLayout, SpillWriteResult

__all__ = [
    "BACKEND_REGISTRY",
    "Backend",
    "Combiner",
    "SumCombiner",
    "MapReduceJob",
    "JobFailedError",
    "LocalRuntime",
    "RunStats",
    "FAULT_KINDS",
    "FailureInjector",
    "FaultPlan",
    "InjectedWorkerFailure",
    "PhaseMonitor",
    "RetryPolicy",
    "TaskTimeoutError",
    "WorkerCrashError",
    "DistFileSystem",
    "PARTITIONERS",
    "HashPartitioner",
    "PartitionPlan",
    "Partitioner",
    "PlannedPartitioner",
    "SPILL_CODECS",
    "SpillLayout",
    "SpillWriteResult",
    "decode_key",
    "default_partition",
    "key_bytes",
    "make_backend",
    "plan_partitions",
    "publish_plan",
    "register_backend",
    "spill_tag",
]
