"""Deterministic shuffle: canonical key encoding + hash partitioning.

Python's builtin ``hash`` is salted per process, which would make shuffle
placement non-deterministic across runs and across the (re-executed) attempts
of a failed task.  We therefore hash a canonical byte encoding of the key
with crc32 — stable everywhere — exactly as production MapReduce systems pin
their partitioners.

Supported key types: ``int``, ``str``, ``bytes`` and (nested) tuples of
those.  GraphFlat keys are node ids (int) or suffixed ids (tuples) after
re-indexing.
"""

from __future__ import annotations

import zlib

from repro.proto.varint import decode_signed, encode_signed

__all__ = ["key_bytes", "decode_key", "default_partition", "group_sorted"]


def key_bytes(key) -> bytes:
    """Canonical byte encoding of a shuffle key (order-preserving per type)."""
    if isinstance(key, bool):  # bool is an int subclass; disambiguate
        return b"b" + (b"\x01" if key else b"\x00")
    if isinstance(key, int):
        # ZigZag varints are 64-bit on the wire; fail at emit time with a
        # clear message instead of producing an encoding the spill reader
        # would later reject as a corrupt stream.
        if not -(1 << 63) <= key < (1 << 63):
            raise TypeError(
                f"int shuffle key {key} exceeds 64 bits; map wider ids "
                "(e.g. 128-bit hashes) to bytes/str keys instead"
            )
        return b"i" + encode_signed(key)
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    if isinstance(key, bytes):
        return b"y" + key
    if isinstance(key, tuple):
        parts = [key_bytes(k) for k in key]
        out = bytearray(b"t")
        for p in parts:
            out += len(p).to_bytes(4, "little")
            out += p
        return bytes(out)
    raise TypeError(f"unsupported shuffle key type {type(key).__name__}: {key!r}")


def decode_key(data: bytes):
    """Inverse of :func:`key_bytes`.

    Spill files store each record's key *once*, as its canonical encoding
    (which doubles as the merge sort key); readers recover the original key
    object from those bytes instead of serializing it twice.
    """
    value, _ = _decode_key(memoryview(data), 0, len(data))
    return value


def _decode_key(buf: memoryview, offset: int, end: int):
    kind = buf[offset]
    offset += 1
    if kind == ord("b"):
        return buf[offset] == 1, offset + 1
    if kind == ord("i"):
        return decode_signed(buf, offset)
    if kind == ord("s"):
        return str(buf[offset:end], "utf-8"), end
    if kind == ord("y"):
        return bytes(buf[offset:end]), end
    if kind == ord("t"):
        parts = []
        while offset < end:
            plen = int.from_bytes(buf[offset : offset + 4], "little")
            offset += 4
            part, _ = _decode_key(buf, offset, offset + plen)
            parts.append(part)
            offset += plen
        return tuple(parts), end
    raise ValueError(f"corrupt shuffle key encoding (kind byte {kind:#x})")


def default_partition(key, num_partitions: int) -> int:
    """Stable partition id in ``[0, num_partitions)`` for ``key``."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return zlib.crc32(key_bytes(key)) % num_partitions


def group_sorted(pairs: list[tuple]) -> list[tuple[object, list]]:
    """Group ``(key, value)`` pairs by key, keys sorted by canonical bytes.

    Sorting by ``key_bytes`` (not by Python comparison) keeps the reduce
    order deterministic even for mixed-type keys, mirroring the sorted
    shuffle of real MapReduce.  Values keep their arrival order, which is
    itself deterministic under the serial and single-attempt threaded
    backends; reducers that need stronger guarantees must sort values.
    """
    buckets: dict[bytes, tuple[object, list]] = {}
    for key, value in pairs:
        kb = key_bytes(key)
        entry = buckets.get(kb)
        if entry is None:
            buckets[kb] = (key, [value])
        else:
            entry[1].append(value)
    return [buckets[kb] for kb in sorted(buckets)]
