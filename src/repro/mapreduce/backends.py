"""Pluggable execution backends for the local MapReduce runtime.

A backend executes one *phase* — a batch of independent map or reduce
tasks — and returns results in task order (never completion order), which
is what keeps every backend byte-identical to ``serial``.

* ``serial`` — everything in the calling thread; the reference semantics.
* ``threads`` — a thread pool; concurrency for I/O-bound tasks, but the
  GIL serialises pure-Python operator code.
* ``processes`` — a ``ProcessPoolExecutor``; true multi-core execution.
  Task functions and their arguments must be picklable (top-level
  callables / callable dataclasses, not closures).  A bounded pool of
  coordinator threads runs the retry loop in the parent — so failure
  injection, attempt accounting and the shared injector cap behave
  exactly as under ``serial`` — and each attempt ships the task to a
  worker process.  A crashed worker (``BrokenProcessPool``) is handled
  by rebuilding the pool and re-raising :class:`WorkerCrashError`, which
  the runtime's retry loop treats like any other task failure: the task
  is simply re-executed, MapReduce-style.

Attempt protocol: ``retrier(task_id, call)`` is supplied by the runtime
and wraps ``call`` in the attempt loop.  ``call`` accepts an optional
:class:`AttemptContext` carrying the per-attempt chaos-plane state — the
picklable fault/deadline :class:`~repro.mapreduce.fault.AttemptSpec` that
ships into the worker, the parent-side attempt timeout, and the phase's
straggler monitor.  Calling with no context (as the trainer's prefetch
pool does) runs the task plainly.

Deadlines and stragglers under ``processes``: when a timeout or a
speculation monitor is active, the coordinator polls the attempt future
instead of blocking.  An attempt that overruns ``timeout_s`` gets its pool
*killed* (a hung worker never returns on its own — ``shutdown`` alone
would block behind it) and surfaces as a retryable
:class:`~repro.mapreduce.fault.TaskTimeoutError`; an attempt that runs
past the monitor's straggler threshold gets a clean duplicate submitted,
and whichever copy finishes first wins — safe because attempts are
deterministic and spill writes are atomic and idempotent.

New backends register themselves with :func:`register_backend`; the
runtime looks them up by name in :data:`BACKEND_REGISTRY`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from collections.abc import Callable
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.mapreduce.fault import AttemptSpec, TaskTimeoutError, run_with_effects

__all__ = [
    "BACKEND_REGISTRY",
    "AttemptContext",
    "Backend",
    "ProcessesBackend",
    "SerialBackend",
    "ThreadsBackend",
    "WorkerCrashError",
    "make_backend",
    "register_backend",
]

BACKEND_REGISTRY: dict[str, type["Backend"]] = {}

_POLL_S = 0.05
"""Future-poll period of the timeout/speculation coordinator loop."""


class WorkerCrashError(RuntimeError):
    """A worker process died mid-task; the task attempt produced nothing."""


@dataclass
class AttemptContext:
    """Parent-side per-attempt state handed to a backend ``call``.

    ``spec`` is the picklable worker-side half (fault effect + cooperative
    deadline); ``timeout_s`` is enforced parent-side by the processes
    backend; ``monitor`` (a :class:`~repro.mapreduce.retry.PhaseMonitor`)
    enables straggler speculation for this phase."""

    spec: AttemptSpec | None = None
    timeout_s: float | None = None
    monitor: object | None = None


def register_backend(name: str):
    """Class decorator: make a :class:`Backend` constructible by name."""

    def decorator(cls: type["Backend"]) -> type["Backend"]:
        cls.name = name
        BACKEND_REGISTRY[name] = cls
        return cls

    return decorator


def make_backend(name: str, max_workers: int | None = None) -> "Backend":
    try:
        cls = BACKEND_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {sorted(BACKEND_REGISTRY)}"
        ) from None
    return cls(max_workers)


class Backend:
    """Executes batches of ``(task_id, fn, args)`` tasks with retries.

    ``retrier(task_id, call)`` is supplied by the runtime: it wraps
    ``call`` in the attempt loop (failure injection, re-execution, attempt
    counting) and returns ``(result, outcome)``.  ``call`` takes an
    optional :class:`AttemptContext`.
    """

    name = "abstract"
    needs_pickling = False
    """Whether task functions/arguments cross a process boundary."""
    supports_speculation = False
    """Whether a straggler attempt can race a duplicate (needs real
    parallel workers the parent can submit to mid-attempt)."""

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def execute(
        self,
        tasks: list[tuple[str, Callable, tuple]],
        retrier: Callable[[str, Callable], tuple],
    ) -> list[tuple]:
        raise NotImplementedError  # pragma: no cover - abstract

    def close(self) -> None:
        """Release pooled resources (idempotent)."""


def _local_call(fn, args):
    """In-thread attempt body: fault effects and the cooperative deadline
    run right here, in the thread executing the task."""

    def call(ctx: AttemptContext | None = None):
        return run_with_effects(ctx.spec if ctx is not None else None, fn, args)

    return call


@register_backend("serial")
class SerialBackend(Backend):
    def execute(self, tasks, retrier):
        return [retrier(tid, _local_call(fn, args)) for tid, fn, args in tasks]


@register_backend("threads")
class ThreadsBackend(Backend):
    def execute(self, tasks, retrier):
        if len(tasks) <= 1:
            return SerialBackend.execute(self, tasks, retrier)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(retrier, tid, _local_call(fn, args))
                for tid, fn, args in tasks
            ]
            return [f.result() for f in futures]


class _RemoteCall:
    """Attempt body of the processes backend: run ``fn(*args)`` in the
    process pool, under the attempt's fault spec.

    A dead worker breaks the whole pool, so on ``BrokenProcessPool`` the
    backend discards it (the next attempt gets a fresh pool) and the
    crash is surfaced as a retryable :class:`WorkerCrashError`.  A
    cancelled future means a *sibling* coordinator killed the pool (its
    attempt timed out) — same treatment: this attempt produced nothing
    and is simply re-executed.  With a timeout or speculation monitor
    active, the blocking wait becomes the poll loop in :meth:`_race`.
    """

    def __init__(self, backend: "ProcessesBackend", fn, args):
        self.backend = backend
        self.fn = fn
        self.args = args

    def _submit(self, pool, generation, spec):
        try:
            return pool.submit(run_with_effects, spec, self.fn, self.args)
        except RuntimeError as exc:
            # Pool shut down under us (sibling timeout killed it between
            # our handle fetch and submit): retryable, next attempt gets
            # a fresh pool.
            raise WorkerCrashError(
                f"process pool vanished before {self._name()!r} could start"
            ) from exc

    def _name(self) -> str:
        return getattr(self.fn, "__name__", str(self.fn))

    def __call__(self, ctx: AttemptContext | None = None):
        spec = ctx.spec if ctx is not None else None
        timeout_s = ctx.timeout_s if ctx is not None else None
        monitor = ctx.monitor if ctx is not None else None
        pool, generation = self.backend._pool_handle()
        future = self._submit(pool, generation, spec)
        try:
            if timeout_s is None and monitor is None:
                return future.result()
            return self._race(pool, generation, future, spec, timeout_s, monitor)
        except (BrokenProcessPool, CancelledError) as exc:
            self.backend._discard_pool(generation)
            raise WorkerCrashError(
                f"worker process died while running {self._name()!r}"
            ) from exc

    def _race(self, pool, generation, future, spec, timeout_s, monitor):
        """Poll the attempt future, enforcing the deadline and launching a
        speculative duplicate when the phase monitor flags a straggler.
        First completion wins; a duplicate's win is counted, its loss is
        free (the copies are deterministic and spill writes idempotent)."""
        start = time.monotonic()
        duplicate = None
        while True:
            pending = [f for f in (future, duplicate) if f is not None]
            done, _ = wait(pending, timeout=_POLL_S, return_when=FIRST_COMPLETED)
            if future in done:
                return future.result()
            if duplicate is not None and duplicate in done:
                result = duplicate.result()
                monitor.count_win()
                return result
            elapsed = time.monotonic() - start
            if timeout_s is not None and elapsed > timeout_s:
                # A wedged worker never returns: kill the pool out from
                # under it (terminate, not shutdown — shutdown waits).
                self.backend._discard_pool(generation, kill=True)
                raise TaskTimeoutError(
                    f"task attempt {self._name()!r} exceeded its "
                    f"{timeout_s:.3g}s deadline; worker pool discarded"
                )
            if (
                monitor is not None
                and duplicate is None
                and monitor.should_speculate(elapsed)
            ):
                # The duplicate runs *clean* (no injected fault): it is the
                # rescue copy of an environmentally slow attempt.
                clean = (
                    AttemptSpec(fault=None, timeout_s=spec.timeout_s)
                    if spec is not None
                    else None
                )
                duplicate = self._submit(pool, generation, clean)
                monitor.count_launch()


@register_backend("processes")
class ProcessesBackend(Backend):
    needs_pickling = True
    supports_speculation = True

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self._lock = threading.Lock()
        self._finalizer: weakref.finalize | None = None

    # --------------------------------------------------------- pool lifecycle
    def _pool_handle(self) -> tuple[ProcessPoolExecutor, int]:
        """The live pool (created lazily, shared across phases and rounds)."""
        with self._lock:
            if self._pool is None:
                # The parent is multi-threaded (coordinator threads), so
                # fork() is deadlock-prone; forkserver spawns workers from
                # a clean single-threaded helper.  Jobs are already
                # verified picklable, so no fork-only state is lost.
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "forkserver" if "forkserver" in methods else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers or os.cpu_count() or 1,
                    mp_context=context,
                )
                self._finalizer = weakref.finalize(
                    self, ProcessPoolExecutor.shutdown, self._pool, wait=True
                )
            return self._pool, self._generation

    def _discard_pool(self, generation: int, kill: bool = False) -> None:
        """Drop a broken pool; concurrent callers only discard once.

        ``kill=True`` terminates the worker processes first — the timeout
        path needs it because a hung worker never finishes its task and a
        plain shutdown would leave it running (holding memory and, under
        a real hang, a pool slot) forever."""
        with self._lock:
            if self._generation != generation or self._pool is None:
                return
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            if kill:
                try:  # private executor internals; best effort
                    processes = list(self._pool._processes.values())
                except Exception:  # pragma: no cover - interpreter-specific
                    processes = []
                for process in processes:
                    try:
                        process.terminate()
                    except Exception:  # pragma: no cover - already dead
                        pass
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._generation += 1

    def close(self) -> None:
        with self._lock:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._generation += 1

    # ---------------------------------------------------------------- execute
    def _coordinator_count(self, num_tasks: int) -> int:
        """Parent threads running retry loops: enough to keep every pool
        worker fed (plus headroom for attempts blocked in backoff/polling),
        never one-per-task — a 256-reducer round must not spawn 256
        threads."""
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, min(num_tasks, 2 * workers + 4))

    def execute(self, tasks, retrier):
        if not tasks:
            return []
        # Coordinator threads keep tasks in flight while the retry loop
        # (injection, attempt counts) runs parent-side against the shared
        # injector — semantics identical to serial.  Excess tasks queue on
        # the coordinator pool; futures keep results position-ordered.
        count = self._coordinator_count(len(tasks))
        with ThreadPoolExecutor(max_workers=count) as coordinators:
            futures = [
                coordinators.submit(retrier, tid, _RemoteCall(self, fn, args))
                for tid, fn, args in tasks
            ]
            return [f.result() for f in futures]
