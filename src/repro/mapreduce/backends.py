"""Pluggable execution backends for the local MapReduce runtime.

A backend executes one *phase* — a batch of independent map or reduce
tasks — and returns results in task order (never completion order), which
is what keeps every backend byte-identical to ``serial``.

* ``serial`` — everything in the calling thread; the reference semantics.
* ``threads`` — a thread pool; concurrency for I/O-bound tasks, but the
  GIL serialises pure-Python operator code.
* ``processes`` — a ``ProcessPoolExecutor``; true multi-core execution.
  Task functions and their arguments must be picklable (top-level
  callables / callable dataclasses, not closures).  One coordinator
  thread per task runs the retry loop in the parent — so failure
  injection, attempt accounting and the shared injector cap behave
  exactly as under ``serial`` — and each attempt ships the task to a
  worker process.  A crashed worker (``BrokenProcessPool``) is handled
  by rebuilding the pool and re-raising :class:`WorkerCrashError`, which
  the runtime's retry loop treats like any other task failure: the task
  is simply re-executed, MapReduce-style.

New backends register themselves with :func:`register_backend`; the
runtime looks them up by name in :data:`BACKEND_REGISTRY`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import weakref
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

__all__ = [
    "BACKEND_REGISTRY",
    "Backend",
    "ProcessesBackend",
    "SerialBackend",
    "ThreadsBackend",
    "WorkerCrashError",
    "make_backend",
    "register_backend",
]

BACKEND_REGISTRY: dict[str, type["Backend"]] = {}


class WorkerCrashError(RuntimeError):
    """A worker process died mid-task; the task attempt produced nothing."""


def register_backend(name: str):
    """Class decorator: make a :class:`Backend` constructible by name."""

    def decorator(cls: type["Backend"]) -> type["Backend"]:
        cls.name = name
        BACKEND_REGISTRY[name] = cls
        return cls

    return decorator


def make_backend(name: str, max_workers: int | None = None) -> "Backend":
    try:
        cls = BACKEND_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known: {sorted(BACKEND_REGISTRY)}"
        ) from None
    return cls(max_workers)


class Backend:
    """Executes batches of ``(task_id, fn, args)`` tasks with retries.

    ``retrier(task_id, call)`` is supplied by the runtime: it wraps the
    zero-argument ``call`` in the attempt loop (failure injection,
    re-execution, attempt counting) and returns ``(result, attempts)``.
    """

    name = "abstract"
    needs_pickling = False
    """Whether task functions/arguments cross a process boundary."""

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def execute(
        self,
        tasks: list[tuple[str, Callable, tuple]],
        retrier: Callable[[str, Callable], tuple],
    ) -> list[tuple]:
        raise NotImplementedError  # pragma: no cover - abstract

    def close(self) -> None:
        """Release pooled resources (idempotent)."""


@register_backend("serial")
class SerialBackend(Backend):
    def execute(self, tasks, retrier):
        return [retrier(tid, lambda fn=fn, args=args: fn(*args)) for tid, fn, args in tasks]


@register_backend("threads")
class ThreadsBackend(Backend):
    def execute(self, tasks, retrier):
        if len(tasks) <= 1:
            return SerialBackend.execute(self, tasks, retrier)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(retrier, tid, lambda fn=fn, args=args: fn(*args))
                for tid, fn, args in tasks
            ]
            return [f.result() for f in futures]


class _RemoteCall:
    """Zero-argument attempt body: run ``fn(*args)`` in the process pool.

    A dead worker breaks the whole pool, so on ``BrokenProcessPool`` the
    backend discards it (the next attempt gets a fresh pool) and the
    crash is surfaced as a retryable :class:`WorkerCrashError`.
    """

    def __init__(self, backend: "ProcessesBackend", fn, args):
        self.backend = backend
        self.fn = fn
        self.args = args

    def __call__(self):
        pool, generation = self.backend._pool_handle()
        try:
            return pool.submit(self.fn, *self.args).result()
        except BrokenProcessPool as exc:
            self.backend._discard_pool(generation)
            raise WorkerCrashError(
                f"worker process died while running {getattr(self.fn, '__name__', self.fn)!r}"
            ) from exc


@register_backend("processes")
class ProcessesBackend(Backend):
    needs_pickling = True

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self._lock = threading.Lock()
        self._finalizer: weakref.finalize | None = None

    # --------------------------------------------------------- pool lifecycle
    def _pool_handle(self) -> tuple[ProcessPoolExecutor, int]:
        """The live pool (created lazily, shared across phases and rounds)."""
        with self._lock:
            if self._pool is None:
                # The parent is multi-threaded (one coordinator thread per
                # task), so fork() is deadlock-prone; forkserver spawns
                # workers from a clean single-threaded helper.  Jobs are
                # already verified picklable, so no fork-only state is lost.
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "forkserver" if "forkserver" in methods else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers or os.cpu_count() or 1,
                    mp_context=context,
                )
                self._finalizer = weakref.finalize(
                    self, ProcessPoolExecutor.shutdown, self._pool, wait=True
                )
            return self._pool, self._generation

    def _discard_pool(self, generation: int) -> None:
        """Drop a broken pool; concurrent callers only discard once."""
        with self._lock:
            if self._generation != generation or self._pool is None:
                return
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._generation += 1

    def close(self) -> None:
        with self._lock:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._generation += 1

    # ---------------------------------------------------------------- execute
    def execute(self, tasks, retrier):
        if not tasks:
            return []
        # One coordinator thread per task keeps every task in flight while
        # the retry loop (injection, attempt counts) runs parent-side
        # against the shared injector — semantics identical to serial.
        with ThreadPoolExecutor(max_workers=len(tasks)) as coordinators:
            futures = [
                coordinators.submit(retrier, tid, _RemoteCall(self, fn, args))
                for tid, fn, args in tasks
            ]
            return [f.result() for f in futures]
