"""Job specification for the local MapReduce runtime.

A job is the classic contract:

* ``mapper(key, value) -> iterable[(key', value')]``
* ``combiner(key', values) -> iterable[(key', value'')]`` (optional,
  map-side pre-aggregation; must be semantically idempotent with the
  reducer's merge step)
* ``reducer(key', values) -> iterable[(key'', value''')]``

Reducers may re-key their output — GraphFlat uses this to propagate merged
self-information to out-edge destinations, and the re-indexing stage uses it
to strip suffixes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.mapreduce.shuffle import default_partition
from repro.proto.framing import decode_value, encode_value

__all__ = [
    "Combiner",
    "JobFailedError",
    "MapReduceJob",
    "SumCombiner",
    "identity_mapper",
]


class JobFailedError(RuntimeError):
    """A task exhausted its retry budget (after injected or real failures)."""


def identity_mapper(key, value) -> Iterable[tuple]:
    """Pass-through mapper used by reduce-only rounds of chained pipelines."""
    yield key, value


class Combiner:
    """Key-preserving associative pre-aggregator.

    Classic callable combiners (``combiner(key, values) -> iterable[(key,
    value)]``) may re-key, which forces the runtime to decode, re-group and
    re-partition their output.  A :class:`Combiner` promises it only folds
    the *values* of one key, which unlocks frame-level map-side combine: the
    spill writer can fold each key's run every time it fills — before the
    records hit disk — and, for the binary codec, fold the **encoded**
    records directly via :meth:`combine_encoded` without a decode/encode
    round trip.

    Instances are also plain callables with the classic signature, so the
    in-memory (non-spilling) shuffle path treats them like any combiner.
    """

    def combine(self, key, values: list) -> list:
        """Fold ``values`` (all emitted under ``key``) into fewer values.

        Must be associative: the reducer sees an arbitrary re-folding of
        partial results across map tasks and spill runs.
        """
        raise NotImplementedError

    def combine_encoded(self, key_bytes: bytes, items: list[bytes]) -> list[bytes] | None:
        """Fold binary-encoded value records without object decode.

        Each entry of ``items`` is one ``encode_value`` body.  Return the
        folded encodings, or ``None`` to fall back to the object path
        (:meth:`combine`).  The default always falls back.
        """
        return None

    def __call__(self, key, values: list) -> Iterable[tuple]:
        for value in self.combine(key, values):
            yield key, value


@dataclass(frozen=True)
class SumCombiner(Combiner):
    """Numeric-sum combiner — the degree-counting workhorse.

    ``combine_encoded`` decodes each record (a bare varint/float frame —
    no object graph), sums, and re-encodes one record, so a map task that
    emits ``(dst, 1)`` per edge spills one partial count per key per run.
    """

    def combine(self, key, values: list) -> list:
        return [sum(values)]

    def combine_encoded(self, key_bytes: bytes, items: list[bytes]) -> list[bytes] | None:
        total = 0
        for item in items:
            try:
                value, end = decode_value(item)
            except Exception:
                return None
            if end != len(item) or not isinstance(value, (int, float)) or isinstance(value, bool):
                return None
            total += value
        return [encode_value(total)]


@dataclass
class MapReduceJob:
    """Declarative description of one map -> shuffle -> reduce round.

    Attributes
    ----------
    name:
        For logs and error messages.
    mapper / reducer / combiner:
        See module docstring.  ``mapper`` defaults to the identity for
        reduce-only rounds.
    num_reducers:
        Number of reduce partitions (the "cluster width" of the round).
    num_mappers:
        Number of map tasks the input is split into; defaults to
        ``num_reducers``.
    partitioner:
        ``(key, num_partitions) -> partition`` — deterministic; defaults to
        crc32 of the canonical key bytes.
    """

    name: str
    reducer: Callable[[object, list], Iterable[tuple]]
    mapper: Callable[[object, object], Iterable[tuple]] = identity_mapper
    combiner: Callable[[object, list], Iterable[tuple]] | None = None
    num_reducers: int = 4
    num_mappers: int | None = None
    partitioner: Callable[[object, int], int] = field(default=default_partition)

    def __post_init__(self):
        if self.num_reducers <= 0:
            raise ValueError(f"job {self.name!r}: num_reducers must be positive")
        if self.num_mappers is not None and self.num_mappers <= 0:
            raise ValueError(f"job {self.name!r}: num_mappers must be positive")

    @property
    def effective_mappers(self) -> int:
        return self.num_mappers if self.num_mappers is not None else self.num_reducers
