"""Job specification for the local MapReduce runtime.

A job is the classic contract:

* ``mapper(key, value) -> iterable[(key', value')]``
* ``combiner(key', values) -> iterable[(key', value'')]`` (optional,
  map-side pre-aggregation; must be semantically idempotent with the
  reducer's merge step)
* ``reducer(key', values) -> iterable[(key'', value''')]``

Reducers may re-key their output — GraphFlat uses this to propagate merged
self-information to out-edge destinations, and the re-indexing stage uses it
to strip suffixes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.mapreduce.shuffle import default_partition

__all__ = ["MapReduceJob", "JobFailedError", "identity_mapper"]


class JobFailedError(RuntimeError):
    """A task exhausted its retry budget (after injected or real failures)."""


def identity_mapper(key, value) -> Iterable[tuple]:
    """Pass-through mapper used by reduce-only rounds of chained pipelines."""
    yield key, value


@dataclass
class MapReduceJob:
    """Declarative description of one map -> shuffle -> reduce round.

    Attributes
    ----------
    name:
        For logs and error messages.
    mapper / reducer / combiner:
        See module docstring.  ``mapper`` defaults to the identity for
        reduce-only rounds.
    num_reducers:
        Number of reduce partitions (the "cluster width" of the round).
    num_mappers:
        Number of map tasks the input is split into; defaults to
        ``num_reducers``.
    partitioner:
        ``(key, num_partitions) -> partition`` — deterministic; defaults to
        crc32 of the canonical key bytes.
    """

    name: str
    reducer: Callable[[object, list], Iterable[tuple]]
    mapper: Callable[[object, object], Iterable[tuple]] = identity_mapper
    combiner: Callable[[object, list], Iterable[tuple]] | None = None
    num_reducers: int = 4
    num_mappers: int | None = None
    partitioner: Callable[[object, int], int] = field(default=default_partition)

    def __post_init__(self):
        if self.num_reducers <= 0:
            raise ValueError(f"job {self.name!r}: num_reducers must be positive")
        if self.num_mappers is not None and self.num_mappers <= 0:
            raise ValueError(f"job {self.name!r}: num_mappers must be positive")

    @property
    def effective_mappers(self) -> int:
        return self.num_mappers if self.num_mappers is not None else self.num_reducers
