"""Execution engine for :class:`~repro.mapreduce.job.MapReduceJob`.

Backends:

* ``"serial"`` — everything in the calling thread; the reference semantics.
* ``"threads"`` — map and reduce tasks on a thread pool.  Output is
  position-ordered (task index, not completion order) so results are
  deterministic and byte-identical to the serial backend.

Fault tolerance: each task runs in an attempt loop.  An injected (or real)
failure discards the attempt's output and re-executes the task, mirroring
MapReduce's re-execution model.  Because tasks are pure functions of their
input partition, retries cannot change job output — tests assert this.

Shuffle spill: with ``spill_dir`` set, shuffle partitions are pickled to disk
between the map and reduce phases instead of being handed over in memory.
This is how the pipeline stays out-of-core for graphs whose intermediate
k-hop state exceeds RAM.
"""

from __future__ import annotations

import pickle
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.mapreduce.fault import FailureInjector, InjectedWorkerFailure
from repro.mapreduce.job import JobFailedError, MapReduceJob
from repro.mapreduce.shuffle import group_sorted

__all__ = ["LocalRuntime", "RunStats"]


@dataclass
class RunStats:
    """Counters from the most recent job execution."""

    job: str = ""
    input_records: int = 0
    mapped_records: int = 0
    combined_records: int = 0
    shuffled_records: int = 0
    reduced_records: int = 0
    map_attempts: int = 0
    reduce_attempts: int = 0
    injected_failures: int = 0
    reducer_group_sizes: dict[int, int] = field(default_factory=dict)
    """partition -> number of (key, values) groups — load-balance evidence."""
    max_group_values: int = 0
    """Largest single reduce group (values under one key) seen in the round —
    the quantity hub re-indexing exists to bound (§3.2.2)."""

    def merge(self, other: "RunStats") -> None:
        self.input_records += other.input_records
        self.mapped_records += other.mapped_records
        self.combined_records += other.combined_records
        self.shuffled_records += other.shuffled_records
        self.reduced_records += other.reduced_records
        self.map_attempts += other.map_attempts
        self.reduce_attempts += other.reduce_attempts
        self.injected_failures += other.injected_failures
        self.max_group_values = max(self.max_group_values, other.max_group_values)


def _chunk(seq: list, n: int) -> list[list]:
    """Split ``seq`` into ``n`` contiguous chunks (some possibly empty)."""
    if n <= 0:
        raise ValueError("need at least one chunk")
    size, extra = divmod(len(seq), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        chunks.append(seq[start:end])
        start = end
    return chunks


class LocalRuntime:
    """Runs MapReduce jobs locally with retries and optional disk spill."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        max_attempts: int = 3,
        failure_injector: FailureInjector | None = None,
        spill_dir: str | Path | None = None,
    ):
        if backend not in ("serial", "threads"):
            raise ValueError(f"unknown backend {backend!r}")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.backend = backend
        self.max_workers = max_workers
        self.max_attempts = max_attempts
        self.injector = failure_injector
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.last_stats: RunStats | None = None

    # ------------------------------------------------------------------ api
    def run(self, job: MapReduceJob, inputs: Iterable[tuple]) -> list[tuple]:
        """Execute one round; returns the reducer output pairs, ordered by
        (reduce partition, key order within partition)."""
        pairs = list(inputs)
        stats = RunStats(job=job.name, input_records=len(pairs))

        map_outputs = self._map_phase(job, pairs, stats)
        partitions = self._shuffle(job, map_outputs, stats)
        output = self._reduce_phase(job, partitions, stats)

        if self.injector is not None:
            stats.injected_failures = self.injector.injected
        self.last_stats = stats
        return output

    def run_rounds(self, jobs: list[MapReduceJob], inputs: Iterable[tuple]) -> list[tuple]:
        """Chain rounds: round i+1 consumes round i's output (GraphFlat's
        'Reduce phase runs K times' is exactly this chaining)."""
        data = list(inputs)
        merged = RunStats(job="+".join(j.name for j in jobs))
        for job in jobs:
            data = self.run(job, data)
            assert self.last_stats is not None
            merged.merge(self.last_stats)
        self.last_stats = merged
        return data

    # ------------------------------------------------------------ internals
    def _attempts(self, job_name: str, task_id: str, body):
        """Run ``body()`` with the retry loop; count attempts via return."""
        last_exc: Exception | None = None
        for attempt in range(self.max_attempts):
            try:
                if self.injector is not None:
                    # Simulate a crash mid-task: the attempt produces nothing.
                    self.injector.maybe_fail(job_name, task_id, attempt)
                return body(), attempt + 1
            except InjectedWorkerFailure as exc:
                last_exc = exc
                continue
        raise JobFailedError(
            f"task {task_id} of job {job_name!r} failed {self.max_attempts} attempts"
        ) from last_exc

    def _map_phase(self, job: MapReduceJob, pairs: list[tuple], stats: RunStats):
        chunks = _chunk(pairs, job.effective_mappers)

        def map_task(task_index: int):
            out: list[list[tuple]] = [[] for _ in range(job.num_reducers)]
            mapped = 0
            for key, value in chunks[task_index]:
                for out_key, out_value in job.mapper(key, value):
                    out[job.partitioner(out_key, job.num_reducers)].append((out_key, out_value))
                    mapped += 1
            combined = 0
            if job.combiner is not None:
                for p in range(job.num_reducers):
                    squeezed: list[tuple] = []
                    for k, values in group_sorted(out[p]):
                        squeezed.extend(job.combiner(k, values))
                    out[p] = squeezed
                    combined += len(squeezed)
            return out, mapped, combined

        results = self._execute(
            job.name, [(f"map-{i}", lambda i=i: map_task(i)) for i in range(len(chunks))]
        )
        map_outputs = []
        for (buckets, mapped, combined), attempts in results:
            map_outputs.append(buckets)
            stats.mapped_records += mapped
            stats.combined_records += combined
            stats.map_attempts += attempts
        return map_outputs

    def _shuffle(self, job: MapReduceJob, map_outputs, stats: RunStats):
        partitions: list[list[tuple]] = []
        for p in range(job.num_reducers):
            part: list[tuple] = []
            for buckets in map_outputs:
                part.extend(buckets[p])
            stats.shuffled_records += len(part)
            partitions.append(part)

        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            spilled = []
            for p, part in enumerate(partitions):
                path = self.spill_dir / f"{job.name}.shuffle.{p:05d}.pkl"
                with open(path, "wb") as fh:
                    pickle.dump(part, fh, protocol=pickle.HIGHEST_PROTOCOL)
                spilled.append(path)
            partitions = []
            for path in spilled:
                with open(path, "rb") as fh:
                    partitions.append(pickle.load(fh))
                path.unlink()
        return partitions

    def _reduce_phase(self, job: MapReduceJob, partitions, stats: RunStats):
        def reduce_task(p: int):
            groups = group_sorted(partitions[p])
            out: list[tuple] = []
            biggest = 0
            for key, values in groups:
                biggest = max(biggest, len(values))
                out.extend(job.reducer(key, values))
            return out, len(groups), biggest

        results = self._execute(
            job.name,
            [(f"reduce-{p}", lambda p=p: reduce_task(p)) for p in range(len(partitions))],
        )
        output: list[tuple] = []
        for p, ((pairs, groups, biggest), attempts) in enumerate(results):
            output.extend(pairs)
            stats.reduced_records += len(pairs)
            stats.reduce_attempts += attempts
            stats.reducer_group_sizes[p] = groups
            stats.max_group_values = max(stats.max_group_values, biggest)
        return output

    def _execute(self, job_name: str, tasks: list[tuple[str, object]]):
        """Run ``(task_id, thunk)`` tasks under the retry loop; ordered results."""
        if self.backend == "serial" or len(tasks) <= 1:
            return [self._attempts(job_name, tid, thunk) for tid, thunk in tasks]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(self._attempts, job_name, tid, thunk) for tid, thunk in tasks
            ]
            return [f.result() for f in futures]
