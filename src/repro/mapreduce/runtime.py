"""Execution engine for :class:`~repro.mapreduce.job.MapReduceJob`.

Backends (see :mod:`repro.mapreduce.backends` for the registry):

* ``"serial"`` — everything in the calling thread; the reference semantics.
* ``"threads"`` — map and reduce tasks on a thread pool.
* ``"processes"`` — map and reduce tasks in a ``ProcessPoolExecutor``:
  true multi-core scaling (§3.2's near-linear GraphFlat speedup).  Job
  operators must be picklable — top-level functions or callable
  dataclasses, not closures.

All backends produce position-ordered (task index, not completion order)
output, so results are byte-identical to the serial backend.

Fault tolerance: each task runs in an attempt loop governed by a
:class:`~repro.mapreduce.retry.RetryPolicy` — a bounded attempt budget, a
set of retryable exception types, and deterministic seeded exponential
backoff.  An injected (or real) failure — a crashed worker process, an
attempt that overran its ``task_timeout_s`` deadline (cooperative check
under serial/threads, parent-side pool kill under processes), or a
corrupted spill run caught by the frame CRC — discards the attempt's
output and re-executes the task, mirroring MapReduce's re-execution model.
Straggler attempts can additionally race a speculative duplicate
(``speculation_factor``, processes backend): first completion wins.
Because tasks are pure functions of their input partition and spill writes
are atomic and idempotent, retries and duplicates cannot change job output
— the chaos-matrix tests assert byte-identity under every fault kind of
:class:`~repro.mapreduce.fault.FaultPlan` on every backend.

Shuffle spill: with ``spill_dir`` set (or always under the ``processes``
backend, which uses a private temp directory unless told otherwise), each
map task spills key-sorted frame files per reduce partition and reducers
*stream-merge* their partition's files (:mod:`repro.mapreduce.spill`):
groups are fed to the reducer one at a time through a bounded per-file
buffer, so a reducer's *input* partition never has to be resident in RAM.
The write side is bounded too: map tasks and chain reducers stream their
output through :class:`~repro.mapreduce.spill.SpillRunWriter`, which
external-sorts into bounded runs (``spill_run_records`` / ``spill_run_bytes``
knobs) that the next round's read-side merge recombines — so neither side
of a shuffle ever materializes a partition.  Spill records are encoded by a
pluggable codec
(``shuffle_codec``): ``"pickle"`` for arbitrary jobs, or ``"binary"`` flat
records (:mod:`repro.proto.framing`) which GraphFlat/GraphInfer use to avoid
the per-object pickling tax on their dominant shuffle volumes.

Chained rounds (:meth:`LocalRuntime.run_rounds`): when round ``i+1`` is a
reduce-only job (identity mapper, no combiner — every GraphFlat/GraphInfer
round is), round ``i``'s reducers partition their output *directly* for
round ``i+1``'s reducers, and the identity map phase is skipped.  Under the
process backend the partitions go to spill files, so intermediate records
never travel through the parent at all — the parent only ever sees file
counters between rounds, which is what makes multi-core scaling survive
Python's serialization costs.  The *first* round gets the symmetric
treatment: when it is itself reduce-only, the parent partitions (and spills)
the job input directly instead of shipping chunks through identity map
tasks, skipping one full IPC pass.  Record order is provably identical to
the unchained execution (reduce-task order = the order identity map tasks
would have preserved), so output stays byte-identical.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time
import weakref
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.mapreduce.backends import AttemptContext, Backend, make_backend
from repro.mapreduce.fault import (
    AttemptSpec,
    FailureInjector,
    FaultPlan,
    InjectedWorkerFailure,
    TaskTimeoutError,
    maybe_check_deadline,
)
from repro.mapreduce.job import Combiner, JobFailedError, MapReduceJob, identity_mapper
from repro.mapreduce.partition import spill_tag
from repro.mapreduce.retry import PhaseMonitor, RetryPolicy
from repro.mapreduce.shuffle import default_partition, group_sorted
from repro.mapreduce.spill import (
    DEFAULT_RUN_BYTES,
    DEFAULT_RUN_RECORDS,
    SPILL_CODECS,
    SpillLayout,
    SpillWriteResult,
)

__all__ = ["LocalRuntime", "RunStats"]


@dataclass
class RunStats:
    """Counters from the most recent job execution."""

    job: str = ""
    input_records: int = 0
    mapped_records: int = 0
    combined_records: int = 0
    shuffled_records: int = 0
    reduced_records: int = 0
    shuffle_bytes_written: int = 0
    """Bytes spilled to shuffle files this round (0 for in-memory shuffles)
    — the quantity the binary record codec exists to shrink."""
    transport_bytes_sent: int = 0
    """Bytes the shuffle transport moved off this host (wire frames served
    by the TCP peer server, or pushes across the shared-dir mount); 0 for
    the local transport — nothing leaves the filesystem."""
    transport_bytes_received: int = 0
    """Bytes the shuffle transport brought to reducers from elsewhere
    (fetch requests + shared-dir reads); 0 for the local transport."""
    peak_reducer_buffer_bytes: int = 0
    """Largest single sorted-run flush (file bytes) any chain reducer made
    this round — the external sort's buffering high-water mark.  Bounded by
    the run knobs, it stays flat as shard size grows; 0 for in-memory
    shuffles and terminal collect rounds."""
    map_attempts: int = 0
    reduce_attempts: int = 0
    injected_failures: int = 0
    timeouts: int = 0
    """Task attempts that overran ``task_timeout_s`` (cooperative deadline
    or parent-side pool kill) and were re-executed."""
    speculative_launched: int = 0
    """Duplicate attempts launched for straggler tasks this round."""
    speculative_won: int = 0
    """Straggler races the duplicate won (its result was used)."""
    backoff_total_s: float = 0.0
    """Total retry-backoff sleep this round (deterministic seeded
    exponential backoff; 0 unless the retry policy sets a base delay)."""
    reducer_group_sizes: dict[int, int] = field(default_factory=dict)
    """partition -> number of (key, values) groups — load-balance evidence."""
    max_group_values: int = 0
    """Largest single reduce group (values under one key) seen in the round —
    the quantity hub re-indexing exists to bound (§3.2.2)."""
    partition_records: dict[int, int] = field(default_factory=dict)
    """partition -> records shuffled *into* that reduce partition this round
    — the skew the pluggable partitioner exists to control."""
    partition_bytes: dict[int, int] = field(default_factory=dict)
    """partition -> shuffle file bytes destined for that reduce partition
    (spilled shuffles only; empty for in-memory rounds)."""

    def records_skew(self) -> float:
        """Max/mean records per reduce partition (1.0 = perfectly balanced,
        0.0 = no data or a single partition)."""
        return _skew_factor(self.partition_records)

    def bytes_skew(self) -> float:
        """Max/mean shuffle bytes per reduce partition."""
        return _skew_factor(self.partition_bytes)

    def merge(self, other: "RunStats") -> None:
        if not self.job:
            self.job = other.job
        self.input_records += other.input_records
        self.mapped_records += other.mapped_records
        self.combined_records += other.combined_records
        self.shuffled_records += other.shuffled_records
        self.reduced_records += other.reduced_records
        self.shuffle_bytes_written += other.shuffle_bytes_written
        self.transport_bytes_sent += other.transport_bytes_sent
        self.transport_bytes_received += other.transport_bytes_received
        self.peak_reducer_buffer_bytes = max(
            self.peak_reducer_buffer_bytes, other.peak_reducer_buffer_bytes
        )
        self.map_attempts += other.map_attempts
        self.reduce_attempts += other.reduce_attempts
        self.injected_failures += other.injected_failures
        self.timeouts += other.timeouts
        self.speculative_launched += other.speculative_launched
        self.speculative_won += other.speculative_won
        self.backoff_total_s += other.backoff_total_s
        for partition, groups in other.reducer_group_sizes.items():
            self.reducer_group_sizes[partition] = (
                self.reducer_group_sizes.get(partition, 0) + groups
            )
        self.max_group_values = max(self.max_group_values, other.max_group_values)
        for partition, records in other.partition_records.items():
            self.partition_records[partition] = (
                self.partition_records.get(partition, 0) + records
            )
        for partition, nbytes in other.partition_bytes.items():
            self.partition_bytes[partition] = (
                self.partition_bytes.get(partition, 0) + nbytes
            )


def _skew_factor(per_partition: dict[int, int]) -> float:
    """Max/mean of a per-partition counter.  The imbalance number the bench
    grid tracks: hashing a power-law key set pushes it well above 1; the
    planned partitioner pulls it back toward 1."""
    if len(per_partition) < 2:
        return 0.0
    total = sum(per_partition.values())
    if total <= 0:
        return 0.0
    return max(per_partition.values()) * len(per_partition) / total


@dataclass(frozen=True)
class _AttemptOutcome:
    """Per-task fault-tolerance accounting returned by the retry loop."""

    attempts: int
    timeouts: int = 0
    backoff_s: float = 0.0


def _chunk(seq: list, n: int) -> list[list]:
    """Split ``seq`` into ``n`` contiguous chunks (some possibly empty)."""
    if n <= 0:
        raise ValueError("need at least one chunk")
    size, extra = divmod(len(seq), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        chunks.append(seq[start:end])
        start = end
    return chunks


# --------------------------------------------------------- sources and sinks
# Reduce tasks pull their partition's *groups* from a source (streamed, for
# spill sources) and push their output pairs into a *sink* as they are
# produced.  All of these are picklable: under the "processes" backend they
# ship to worker processes inside the task arguments.


@dataclass(frozen=True)
class _MemorySource:
    pairs: list

    def groups(self):
        return group_sorted(self.pairs)


@dataclass(frozen=True)
class _SpillSource:
    layout: SpillLayout
    partition: int
    num_map_tasks: int

    def groups(self):
        # Streamed external merge: one group resident at a time, never the
        # whole partition (see SpillLayout.iter_groups).
        return self.layout.iter_groups(self.partition, self.num_map_tasks)


@dataclass(frozen=True)
class _CollectSink:
    """Terminal round: reducer output pairs go back to the caller."""

    def store(self, task_index: int, pairs):
        return list(pairs)


def _partition_pairs(pairs, partitioner: Callable, num_partitions: int):
    buckets: list[list[tuple]] = [[] for _ in range(num_partitions)]
    for key, value in pairs:
        buckets[partitioner(key, num_partitions)].append((key, value))
    return buckets


@dataclass(frozen=True)
class _MemoryChainSink:
    """Chained round (in-memory): partition output for the next round's
    reducers; the skipped identity map phase would have done the same."""

    partitioner: Callable
    num_partitions: int

    def store(self, task_index: int, pairs):
        return _partition_pairs(pairs, self.partitioner, self.num_partitions)


@dataclass(frozen=True)
class _SpillChainSink:
    """Chained round (spilled): partition output straight to the next
    round's shuffle files; only counters go back to the parent.

    Output streams through a :class:`~repro.mapreduce.spill.SpillRunWriter`
    — the reducer's own output is external-sorted into bounded runs as it
    is produced, never buffered whole (tentpole of the constant-memory
    dataflow)."""

    layout: SpillLayout
    partitioner: Callable
    run_records: int = DEFAULT_RUN_RECORDS
    run_bytes: int = DEFAULT_RUN_BYTES

    def store(self, task_index: int, pairs):
        writer = self.layout.run_writer(
            task_index, run_records=self.run_records, run_bytes=self.run_bytes
        )
        num = self.layout.num_partitions
        partitioner = self.partitioner
        for key, value in pairs:
            writer.append(partitioner(key, num), key, value)
        return writer.finish()


@dataclass
class _ChainState:
    """Parent-side handle on a chained round's pre-partitioned input."""

    num_tasks: int
    layout: SpillLayout | None = None
    counts: list[list[int]] | None = None
    buckets: list[list[list]] | None = None
    byte_counts: list[tuple[int, ...]] | None = None

    @property
    def total_records(self) -> int:
        if self.counts is not None:
            return sum(sum(c) for c in self.counts)
        return sum(len(b) for task in self.buckets for b in task)

    def partition_totals(self) -> tuple[list[int], list[int] | None]:
        """Per-partition (records, file bytes) summed over writer tasks —
        what the consuming round reports as its shuffle skew.  Bytes are
        ``None`` for in-memory chains."""
        if self.counts is not None:
            num = self.layout.num_partitions
            records = [0] * num
            for task in self.counts:
                for p, n in enumerate(task):
                    records[p] += n
            nbytes = None
            if self.byte_counts and all(t is not None for t in self.byte_counts):
                nbytes = [0] * num
                for task in self.byte_counts:
                    for p, b in enumerate(task):
                        nbytes[p] += b
            return records, nbytes
        num = len(self.buckets[0]) if self.buckets else 0
        records = [0] * num
        for task in self.buckets:
            for p, bucket in enumerate(task):
                records[p] += len(bucket)
        return records, None

    source_fn: Callable | None = None
    """Transport-aware source factory ``(layout, partition, num_tasks) ->
    source`` (parent-side only, never pickled); ``None`` falls back to the
    direct-read :class:`_SpillSource`."""

    def source(self, partition: int):
        if self.layout is not None:
            if self.source_fn is not None:
                return self.source_fn(self.layout, partition, self.num_tasks)
            return _SpillSource(self.layout, partition, self.num_tasks)
        merged: list[tuple] = []
        for task in self.buckets:
            merged.extend(task[partition])
        return _MemorySource(merged)

    def cleanup(self) -> None:
        if self.layout is not None:
            # The layout owns a per-round private directory — removing it
            # wholesale also drops .tmp partials from crashed attempts.
            shutil.rmtree(self.layout.root, ignore_errors=True)


# ----------------------------------------------------------------- task bodies
# Top-level functions: they (and their arguments) are pickled to worker
# processes under the "processes" backend.


def _map_chunk(job: MapReduceJob, chunk: list[tuple]):
    """Map + partition + optional combine for one input chunk."""
    out: list[list[tuple]] = [[] for _ in range(job.num_reducers)]
    mapped = 0
    for key, value in chunk:
        maybe_check_deadline()
        for out_key, out_value in job.mapper(key, value):
            out[job.partitioner(out_key, job.num_reducers)].append((out_key, out_value))
            mapped += 1
    combined = 0
    if job.combiner is not None:
        for p in range(job.num_reducers):
            squeezed: list[tuple] = []
            for k, values in group_sorted(out[p]):
                squeezed.extend(job.combiner(k, values))
            out[p] = squeezed
            combined += len(squeezed)
    return out, mapped, combined


def _map_task_memory(job: MapReduceJob, chunk: list[tuple]):
    return _map_chunk(job, chunk)


def _map_task_spill(
    job: MapReduceJob,
    chunk: list[tuple],
    spill: SpillLayout,
    index: int,
    run_records: int = DEFAULT_RUN_RECORDS,
    run_bytes: int = DEFAULT_RUN_BYTES,
):
    """Spilling map task: partition files go straight to disk; only the
    per-partition counts and byte totals travel back to the parent.

    Mapper output streams through a bounded-run writer.  A
    :class:`~repro.mapreduce.job.Combiner` is pushed down into the writer,
    which folds each key's run right before it hits disk (frame-level
    map-side combine — no whole-output grouping pass).  Classic callable
    combiners may re-key, so they keep the eager grouped path."""
    combiner = job.combiner if isinstance(job.combiner, Combiner) else None
    if combiner is None and job.combiner is not None:
        buckets, mapped, combined = _map_chunk(job, chunk)
        return spill.write_map_output(index, buckets), mapped, combined
    writer = spill.run_writer(
        index, combiner=combiner, run_records=run_records, run_bytes=run_bytes
    )
    mapped = 0
    partitioner = job.partitioner
    num = job.num_reducers
    for key, value in chunk:
        maybe_check_deadline()
        for out_key, out_value in job.mapper(key, value):
            mapped += 1
            writer.append(partitioner(out_key, num), out_key, out_value)
    written = writer.finish()
    combined = sum(written.counts) if combiner is not None else 0
    return written, mapped, combined


def _reduce_task(job: MapReduceJob, source, sink, task_index: int):
    """Stream groups from the source through the reducer into the sink:
    with a spill source the input partition is never resident — one group
    at a time.  (Chain sinks still buffer the task's own output to sort it
    before writing; bounding that too is a ROADMAP item.)"""
    counters = [0, 0, 0]  # reduced pairs, groups, largest group

    def produced():
        for key, values in source.groups():
            maybe_check_deadline()
            counters[1] += 1
            if len(values) > counters[2]:
                counters[2] = len(values)
            for pair in job.reducer(key, values):
                counters[0] += 1
                yield pair

    stored = sink.store(task_index, produced())
    return stored, counters[0], counters[1], counters[2]


def _session_prefix() -> str:
    """Session-directory name prefix: ``mr<pid>.h<hosttag>.``.

    The host tag scopes the liveness probe: pids are only meaningful on the
    machine that issued them, so when ``spill_dir`` is a shared (DFS) mount
    the sweep must never judge — let alone reap — another host's sessions
    by its own process table."""
    from repro.transport.cluster import host_tag

    return f"mr{os.getpid()}.h{host_tag()}."


def _sweep_dead_sessions(spill_dir: Path) -> None:
    """Remove session directories whose owning process no longer exists.

    A runtime that crashed (or was SIGKILLed) mid-chain cannot run its own
    cleanup, stranding intermediate run files under the shared ``spill_dir``.
    Session directory names embed the owner's pid and host
    (``mr<pid>.h<hosttag>.<token>``), so the next runtime to use the
    directory reaps every *same-host* session whose pid is gone — a crashed
    round N leaves nothing behind for anyone's round N+1, while sessions
    owned by other hosts on a shared mount are left strictly alone (their
    pids mean nothing here)."""
    from repro.transport.cluster import host_tag

    local_tag = f"h{host_tag()}"
    for entry in spill_dir.glob("mr[0-9]*.*"):
        if not entry.is_dir():
            continue
        name = entry.name
        parts = name.split(".")
        try:
            pid = int(parts[0][2:])
        except ValueError:
            continue
        # Host-tagged sessions from other hosts are not ours to judge;
        # legacy two-part names (``mr<pid>.<token>``) predate the tag and
        # were always written by local processes.
        if len(parts) >= 3 and parts[1].startswith("h") and parts[1] != local_tag:
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            shutil.rmtree(entry, ignore_errors=True)
        except OSError:
            continue  # pid alive under another user, or unknowable — keep it


def _note_partitions(
    stats: RunStats, records: list[int], nbytes: list[int] | tuple[int, ...] | None = None
) -> None:
    """Fold one writer's per-partition record (and optionally byte) totals
    into the round's skew counters.  Every partition index is recorded —
    zeros included — so the skew factor's mean is over real partitions,
    not just non-empty ones."""
    for p, n in enumerate(records):
        stats.partition_records[p] = stats.partition_records.get(p, 0) + n
    if nbytes is not None:
        for p, b in enumerate(nbytes):
            stats.partition_bytes[p] = stats.partition_bytes.get(p, 0) + b


def _chainable(job: MapReduceJob) -> bool:
    """A reduce-only round can consume the previous round's reducer output
    directly (its identity map phase is a no-op to skip)."""
    return job.mapper is identity_mapper and job.combiner is None


class LocalRuntime:
    """Runs MapReduce jobs locally with retries and optional disk spill."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        max_attempts: int = 3,
        failure_injector: FailureInjector | None = None,
        spill_dir: str | Path | None = None,
        shuffle_codec: str = "pickle",
        spill_run_records: int = DEFAULT_RUN_RECORDS,
        spill_run_bytes: int = DEFAULT_RUN_BYTES,
        task_timeout_s: float | None = None,
        speculation_factor: float | None = None,
        retry_policy: RetryPolicy | None = None,
        partitioner: Callable[[object, int], int] | None = None,
        shuffle_transport: str = "local",
        cluster=None,
    ):
        from repro.transport.shuffle import SHUFFLE_TRANSPORTS, make_shuffle_transport

        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if shuffle_codec not in SPILL_CODECS:
            raise ValueError(
                f"unknown shuffle codec {shuffle_codec!r}; known: {SPILL_CODECS}"
            )
        if shuffle_transport not in SHUFFLE_TRANSPORTS:
            raise ValueError(
                f"unknown shuffle transport {shuffle_transport!r}; "
                f"known: {SHUFFLE_TRANSPORTS}"
            )
        if shuffle_transport == "shared-dir" and spill_dir is None:
            raise ValueError(
                "the shared-dir shuffle transport pushes runs across a shared "
                "mount: pass spill_dir (the mount point)"
            )
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be > 0, got {task_timeout_s}")
        if speculation_factor is not None and speculation_factor <= 1.0:
            raise ValueError(
                f"speculation_factor must be > 1, got {speculation_factor}"
            )
        self._backend: Backend = make_backend(backend, max_workers)
        self.backend = backend
        self.max_workers = max_workers
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=max_attempts)
        )
        self.max_attempts = self.retry_policy.max_attempts
        self.task_timeout_s = task_timeout_s
        self.speculation_factor = speculation_factor
        self.injector = failure_injector
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.shuffle_codec = shuffle_codec
        self.partitioner = partitioner
        """Runtime-level partition function: overrides every job that still
        carries the hash default (jobs with an explicit partitioner keep
        it).  Must be deterministic and, under the process backend,
        picklable — see :class:`~repro.mapreduce.partition.Partitioner`."""
        self.spill_run_records = spill_run_records
        self.spill_run_bytes = spill_run_bytes
        self.shuffle_transport = shuffle_transport
        self.cluster = cluster
        self._transport = make_shuffle_transport(shuffle_transport, cluster)
        self._session_dir: Path | None = None
        self._finalizer: weakref.finalize | None = None
        self.last_stats: RunStats | None = None
        self.round_stats: list[RunStats] = []

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down pooled workers, the shuffle transport, and remove this
        runtime's session spill directory (round subdirectories and all)."""
        self._backend.close()
        self._transport.close()
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._session_dir = None

    def __enter__(self) -> "LocalRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def needs_pickling(self) -> bool:
        """True when tasks (and everything inside them — operators,
        partitioners, sinks) cross a process boundary.  Callers use this to
        pick broadcast transports: inline payloads for in-process backends,
        shared-memory locators for pickling ones."""
        return self._backend.needs_pickling

    def _resolve_partitioner(self, job: MapReduceJob | None) -> MapReduceJob | None:
        """Apply the runtime-level partitioner to jobs still on the hash
        default.  A job that names its own partitioner is explicit intent
        (e.g. a final round pinned to hash for output-order stability) and
        is left alone."""
        if (
            job is None
            or self.partitioner is None
            or job.partitioner is not default_partition
        ):
            return job
        return replace(job, partitioner=self.partitioner)

    # ------------------------------------------------------------------ api
    def run(self, job: MapReduceJob, inputs: Iterable[tuple]) -> list[tuple]:
        """Execute one round; returns the reducer output pairs, ordered by
        (reduce partition, key order within partition)."""
        job = self._resolve_partitioner(job)
        if self._backend.needs_pickling:
            self._check_shippable(job)
        output, stats = self._run_one(job, list(inputs), incoming=None, next_job=None)
        self.round_stats = [stats]
        self.last_stats = stats
        return output

    def run_rounds(
        self,
        jobs: list[MapReduceJob],
        inputs: Iterable[tuple],
        final_sink=None,
    ) -> list:
        """Chain rounds: round i+1 consumes round i's output (GraphFlat's
        'Reduce phase runs K times' is exactly this chaining).  Consecutive
        reduce-only rounds hand partitions directly from reducer to reducer
        — see the module docstring.  Per-round counters land in
        ``round_stats``; ``last_stats`` holds their merge.

        ``final_sink`` replaces the terminal collect: instead of shipping
        the last round's output pairs back to the parent, each final
        reducer streams its pairs into ``final_sink.store(task_index,
        pairs)`` — e.g. writing its own columnar shard — and only the
        per-partition summaries return (as the result list, in partition
        order).  The sink must be picklable under the process backend."""
        data = list(inputs)
        if not jobs:
            return data
        jobs = [self._resolve_partitioner(job) for job in jobs]
        if self._backend.needs_pickling:
            for job in jobs:
                self._check_shippable(job)
            if final_sink is not None:
                self._check_shippable(final_sink, what="final sink")
        self.round_stats = []
        merged = RunStats(job="+".join(j.name for j in jobs))
        incoming: _ChainState | None = None
        try:
            for i, job in enumerate(jobs):
                next_job = jobs[i + 1] if i + 1 < len(jobs) else None
                if next_job is not None and not _chainable(next_job):
                    next_job = None
                # Round-unique spill namespace: consecutive jobs may share a
                # name, and round i+1's chain input must not collide with
                # the files round i+2's input is being written to.
                chain_name = None if next_job is None else f"chain{i + 1:04d}.{next_job.name}"
                sink = final_sink if i == len(jobs) - 1 else None
                result, stats = self._run_one(job, data, incoming, next_job, chain_name, sink)
                self.round_stats.append(stats)
                merged.merge(stats)
                if isinstance(result, _ChainState):
                    incoming, data = result, []
                else:
                    incoming, data = None, result
        finally:
            if incoming is not None:  # exception mid-chain: drop spill files
                incoming.cleanup()
        self.last_stats = merged
        return data

    # ------------------------------------------------------------ internals
    def _check_shippable(self, obj, what: str = "job") -> None:
        name = f" {obj.name!r}" if isinstance(obj, MapReduceJob) else ""
        try:
            pickle.dumps(obj)
        except Exception as exc:
            raise TypeError(
                f"{what}{name} cannot be shipped to worker processes "
                f"({exc}); use top-level functions or callable dataclasses, "
                "not closures"
            ) from exc

    def _spill_root(self) -> str | None:
        """Directory for this runtime's shuffle files: a per-runtime
        *session* directory (``mr<pid>.<token>``) under the user's
        ``spill_dir``, a private temp dir under the process backend, else
        ``None`` (in-memory).

        All of a session's round and chain directories live inside its
        session directory, so one rmtree — at :meth:`close`, via the
        garbage-collection finalizer, or by a later runtime sweeping
        sessions whose owning process is dead — removes every intermediate
        run file a crashed round could have stranded."""
        if self._session_dir is not None:
            return str(self._session_dir)
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            _sweep_dead_sessions(self.spill_dir)
            self._session_dir = Path(
                tempfile.mkdtemp(prefix=_session_prefix(), dir=self.spill_dir)
            )
        elif self._backend.needs_pickling or self.shuffle_transport != "local":
            # A TCP shuffle without an explicit spill_dir still needs run
            # files to serve — spill into a private temp session.
            self._session_dir = Path(tempfile.mkdtemp(prefix="repro-mr-spill-"))
        else:
            return None
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self._session_dir), ignore_errors=True
        )
        return str(self._session_dir)

    def _run_one(
        self,
        job: MapReduceJob,
        data: list[tuple],
        incoming: _ChainState | None,
        next_job: MapReduceJob | None,
        chain_name: str | None = None,
        final_sink=None,
    ):
        """One map -> shuffle -> reduce round.  ``incoming`` replaces the
        map phase with pre-partitioned chain input; ``next_job`` makes the
        reduce phase emit chain input for the following round instead of
        collecting output pairs; ``final_sink`` replaces the terminal
        collect with a reducer-owned store (per-partition summaries come
        back instead of pairs)."""
        stats = RunStats(job=job.name)
        injected_before = self.injector.injected if self.injector is not None else 0
        spill_root = self._spill_root()
        consumed: _ChainState | None = incoming
        chain: _ChainState | None = None
        success = False

        try:
            if incoming is None and _chainable(job):
                # Parent-side partitioning: a reduce-only first round needs
                # no map phase at all — the parent buckets (and spills) the
                # input directly, skipping one full IPC pass.  A single
                # stably-sorted writer produces the same merged order as N
                # chunked identity map tasks, so output is unchanged.
                stats.input_records = len(data)
                stats.mapped_records = len(data)
                stats.shuffled_records = len(data)
                buckets = _partition_pairs(data, job.partitioner, job.num_reducers)
                if spill_root is not None:
                    run_dir = tempfile.mkdtemp(prefix=f"{job.name}.", dir=spill_root)
                    self._transport.register_root(run_dir)
                    layout = SpillLayout(
                        run_dir,
                        job.name,
                        job.num_reducers,
                        codec=self.shuffle_codec,
                        partition_tag=spill_tag(job.partitioner),
                        partition_subdirs=self._transport.partition_subdirs,
                    )
                    # Chain state before the write: if encoding fails
                    # mid-spill, the finally block still removes the run
                    # directory (and any .tmp partial).
                    consumed = _ChainState(num_tasks=1, layout=layout)
                    written = layout.write_map_output(0, buckets)
                    stats.shuffle_bytes_written += written.bytes_written
                    _note_partitions(stats, written.counts, written.partition_bytes)
                    sources = [
                        self._transport.source(layout, p, 1)
                        for p in range(job.num_reducers)
                    ]
                else:
                    _note_partitions(stats, [len(b) for b in buckets])
                    sources = [_MemorySource(b) for b in buckets]
            elif incoming is None:
                stats.input_records = len(data)
                layout = None
                if spill_root is not None:
                    # Private per-round directory: deterministic file names
                    # from an earlier failed run can never leak records into
                    # this one, and cleanup is one rmtree.
                    run_dir = tempfile.mkdtemp(prefix=f"{job.name}.", dir=spill_root)
                    self._transport.register_root(run_dir)
                    layout = SpillLayout(
                        run_dir,
                        job.name,
                        job.num_reducers,
                        codec=self.shuffle_codec,
                        partition_tag=spill_tag(job.partitioner),
                        partition_subdirs=self._transport.partition_subdirs,
                    )
                    consumed = _ChainState(num_tasks=job.effective_mappers, layout=layout)
                map_outputs = self._map_phase(job, data, stats, layout)
                if layout is None:
                    sources = []
                    for p in range(job.num_reducers):
                        part: list[tuple] = []
                        for buckets in map_outputs:
                            part.extend(buckets[p])
                        stats.shuffled_records += len(part)
                        stats.partition_records[p] = len(part)
                        sources.append(_MemorySource(part))
                else:
                    for written in map_outputs:
                        stats.shuffled_records += sum(written.counts)
                        stats.shuffle_bytes_written += written.bytes_written
                        _note_partitions(stats, written.counts, written.partition_bytes)
                    sources = [
                        self._transport.source(layout, p, job.effective_mappers)
                        for p in range(job.num_reducers)
                    ]
            else:
                # Chained round: the identity map phase is skipped — the
                # records are already partitioned for this job's reducers.
                total = incoming.total_records
                stats.input_records = total
                stats.mapped_records = total
                stats.shuffled_records = total
                records, nbytes = incoming.partition_totals()
                _note_partitions(stats, records, nbytes)
                sources = [incoming.source(p) for p in range(job.num_reducers)]

            if next_job is None:
                sink = final_sink if final_sink is not None else _CollectSink()
            elif spill_root is not None:
                chain_dir = tempfile.mkdtemp(prefix=f"{chain_name}.", dir=spill_root)
                self._transport.register_root(chain_dir)
                chain_layout = SpillLayout(
                    chain_dir,
                    chain_name,
                    next_job.num_reducers,
                    codec=self.shuffle_codec,
                    partition_tag=spill_tag(next_job.partitioner),
                    partition_subdirs=self._transport.partition_subdirs,
                )
                sink = _SpillChainSink(
                    chain_layout,
                    next_job.partitioner,
                    run_records=self.spill_run_records,
                    run_bytes=self.spill_run_bytes,
                )
                chain = _ChainState(
                    num_tasks=job.num_reducers,
                    layout=chain_layout,
                    counts=[],
                    byte_counts=[],
                    source_fn=self._transport.source,
                )
            else:
                sink = _MemoryChainSink(next_job.partitioner, next_job.num_reducers)
                chain = _ChainState(num_tasks=job.num_reducers, buckets=[])

            tasks = [
                (f"reduce-{p}", _reduce_task, (job, sources[p], sink, p))
                for p in range(job.num_reducers)
            ]
            results = self._execute(job.name, tasks, stats, phase="reduce")
            success = True
        finally:
            if consumed is not None:
                consumed.cleanup()
            if not success and chain is not None:
                chain.cleanup()

        output: list = []
        for p, (stored, reduced, groups, biggest) in enumerate(results):
            stats.reduced_records += reduced
            stats.reducer_group_sizes[p] = groups
            stats.max_group_values = max(stats.max_group_values, biggest)
            if chain is None:
                if final_sink is not None:
                    output.append(stored)  # per-partition sink summary
                else:
                    output.extend(stored)
            elif chain.layout is not None:
                assert isinstance(stored, SpillWriteResult)
                chain.counts.append(stored.counts)
                chain.byte_counts.append(stored.partition_bytes)
                stats.shuffle_bytes_written += stored.bytes_written
                stats.peak_reducer_buffer_bytes = max(
                    stats.peak_reducer_buffer_bytes, stored.peak_buffer_bytes
                )
            else:
                chain.buckets.append(stored)

        if self.injector is not None:
            stats.injected_failures = self.injector.injected - injected_before
        self._transport.account(stats)
        return (chain if chain is not None else output), stats

    def _attempt_spec(self, fault: str | None) -> AttemptSpec | None:
        """Worker-side instructions for one attempt; ``None`` when there is
        nothing to apply (the common case — zero per-attempt overhead)."""
        if fault is None and self.task_timeout_s is None:
            return None
        if isinstance(self.injector, FaultPlan):
            return self.injector.spec(fault, self.task_timeout_s)
        return AttemptSpec(fault=fault, timeout_s=self.task_timeout_s)

    def _attempts(self, job_name: str, task_id: str, body, monitor=None):
        """Run one task under the retry policy; returns ``(result,
        _AttemptOutcome)``.

        Per attempt: the fault plan draws this attempt's injected fault
        (``crash`` is raised right here, parent-side, like a worker that
        died before doing any work; other kinds ship to the worker inside
        the :class:`AttemptSpec`), the body runs with the attempt context,
        and a failure is re-executed only if the policy classifies it as
        retryable — after the policy's deterministic backoff."""
        policy = self.retry_policy
        last_exc: Exception | None = None
        timeouts = 0
        backoff_total = 0.0
        for attempt in range(policy.max_attempts):
            fault = None
            if self.injector is not None:
                fault = self.injector.draw(job_name, task_id, attempt)
            try:
                if fault == "crash":
                    # Simulate a crash mid-task: the attempt produces nothing.
                    raise InjectedWorkerFailure(
                        f"injected failure: job={job_name} task={task_id} "
                        f"attempt={attempt}"
                    )
                ctx = AttemptContext(
                    spec=self._attempt_spec(fault),
                    timeout_s=self.task_timeout_s,
                    monitor=monitor,
                )
                start = time.monotonic()
                result = body(ctx)
                if monitor is not None:
                    monitor.record(time.monotonic() - start)
                return result, _AttemptOutcome(attempt + 1, timeouts, backoff_total)
            except Exception as exc:
                if not policy.is_retryable(exc):
                    raise
                last_exc = exc
                if isinstance(exc, TaskTimeoutError):
                    timeouts += 1
                delay = policy.backoff_s(job_name, task_id, attempt)
                if delay > 0.0:
                    time.sleep(delay)
                    backoff_total += delay
        raise JobFailedError(
            f"task {task_id} of job {job_name!r} failed {policy.max_attempts} attempts"
        ) from last_exc

    def _map_phase(self, job: MapReduceJob, pairs, stats: RunStats, layout):
        chunks = _chunk(pairs, job.effective_mappers)
        if layout is None:
            tasks = [
                (f"map-{i}", _map_task_memory, (job, chunk))
                for i, chunk in enumerate(chunks)
            ]
        else:
            tasks = [
                (
                    f"map-{i}",
                    _map_task_spill,
                    (job, chunk, layout, i, self.spill_run_records, self.spill_run_bytes),
                )
                for i, chunk in enumerate(chunks)
            ]
        results = self._execute(job.name, tasks, stats, phase="map")
        map_outputs = []
        for out, mapped, combined in results:
            map_outputs.append(out)
            stats.mapped_records += mapped
            stats.combined_records += combined
        return map_outputs

    def _execute(self, job_name: str, tasks: list[tuple], stats: RunStats, phase: str):
        """Run ``(task_id, fn, args)`` tasks on the backend under the retry
        loop; results come back position-ordered.  Attempt, timeout,
        backoff and speculation accounting folds into ``stats``."""
        monitor = None
        if self.speculation_factor is not None and self._backend.supports_speculation:
            monitor = PhaseMonitor(self.speculation_factor)

        def retrier(task_id: str, call):
            return self._attempts(job_name, task_id, call, monitor)

        results = self._backend.execute(tasks, retrier)
        attempts_total = sum(outcome.attempts for _, outcome in results)
        if phase == "map":
            stats.map_attempts += attempts_total
        else:
            stats.reduce_attempts += attempts_total
        for _, outcome in results:
            stats.timeouts += outcome.timeouts
            stats.backoff_total_s += outcome.backoff_s
        if monitor is not None:
            stats.speculative_launched += monitor.launched
            stats.speculative_won += monitor.won
        return [result for result, _ in results]
