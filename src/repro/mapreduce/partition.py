"""Pluggable shuffle partitioners: the hash default and a degree-aware plan.

Every shuffle placement decision in the runtime used to be a blind
``crc32(key) % n``.  That is the right *default* — stateless, deterministic,
free — but on power-law graphs it is exactly what piles a handful of hub
keys (or a run of mid-degree keys that happen to collide) onto one reducer
while the rest idle.  GLISP's observation (PAPERS.md) is that the degree
skew is *known before the shuffle runs*: GraphFlat already counts every
node's in-degree in a MapReduce round, so the partition function can be
planned instead of guessed.

This module makes the partition function a first-class object:

* :class:`Partitioner` — the protocol: a picklable, deterministic pure
  function ``(key, num_partitions) -> partition``.  Determinism is the
  fault-tolerance contract: a re-executed or speculated task attempt must
  place every record exactly where the failed attempt did, so a partitioner
  may depend on nothing but its own (immutable) state and the key bytes.
* :class:`HashPartitioner` — byte-identical to the historical default
  (``crc32`` of the canonical key encoding, modulo ``n``).
* :func:`plan_partitions` — the planner: given ``(key, weight)`` pairs
  (weights are expected shuffle records, i.e. degrees), split keys into a
  *heavy* head and a *light* tail, seed each partition with the tail's
  hash-placed load, then greedily bin-pack the heavy keys largest-first
  onto the least-loaded partition (longest-processing-time scheduling).
* :class:`PlannedPartitioner` — applies a :class:`PartitionPlan`'s compact
  assignment table with a hash fallback for every key outside the plan (the
  light tail, keys of other rounds, and any ``num_partitions`` mismatch).
  The table travels to worker processes either inline (serial/threads) or
  as a :class:`~repro.ps.shm.BytesBroadcast` shared-memory locator
  (processes backend) — published once per run, attached and decoded once
  per worker process, zero table bytes pickled per task attempt.

Value-order note: changing the partitioner of an intermediate round
re-shards that round's reducers, which permutes the *task-major arrival
order* of values inside the next round's reduce groups.  Grouping itself is
untouched (a partitioner is a pure function of the key), but a reducer that
depends on value arrival order will see a permutation.  The AGL reducers are
arrival-order-insensitive by construction — the sampling strategies
canonicalize every neighbor list by source id — which is what makes pipeline
output byte-identical across partitioners (tested).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.mapreduce.shuffle import default_partition, key_bytes
from repro.proto.varint import decode_unsigned, encode_unsigned

__all__ = [
    "PARTITIONERS",
    "HashPartitioner",
    "PartitionPlan",
    "Partitioner",
    "PlannedPartitioner",
    "plan_partitions",
    "publish_plan",
    "spill_tag",
]

PARTITIONERS = ("hash", "planned")
"""CLI / config names of the shipped partitioner families."""

DEFAULT_PLAN_ENTRIES = 4096
"""Cap on assignment-table entries: the plan stays a compact broadcast (a
few dozen KiB) no matter how large the graph is; keys beyond the cap fall
into the hash tail."""

DEFAULT_HEAVY_FRACTION = 0.05
"""A key is *heavy* — worth an explicit table entry — when its weight
exceeds this fraction of the mean partition load.  Below that, hash
placement is already unbiased enough and table bytes are wasted."""


class Partitioner:
    """Protocol for pluggable shuffle partition functions.

    Implementations must be picklable (they ship inside every map/reduce
    task under the ``processes`` backend), deterministic across processes,
    runs, and re-executed/speculated task attempts, and total over the
    supported key domain (int / str / bytes / nested tuples — see
    :func:`repro.mapreduce.shuffle.key_bytes`).
    """

    def __call__(self, key, num_partitions: int) -> int:
        raise NotImplementedError

    def spill_tag(self) -> str:
        """Short stable token embedded in spill run-file names so a run
        directory self-describes which partition function produced it.  The
        hash default returns ``""`` (the historical, tag-less naming)."""
        return ""


@dataclass(frozen=True)
class HashPartitioner(Partitioner):
    """The stateless default: ``crc32(key_bytes(key)) % num_partitions``.

    Byte-identical to :func:`repro.mapreduce.shuffle.default_partition` —
    swapping one for the other changes nothing about any job's output or
    spill files (tested)."""

    def __call__(self, key, num_partitions: int) -> int:
        return default_partition(key, num_partitions)


@dataclass(frozen=True)
class PartitionPlan:
    """A compact ``canonical key bytes -> partition`` assignment table.

    Only the heavy head of the key distribution gets entries; every other
    key hashes.  ``planned_weight / total_weight`` says how much of the
    expected shuffle volume the table actually governs."""

    num_partitions: int
    assignments: dict[bytes, int]
    planned_weight: float = 0.0
    total_weight: float = 0.0

    def __len__(self) -> int:
        return len(self.assignments)

    def encode(self) -> bytes:
        """Deterministic wire form (entries sorted by key bytes): varint
        partition count, varint entry count, then ``len | key | partition``
        per entry.  Deterministic so the plan's checksum — and therefore the
        spill tag — is a pure function of the assignment."""
        out = bytearray()
        out += encode_unsigned(self.num_partitions)
        out += encode_unsigned(len(self.assignments))
        for kb in sorted(self.assignments):
            out += encode_unsigned(len(kb))
            out += kb
            out += encode_unsigned(self.assignments[kb])
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "PartitionPlan":
        buf = memoryview(data)
        num_partitions, offset = decode_unsigned(buf, 0)
        count, offset = decode_unsigned(buf, offset)
        assignments: dict[bytes, int] = {}
        for _ in range(count):
            klen, offset = decode_unsigned(buf, offset)
            kb = bytes(buf[offset : offset + klen])
            offset += klen
            partition, offset = decode_unsigned(buf, offset)
            if partition >= num_partitions:
                raise ValueError(
                    f"corrupt partition plan: partition {partition} >= "
                    f"{num_partitions}"
                )
            assignments[kb] = partition
        if offset != len(data):
            raise ValueError(
                f"corrupt partition plan: {len(data) - offset} trailing bytes"
            )
        return cls(num_partitions, assignments)

    def checksum(self) -> int:
        return zlib.crc32(self.encode())


def plan_partitions(
    weighted_keys,
    num_partitions: int,
    *,
    max_entries: int = DEFAULT_PLAN_ENTRIES,
    heavy_fraction: float = DEFAULT_HEAVY_FRACTION,
) -> PartitionPlan:
    """Two-pass degree-aware planner.

    Pass 1 folds ``(key, weight)`` pairs into per-key totals and splits them
    at ``heavy_fraction x (total weight / num_partitions)``: the heavy head
    (capped at ``max_entries``, heaviest first) gets explicit assignments,
    everything else stays on the hash path.  Pass 2 seeds every partition
    with its hash-placed light-tail load, then assigns heavy keys largest
    first to the least-loaded partition — greedy LPT bin-packing, which is
    within 4/3 of optimal makespan and, unlike hashing, can never stack two
    hubs on one reducer while another sits empty.

    Deterministic: ties in weight break on canonical key bytes and ties in
    load break on the lowest partition index, so the same inputs always
    produce the same plan (and the same spill tag) everywhere.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if max_entries < 0:
        raise ValueError("max_entries must be >= 0")
    if heavy_fraction <= 0:
        raise ValueError("heavy_fraction must be > 0")

    totals: dict[bytes, float] = {}
    for key, weight in weighted_keys:
        kb = key_bytes(key)
        totals[kb] = totals.get(kb, 0.0) + float(weight)
    total = sum(totals.values())
    if num_partitions == 1 or not totals or total <= 0:
        return PartitionPlan(num_partitions, {}, 0.0, total)

    threshold = heavy_fraction * total / num_partitions
    heavy = [(kb, w) for kb, w in totals.items() if w >= threshold]
    heavy.sort(key=lambda entry: (-entry[1], entry[0]))
    heavy = heavy[:max_entries]
    heavy_set = {kb for kb, _ in heavy}

    # Seed bins with the hash-placed tail (everything without an entry
    # keeps hashing at run time, so its load is known exactly).
    loads = [0.0] * num_partitions
    for kb, w in totals.items():
        if kb not in heavy_set:
            loads[zlib.crc32(kb) % num_partitions] += w

    assignments: dict[bytes, int] = {}
    planned = 0.0
    for kb, w in heavy:
        target = min(range(num_partitions), key=lambda p: (loads[p], p))
        assignments[kb] = target
        loads[target] += w
        planned += w
    return PartitionPlan(num_partitions, assignments, planned, total)


# ------------------------------------------------------------- table sources
# The decoded assignment table is cached per process: pooled workers decode
# a given plan once, then every task attempt (including retries and
# speculative duplicates) reads the same immutable dict.

_PLAN_CACHE: dict[object, PartitionPlan] = {}


@dataclass(frozen=True)
class _InlineTable:
    """Plan payload pickled inside the partitioner (serial/threads, or any
    context where the bytes are cheaper than a shared-memory segment)."""

    payload: bytes

    def cache_key(self):
        return ("inline", self.payload)

    def load(self) -> PartitionPlan:
        return PartitionPlan.decode(self.payload)


@dataclass(frozen=True)
class _SlabTable:
    """Locator for a plan published through a shared-memory byte slab
    (:class:`~repro.ps.shm.BytesBroadcast`): the pickled partitioner
    carries only (name, length), and each worker process attaches, copies,
    and decodes the table once."""

    name: str
    nbytes: int

    def cache_key(self):
        return ("shm", self.name, self.nbytes)

    def load(self) -> PartitionPlan:
        from repro.ps.shm import attach_shared_memory

        seg = attach_shared_memory(self.name)
        try:
            payload = bytes(seg.buf[: self.nbytes])
        finally:
            seg.close()
        return PartitionPlan.decode(payload)


@dataclass(frozen=True)
class PlannedPartitioner(Partitioner):
    """Assignment-table partitioner with a hash tail.

    Heavy keys found in the table go to their planned partition; everything
    else — the light tail, keys from rounds the plan was not built for, and
    any call with a different ``num_partitions`` (e.g. a side job of the
    same runtime) — falls back to exactly the hash default, so a planned
    run degrades to hash behavior rather than misplacing records."""

    source: _InlineTable | _SlabTable
    num_partitions: int
    tag: str

    @classmethod
    def from_plan(cls, plan: PartitionPlan) -> "PlannedPartitioner":
        payload = plan.encode()
        return cls(
            _InlineTable(payload), plan.num_partitions, f"plan{zlib.crc32(payload):08x}"
        )

    @classmethod
    def from_slab(
        cls, name: str, nbytes: int, num_partitions: int, checksum: int
    ) -> "PlannedPartitioner":
        return cls(_SlabTable(name, nbytes), num_partitions, f"plan{checksum:08x}")

    @property
    def plan(self) -> PartitionPlan:
        key = self.source.cache_key()
        plan = _PLAN_CACHE.get(key)
        if plan is None:
            plan = _PLAN_CACHE[key] = self.source.load()
        return plan

    def __call__(self, key, num_partitions: int) -> int:
        kb = key_bytes(key)
        if num_partitions == self.num_partitions:
            planned = self.plan.assignments.get(kb)
            if planned is not None:
                return planned
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        return zlib.crc32(kb) % num_partitions

    def spill_tag(self) -> str:
        return self.tag


def publish_plan(plan: PartitionPlan, needs_pickling: bool):
    """Turn a plan into a runnable partitioner plus an owned broadcast.

    Under a pickling backend the encoded table is published once into a
    shared-memory byte slab and the partitioner carries only a locator;
    otherwise the table rides inline.  Returns ``(broadcast, partitioner)``
    — the caller owns ``broadcast`` (may be ``None``) and must ``close()``
    it after the run, mirroring GraphInfer's model-slice broadcast."""
    if not needs_pickling:
        return None, PlannedPartitioner.from_plan(plan)
    from repro.ps.shm import BytesBroadcast

    payload = plan.encode()
    broadcast = BytesBroadcast(payload)
    return broadcast, PlannedPartitioner.from_slab(
        broadcast.name, len(payload), plan.num_partitions, zlib.crc32(payload)
    )


def spill_tag(partitioner) -> str:
    """The spill-file naming token of any job partitioner: Partitioner
    instances self-describe; plain callables (including the historical
    :func:`default_partition`) keep the tag-less legacy naming."""
    if isinstance(partitioner, Partitioner):
        return partitioner.spill_tag()
    return ""
