"""Directory-backed stand-in for the cluster distributed file system.

GraphFlat's output ("flattened to protobuf strings and stored on a
distributed file system", §3.2.1) and GraphInfer's inputs/outputs live here.
The abstraction is deliberately thin — named sharded datasets — because that
is all the paper's pipelines require of the real DFS.

Two shard layouts exist (see ``repro.proto``):

* ``row`` — each shard is a framed stream of per-record byte strings
  (``repro.proto.stream``); simple, append-friendly, but consumers must
  decode record by record.
* ``columnar`` — each shard is one mmap-able ``AGLC`` frame of stacked
  matrices + offset tables (``repro.proto.columnar``); trainers slice
  batches out of the mapping instead of decoding.

Reading is layout-transparent: :meth:`DistFileSystem.read_dataset` and
:meth:`~DistFileSystem.read_shard` always yield row wire records (columnar
shards re-encode on the fly, byte-identically), while
:meth:`~DistFileSystem.open_shard` exposes the zero-copy columnar reader.
A ``_META.json`` per dataset records the layout, the record ``kind``
(samples / predictions), and per-shard record counts, which is what makes
:meth:`~DistFileSystem.count_records` O(num_shards) instead of a full byte
scan and lets tooling dispatch on :meth:`~DistFileSystem.kind` instead of
sniffing record bytes.
"""

from __future__ import annotations

import json
import shutil
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.proto.codec import CodecError
from repro.proto.columnar import (
    ColumnarShard,
    shard_record_count,
    write_prediction_shard,
    write_sample_shard,
)
from repro.proto.stream import read_records, write_records

__all__ = ["DATASET_LAYOUTS", "DistFileSystem"]

DATASET_LAYOUTS = ("row", "columnar")
_META_NAME = "_META.json"


class DistFileSystem:
    """Sharded record datasets rooted at a local directory.

    A *dataset* is a directory of ``part-NNNNN`` files plus a ``_META.json``
    sidecar.  Shards are the unit of parallelism for downstream consumers
    (training workers read disjoint shard subsets).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _dataset_dir(self, name: str) -> Path:
        if not name or name.startswith("/") or ".." in name:
            raise ValueError(f"bad dataset name {name!r}")
        return self.root / name

    # -------------------------------------------------------------- writing
    def write_dataset(
        self,
        name: str,
        records: Iterable,
        num_shards: int = 1,
        layout: str = "row",
        kind: str = "samples",
        task: str | None = None,
    ) -> int:
        """Write ``records`` into ``num_shards`` contiguous part files.

        With ``layout="row"``, records are wire-format ``bytes``.  With
        ``layout="columnar"``, records may be wire bytes *or* structured
        records — ``(target_id, label, GraphFeature)`` triples for
        ``kind="samples"``, ``(node_id, scores)`` pairs for
        ``kind="predictions"`` — which lets producers skip the per-record
        framing pass entirely.  Shards are contiguous, balanced (±1) chunks
        of the input sequence, so a shard-major read reproduces the input
        order exactly — the same global record stream a reducer-owned write
        of the same partitions would produce (only shard boundaries differ).

        Returns the record count.  Overwrites any existing dataset of the
        same name (jobs are idempotent: re-running a failed job replaces
        partial output, like a MapReduce output-commit).
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if layout not in DATASET_LAYOUTS:
            raise ValueError(f"layout must be one of {DATASET_LAYOUTS}, got {layout!r}")
        directory = self.prepare_dataset(name)
        everything = list(records)
        count = len(everything)
        size, extra = divmod(count, num_shards)
        counts = []
        start = 0
        for shard in range(num_shards):
            end = start + size + (1 if shard < extra else 0)
            bucket = everything[start:end]
            start = end
            path = directory / f"part-{shard:05d}"
            if layout == "row":
                counts.append(write_records(path, bucket))
            elif kind == "predictions":
                counts.append(write_prediction_shard(path, bucket))
            else:
                counts.append(write_sample_shard(path, bucket, task=task))
        self.finalize_dataset(
            name, layout=layout, kind=kind, record_counts=counts, task=task
        )
        return count

    def prepare_dataset(self, name: str) -> Path:
        """Clear + create a dataset directory for out-of-band shard writes.

        The reducer-owned sink path: the parent prepares the directory, the
        final-round reducers each write their own ``part-NNNNN`` shard into
        it, and the parent commits with :meth:`finalize_dataset`.  A crash
        in between leaves a directory without ``_META.json``, which the next
        (idempotent) run clears and rewrites."""
        directory = self._dataset_dir(name)
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        return directory

    def finalize_dataset(
        self,
        name: str,
        layout: str,
        kind: str,
        record_counts: list[int],
        task: str | None = None,
    ) -> None:
        """Commit a dataset whose shards were written out-of-band
        (:meth:`prepare_dataset`) by recording its ``_META.json``.

        ``kind`` is recorded for every layout (row included) so consumers
        can dispatch on it instead of sniffing record bytes.  ``task``
        (when known) records which task plugin produced the samples —
        datasets written before the task layer simply lack the field and
        resolve through :meth:`task`'s legacy fallback."""
        if layout not in DATASET_LAYOUTS:
            raise ValueError(f"layout must be one of {DATASET_LAYOUTS}, got {layout!r}")
        directory = self._dataset_dir(name)
        meta = {
            "layout": layout,
            "kind": kind,
            "record_counts": list(record_counts),
            "total_records": int(sum(record_counts)),
        }
        if task is not None:
            meta["task"] = task
        (directory / _META_NAME).write_text(json.dumps(meta, sort_keys=True))

    # -------------------------------------------------------------- reading
    def shards(self, name: str) -> list[Path]:
        """Sorted shard paths of a dataset (raises if absent)."""
        directory = self._dataset_dir(name)
        if not directory.is_dir():
            raise FileNotFoundError(f"dataset {name!r} not found under {self.root}")
        return sorted(directory.glob("part-*"))

    @staticmethod
    def _shard_records(path: Path, layout: str) -> Iterator[bytes]:
        if layout == "columnar":
            yield from ColumnarShard(path).iter_wire()
        else:
            yield from read_records(path)

    def read_dataset(self, name: str) -> Iterator[bytes]:
        """Yield every record of every shard, shard order then record order.

        Layout-transparent: columnar shards are re-encoded to the row wire
        form on the fly (byte-identical to a row write of the same records).
        """
        layout = self.layout(name)  # resolved once, not per shard
        for path in self.shards(name):
            yield from self._shard_records(path, layout)

    def read_shard(self, name: str, shard_index: int) -> Iterator[bytes]:
        shards = self.shards(name)
        if not 0 <= shard_index < len(shards):
            raise IndexError(f"dataset {name!r} has {len(shards)} shards")
        yield from self._shard_records(shards[shard_index], self.layout(name))

    def open_shard(self, name: str, shard_index: int) -> ColumnarShard:
        """Zero-copy :class:`ColumnarShard` reader (columnar datasets only)."""
        if self.layout(name) != "columnar":
            raise ValueError(
                f"dataset {name!r} has row layout; open_shard needs columnar"
            )
        shards = self.shards(name)
        if not 0 <= shard_index < len(shards):
            raise IndexError(f"dataset {name!r} has {len(shards)} shards")
        return ColumnarShard(shards[shard_index])

    # ------------------------------------------------------------- metadata
    def _meta(self, name: str) -> dict | None:
        path = self._dataset_dir(name) / _META_NAME
        if not path.is_file():
            return None
        return json.loads(path.read_text())

    def layout(self, name: str) -> str:
        """Shard layout of a dataset; pre-metadata datasets default to row."""
        meta = self._meta(name)
        if meta is None:
            self.shards(name)  # raise FileNotFoundError for absent datasets
            return "row"
        return meta["layout"]

    def kind(self, name: str) -> str | None:
        """Record kind of a dataset (``samples`` / ``predictions``).

        Resolved from ``_META.json`` when recorded; columnar datasets
        written before kinds landed in the metadata fall back to the shard
        header (a corrupt header raises — corruption is never silently
        re-labelled).  Returns ``None`` only for legacy row datasets with
        nothing recorded anywhere, where callers may sniff record bytes.
        """
        meta = self._meta(name)
        if meta is not None and "kind" in meta:
            return meta["kind"]
        shards = self.shards(name)  # raises for absent datasets
        if not shards:
            return None
        if meta is not None and meta.get("layout") == "columnar":
            return ColumnarShard(shards[0]).kind  # corruption raises
        if meta is None:
            # No metadata at all: a columnar shard still self-describes;
            # anything that is not one is a legacy row shard.
            try:
                return ColumnarShard(shards[0]).kind
            except CodecError:
                return None
        return None

    def exists(self, name: str) -> bool:
        return self._dataset_dir(name).is_dir()

    def task(self, name: str) -> str | None:
        """Recorded task kind of a dataset, or ``None`` when absent.

        Only non-default tasks are recorded (node-classification output
        stays byte-identical to pre-task-layer shards), so ``None`` means
        either a legacy dataset or the node-classification default —
        callers render both as ``node_classification``.
        """
        meta = self._meta(name)
        if meta is None:
            return None
        return meta.get("task")

    def num_shards(self, name: str) -> int:
        return len(self.shards(name))

    def count_records(self, name: str) -> int:
        """Dataset record count — O(1) from metadata when available,
        O(num_shards) from columnar headers, full scan only for legacy
        row datasets written without metadata."""
        meta = self._meta(name)
        if meta is not None:
            return int(meta["total_records"])
        shards = self.shards(name)
        try:
            return sum(shard_record_count(p) for p in shards)
        except CodecError:  # legacy row shards: no header to consult
            return sum(1 for _ in self.read_dataset(name))

    def size_bytes(self, name: str) -> int:
        return sum(p.stat().st_size for p in self.shards(name))

    def delete(self, name: str) -> None:
        directory = self._dataset_dir(name)
        if directory.exists():
            shutil.rmtree(directory)

    def list_datasets(self) -> list[str]:
        return sorted(
            str(p.relative_to(self.root))
            for p in self.root.rglob("*")
            if p.is_dir() and any(child.name.startswith("part-") for child in p.iterdir())
        )
