"""Directory-backed stand-in for the cluster distributed file system.

GraphFlat's output ("flattened to protobuf strings and stored on a
distributed file system", §3.2.1) and GraphInfer's inputs/outputs live here.
The abstraction is deliberately thin — named sharded datasets of framed byte
records — because that is all the paper's pipelines require of the real DFS.
"""

from __future__ import annotations

import shutil
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.proto.stream import read_records, write_records

__all__ = ["DistFileSystem"]


class DistFileSystem:
    """Sharded record datasets rooted at a local directory.

    A *dataset* is a directory of ``part-NNNNN`` files, each a framed record
    stream (see ``repro.proto.stream``).  Shards are the unit of parallelism
    for downstream consumers (training workers read disjoint shard subsets).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _dataset_dir(self, name: str) -> Path:
        if not name or name.startswith("/") or ".." in name:
            raise ValueError(f"bad dataset name {name!r}")
        return self.root / name

    # -------------------------------------------------------------- writing
    def write_dataset(self, name: str, records: Iterable[bytes], num_shards: int = 1) -> int:
        """Write ``records`` round-robin into ``num_shards`` part files.

        Returns the record count.  Overwrites any existing dataset of the
        same name (jobs are idempotent: re-running a failed job replaces
        partial output, like a MapReduce output-commit).
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        directory = self._dataset_dir(name)
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        buckets: list[list[bytes]] = [[] for _ in range(num_shards)]
        count = 0
        for record in records:
            buckets[count % num_shards].append(record)
            count += 1
        for shard, bucket in enumerate(buckets):
            write_records(directory / f"part-{shard:05d}", bucket)
        return count

    # -------------------------------------------------------------- reading
    def shards(self, name: str) -> list[Path]:
        """Sorted shard paths of a dataset (raises if absent)."""
        directory = self._dataset_dir(name)
        if not directory.is_dir():
            raise FileNotFoundError(f"dataset {name!r} not found under {self.root}")
        return sorted(directory.glob("part-*"))

    def read_dataset(self, name: str) -> Iterator[bytes]:
        """Yield every record of every shard, shard order then record order."""
        for shard in self.shards(name):
            yield from read_records(shard)

    def read_shard(self, name: str, shard_index: int) -> Iterator[bytes]:
        shards = self.shards(name)
        if not 0 <= shard_index < len(shards):
            raise IndexError(f"dataset {name!r} has {len(shards)} shards")
        yield from read_records(shards[shard_index])

    # ------------------------------------------------------------- metadata
    def exists(self, name: str) -> bool:
        return self._dataset_dir(name).is_dir()

    def num_shards(self, name: str) -> int:
        return len(self.shards(name))

    def count_records(self, name: str) -> int:
        return sum(1 for _ in self.read_dataset(name))

    def size_bytes(self, name: str) -> int:
        return sum(p.stat().st_size for p in self.shards(name))

    def delete(self, name: str) -> None:
        directory = self._dataset_dir(name)
        if directory.exists():
            shutil.rmtree(directory)

    def list_datasets(self) -> list[str]:
        return sorted(
            str(p.relative_to(self.root))
            for p in self.root.rglob("*")
            if p.is_dir() and any(child.name.startswith("part-") for child in p.iterdir())
        )
