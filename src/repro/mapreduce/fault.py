"""Worker-failure injection for the MapReduce runtime.

The paper's pitch for building on MapReduce is that fault tolerance comes
for free: a failed task is simply re-executed and, because tasks are
deterministic functions of their input partition, the job output is
unchanged.  This module makes that property *testable* — the injector
deterministically kills a configurable fraction of task attempts, and the
test suite asserts byte-identical output with and without injection.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["InjectedWorkerFailure", "FailureInjector"]


class InjectedWorkerFailure(RuntimeError):
    """Simulated crash of a map/reduce task attempt."""


class FailureInjector:
    """Deterministically fail task attempts.

    ``rate`` is the probability that any given *attempt* fails.  Failures
    are sampled from a seeded stream keyed by ``(job, task, attempt)`` so a
    retried attempt of the same task gets an independent draw, and the whole
    schedule is reproducible.  ``max_failures`` caps total injected failures
    (so a high rate cannot starve a job forever in tests).
    """

    def __init__(self, rate: float, seed: int | None = 0, max_failures: int | None = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._seed = 0 if seed is None else int(seed)
        self.max_failures = max_failures
        self.injected = 0
        self._lock = threading.Lock()

    def _draw(self, job_name: str, task_id: str, attempt: int) -> float:
        # Key an independent generator off the task coordinates so the
        # schedule does not depend on execution order (threads!).
        material = f"{self._seed}|{job_name}|{task_id}|{attempt}".encode()
        digest = np.frombuffer(material.ljust(32, b"\0")[:32], dtype=np.uint32)
        rng = new_rng(np.random.SeedSequence(entropy=digest.tolist()))
        return float(rng.random())

    def should_fail(self, job_name: str, task_id: str, attempt: int) -> bool:
        """Whether this attempt should be killed (and count it if so)."""
        if self.rate == 0.0:
            return False
        if self._draw(job_name, task_id, attempt) < self.rate:
            with self._lock:
                if self.max_failures is not None and self.injected >= self.max_failures:
                    return False
                self.injected += 1
            return True
        return False

    def maybe_fail(self, job_name: str, task_id: str, attempt: int) -> None:
        """Raise :class:`InjectedWorkerFailure` if this attempt is sampled."""
        if self.should_fail(job_name, task_id, attempt):
            raise InjectedWorkerFailure(
                f"injected failure: job={job_name} task={task_id} attempt={attempt}"
            )
