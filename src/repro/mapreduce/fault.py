"""The chaos plane of the MapReduce runtime: fault injection, fault
*effects*, and the cooperative deadline.

The paper's pitch for building on MapReduce is that fault tolerance comes
for free: a failed task is simply re-executed and, because tasks are
deterministic functions of their input partition, the job output is
unchanged.  This module makes that property *testable* across the whole
failure surface, not just crash-before-work:

* :class:`FailureInjector` — the classic injector: deterministically kill a
  fraction of task attempts before they do any work.
* :class:`FaultPlan` — the expanded fault plane.  Deterministically injects
  one of :data:`FAULT_KINDS` per sampled attempt, keyed by ``(job, task,
  attempt, kind)``:

  - ``crash`` — the attempt dies before doing any work (parent-side raise,
    exactly the ``FailureInjector`` behaviour);
  - ``hang`` — the attempt wedges inside the worker until the runtime's
    deadline machinery kills it (cooperative check under serial/threads,
    parent-side future timeout + pool discard under processes);
  - ``slow`` — the attempt runs to completion but takes ``slow_s`` longer,
    a straggler for the speculation machinery to rescue;
  - ``corrupt-run`` / ``truncate-run`` — the attempt's *view* of one spill
    run file is corrupted / truncated at read time, so the frame CRC (or
    frame framing) fails loudly mid-merge and the attempt is re-executed.
    The fault is injected on the read path, never on disk: the retry reads
    the intact file, which is what keeps re-execution byte-identical.
  - ``conn-reset`` — the network twin of the read faults: the attempt's
    shuffle-fetch *connection* dies mid-stream (``ConnectionResetError``,
    retryable) while the peer's run files stay intact, so the retried
    attempt re-fetches the same bytes.  Only the TCP shuffle transport
    consumes it; elsewhere it arms and expires harmlessly.

Decisions (which attempt gets which fault) are made in the *parent* — that
keeps the injected-counter and ``max_faults`` cap exact under every backend
— and only a plain picklable :class:`AttemptSpec` ships into the worker,
where :func:`run_with_effects` applies the effect around the task body.

Deadlines: :func:`deadline_scope` arms a per-thread deadline and the hot
task-body loops call :func:`maybe_check_deadline` (amortized — it looks at
the clock every 64th call), raising :class:`TaskTimeoutError` when the
attempt overruns.  The runtime classifies that as retryable.
"""

from __future__ import annotations

import hashlib
import threading
import time

import numpy as np

from repro.utils.rng import new_rng

__all__ = [
    "FAULT_KINDS",
    "AttemptSpec",
    "FailureInjector",
    "FaultPlan",
    "InjectedWorkerFailure",
    "TaskTimeoutError",
    "deadline_scope",
    "maybe_check_deadline",
    "run_with_effects",
    "take_conn_fault",
    "take_read_fault",
]

FAULT_KINDS = ("crash", "hang", "slow", "corrupt-run", "truncate-run", "conn-reset")

_READ_FAULTS = ("corrupt-run", "truncate-run")
"""Kinds that only make sense for spill-reading (reduce) attempts."""

_REDUCE_ONLY_FAULTS = _READ_FAULTS + ("conn-reset",)
"""Kinds gated to reduce attempts (map attempts neither read spill runs
nor fetch them over the wire), keeping the injected counters equal to the
number of effects actually applied."""


class InjectedWorkerFailure(RuntimeError):
    """Simulated crash of a map/reduce task attempt."""


class TaskTimeoutError(RuntimeError):
    """A task attempt overran its per-attempt deadline (``task_timeout_s``).

    Retryable: the attempt produced nothing durable (spill writes are
    atomic), so the runtime simply re-executes the task."""


def _uniform(seed: int, material: str) -> float:
    """Deterministic uniform draw in [0, 1) keyed by ``material``.

    The material is *hashed* to the 32 bytes of seed entropy — padding or
    truncating it (the old behaviour) silently dropped the trailing attempt
    counter for long ``job|task`` names, so every retry of such a task
    redrew the same failure and deterministically exhausted all attempts.
    """
    digest = hashlib.blake2b(
        f"{seed}|{material}".encode(), digest_size=32
    ).digest()
    entropy = np.frombuffer(digest, dtype=np.uint32)
    rng = new_rng(np.random.SeedSequence(entropy=entropy.tolist()))
    return float(rng.random())


# ------------------------------------------------------------- injection plans
class FailureInjector:
    """Deterministically crash task attempts (the crash-only plan).

    ``rate`` is the probability that any given *attempt* fails.  Failures
    are sampled from a seeded stream keyed by ``(job, task, attempt)`` so a
    retried attempt of the same task gets an independent draw, and the whole
    schedule is reproducible.  ``max_failures`` caps total injected failures
    (so a high rate cannot starve a job forever in tests).
    """

    def __init__(self, rate: float, seed: int | None = 0, max_failures: int | None = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._seed = 0 if seed is None else int(seed)
        self.max_failures = max_failures
        self.injected = 0
        self._lock = threading.Lock()

    def _draw(self, job_name: str, task_id: str, attempt: int) -> float:
        # Key an independent generator off the task coordinates so the
        # schedule does not depend on execution order (threads!).
        return _uniform(self._seed, f"{job_name}|{task_id}|{attempt}")

    def _count_one(self) -> bool:
        with self._lock:
            if self.max_failures is not None and self.injected >= self.max_failures:
                return False
            self.injected += 1
        return True

    def should_fail(self, job_name: str, task_id: str, attempt: int) -> bool:
        """Whether this attempt should be killed (and count it if so)."""
        if self.rate == 0.0:
            return False
        if self._draw(job_name, task_id, attempt) < self.rate:
            return self._count_one()
        return False

    def maybe_fail(self, job_name: str, task_id: str, attempt: int) -> None:
        """Raise :class:`InjectedWorkerFailure` if this attempt is sampled."""
        if self.should_fail(job_name, task_id, attempt):
            raise InjectedWorkerFailure(
                f"injected failure: job={job_name} task={task_id} attempt={attempt}"
            )

    def draw(self, job_name: str, task_id: str, attempt: int) -> str | None:
        """Fault kind for this attempt (``"crash"`` or ``None``) — the
        plan interface the runtime's retry loop consumes."""
        return "crash" if self.should_fail(job_name, task_id, attempt) else None


class FaultPlan(FailureInjector):
    """Deterministically inject the full fault plane.

    ``rates`` maps fault kind -> per-attempt probability (a bare float
    applies to every kind).  Each ``(job, task, attempt, kind)`` gets an
    independent seeded draw; kinds are tried in :data:`FAULT_KINDS` order
    and the first hit wins, so schedules are reproducible and independent
    of execution order.  ``max_faults`` caps total injections across kinds.

    ``corrupt-run``/``truncate-run`` only fire for spill-*reading* attempts
    (task ids starting with ``reduce-``): a map attempt has no run files to
    read, and skipping it keeps the injected counter equal to the number of
    effects actually applied.
    """

    def __init__(
        self,
        rates: dict[str, float] | float,
        seed: int | None = 0,
        max_faults: int | None = None,
        slow_s: float = 0.05,
        hang_limit_s: float = 60.0,
    ):
        if isinstance(rates, (int, float)):
            rates = {kind: float(rates) for kind in FAULT_KINDS}
        unknown = set(rates) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kinds {sorted(unknown)}; known: {FAULT_KINDS}"
            )
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1], got {rate}")
        super().__init__(
            rate=max(rates.values(), default=0.0), seed=seed, max_failures=max_faults
        )
        self.rates = dict(rates)
        self.slow_s = slow_s
        self.hang_limit_s = hang_limit_s
        self.injected_by_kind: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def draw(self, job_name: str, task_id: str, attempt: int) -> str | None:
        for kind in FAULT_KINDS:
            rate = self.rates.get(kind, 0.0)
            if rate == 0.0:
                continue
            if kind in _REDUCE_ONLY_FAULTS and not task_id.startswith("reduce-"):
                continue
            if _uniform(self._seed, f"{job_name}|{task_id}|{attempt}|{kind}") < rate:
                if not self._count_one():
                    return None
                with self._lock:
                    self.injected_by_kind[kind] += 1
                return kind
        return None

    def spec(self, kind: str | None, timeout_s: float | None) -> "AttemptSpec":
        return AttemptSpec(
            fault=kind,
            timeout_s=timeout_s,
            slow_s=self.slow_s,
            hang_limit_s=self.hang_limit_s,
        )


# ------------------------------------------------------- per-attempt effects
class AttemptSpec:
    """Picklable per-attempt instructions shipped into the task invocation:
    which fault effect (if any) to apply, and the attempt deadline for the
    cooperative check.  Plain data — the plan's lock and counters stay in
    the parent."""

    __slots__ = ("fault", "timeout_s", "slow_s", "hang_limit_s")

    def __init__(
        self,
        fault: str | None = None,
        timeout_s: float | None = None,
        slow_s: float = 0.05,
        hang_limit_s: float = 60.0,
    ):
        self.fault = fault
        self.timeout_s = timeout_s
        self.slow_s = slow_s
        self.hang_limit_s = hang_limit_s

    def __getstate__(self):
        return (self.fault, self.timeout_s, self.slow_s, self.hang_limit_s)

    def __setstate__(self, state):
        self.fault, self.timeout_s, self.slow_s, self.hang_limit_s = state

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"AttemptSpec(fault={self.fault!r}, timeout_s={self.timeout_s}, "
            f"slow_s={self.slow_s}, hang_limit_s={self.hang_limit_s})"
        )


_DEADLINE = threading.local()

_CHECK_EVERY = 64
"""Amortization of :func:`maybe_check_deadline`: the clock is consulted on
every ``_CHECK_EVERY``-th call, so per-record overhead in the hot map and
reduce loops is one attribute lookup and an integer increment."""


class deadline_scope:
    """Arm this thread's cooperative deadline for one task attempt.

    Nestable in principle but used one attempt at a time; ``None`` timeout
    is a no-op scope so call sites need no branching."""

    def __init__(self, timeout_s: float | None):
        self._timeout_s = timeout_s
        self._prev: float | None = None

    def __enter__(self):
        if self._timeout_s is not None:
            self._prev = getattr(_DEADLINE, "at", None)
            _DEADLINE.at = time.monotonic() + self._timeout_s
            _DEADLINE.tick = 0
        return self

    def __exit__(self, *exc):
        if self._timeout_s is not None:
            _DEADLINE.at = self._prev


def check_deadline() -> None:
    """Raise :class:`TaskTimeoutError` if this thread's armed deadline has
    passed; no-op when no deadline is armed."""
    at = getattr(_DEADLINE, "at", None)
    if at is not None and time.monotonic() > at:
        raise TaskTimeoutError(
            "task attempt overran its cooperative deadline (task_timeout_s)"
        )


def maybe_check_deadline() -> None:
    """Amortized :func:`check_deadline` for per-record hot loops."""
    at = getattr(_DEADLINE, "at", None)
    if at is None:
        return
    tick = _DEADLINE.tick + 1
    if tick >= _CHECK_EVERY:
        _DEADLINE.tick = 0
        if time.monotonic() > at:
            raise TaskTimeoutError(
                "task attempt overran its cooperative deadline (task_timeout_s)"
            )
    else:
        _DEADLINE.tick = tick


# Read-path fault handoff: run_with_effects arms it for the attempt, the
# spill reader (SpillLayout._iter_file) consumes it for exactly one file.
_READ_FAULT = threading.local()


def take_read_fault() -> str | None:
    """Pop this thread's pending read fault (one spill file per attempt)."""
    kind = getattr(_READ_FAULT, "kind", None)
    if kind is not None:
        _READ_FAULT.kind = None
    return kind


# Connection-fault handoff: same shape as the read-fault handoff, consumed
# by the TCP shuffle fetch (TcpFetchSource._fetch_runs) for one fetch.
_CONN_FAULT = threading.local()


def take_conn_fault() -> str | None:
    """Pop this thread's pending connection fault (one fetch per attempt)."""
    kind = getattr(_CONN_FAULT, "kind", None)
    if kind is not None:
        _CONN_FAULT.kind = None
    return kind


def run_with_effects(spec: AttemptSpec | None, fn, args):
    """Run one task attempt body with its fault effect and deadline.

    This is the worker-side half of the chaos plane: it executes in
    whatever thread/process actually runs the task (the calling thread
    under serial/threads, the pool worker under processes), so the
    cooperative deadline and the read-fault handoff land where the task
    body will see them.  Top-level and picklable by reference.
    """
    if spec is None:
        return fn(*args)
    with deadline_scope(spec.timeout_s):
        fault = spec.fault
        if fault == "slow":
            time.sleep(spec.slow_s)
        elif fault == "hang":
            # Wedge until the deadline machinery kills us: cooperative
            # check fires under serial/threads; under processes the
            # parent's future timeout terminates the pool.  hang_limit_s
            # bounds the wedge so a missing deadline cannot block forever.
            limit = time.monotonic() + spec.hang_limit_s
            while time.monotonic() < limit:
                check_deadline()
                time.sleep(0.01)
            raise TaskTimeoutError(
                f"injected hang exceeded its safety limit ({spec.hang_limit_s}s) "
                "with no deadline armed"
            )
        elif fault in _READ_FAULTS:
            _READ_FAULT.kind = fault
        elif fault == "conn-reset":
            _CONN_FAULT.kind = fault
        try:
            return fn(*args)
        finally:
            if fault in _READ_FAULTS:
                _READ_FAULT.kind = None
            elif fault == "conn-reset":
                _CONN_FAULT.kind = None
