"""Evaluation metrics — accuracy (Cora), micro-F1 (PPI), ROC-AUC (UUG).

Implemented from scratch (no sklearn offline); each matches the standard
definition used by the papers AGL compares against, and the test suite
cross-checks them on hand-computed cases.
"""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "hits_at_k", "micro_f1", "roc_auc"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``logits (n, c)`` against int ``labels (n,)``."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or len(labels) != logits.shape[0]:
        raise ValueError("logits must be (n, c) with matching labels")
    if logits.shape[0] == 0:
        raise ValueError("empty evaluation set")
    return float((logits.argmax(axis=1) == labels).mean())


def micro_f1(scores: np.ndarray, targets: np.ndarray, threshold: float = 0.0) -> float:
    """Micro-averaged F1 for multi-label prediction.

    ``scores (n, c)`` are logits — a label is predicted when its logit
    exceeds ``threshold`` (0.0 corresponds to probability 0.5).  ``targets``
    is the 0/1 indicator matrix.  Micro-averaging pools TP/FP/FN over all
    (sample, label) pairs, the PPI convention.
    """
    scores = np.asarray(scores)
    targets = np.asarray(targets).astype(bool)
    if scores.shape != targets.shape:
        raise ValueError(f"shape mismatch {scores.shape} vs {targets.shape}")
    pred = scores > threshold
    tp = np.logical_and(pred, targets).sum()
    fp = np.logical_and(pred, ~targets).sum()
    fn = np.logical_and(~pred, targets).sum()
    denom = 2 * tp + fp + fn
    return float(2 * tp / denom) if denom else 0.0


def hits_at_k(scores: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Fraction of positives ranked within the top-``k`` scores.

    The link-prediction convention: pool positive and negative ``scores``,
    take the ``k`` highest, and report the fraction of positives recovered
    (``|top-k ∩ positives| / n_pos``).  Ties at the cut are broken
    pessimistically — a positive tied with negatives at the boundary only
    counts if it strictly beats enough of the pool — by ranking with a
    stable sort over ``(score, is_negative)`` so negatives win ties.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel()
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must align")
    if k <= 0:
        raise ValueError("k must be positive")
    pos = labels == 1
    n_pos = int(pos.sum())
    if n_pos == 0:
        raise ValueError("hits@k needs at least one positive")
    # Sort descending by score; among ties, negatives first (pessimistic).
    order = np.lexsort((pos, -scores))
    top = pos[order[: min(k, len(scores))]]
    return float(top.sum() / n_pos)


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve for binary ``labels`` given real ``scores``.

    Uses the rank-statistic (Mann-Whitney U) formulation with midrank tie
    correction: AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos * n_neg).
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel()
    if scores.shape != labels.shape:
        raise ValueError("scores and labels must align")
    pos = labels == 1
    neg = ~pos
    n_pos, n_neg = int(pos.sum()), int(neg.sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC needs both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    # midranks for ties
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    r_pos = ranks[pos].sum()
    return float((r_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
