"""The sampling framework of §3.2.2.

"We build a distributed sampling framework and implement a set of sampling
strategies (e.g., uniform sampling, weighted sampling), to reduce the scale
of the k-hop neighborhoods, especially for those hub nodes."

Strategies select at most ``max_neighbors`` in-edge records per node.
Selections are *canonical in source-id order*: every ``select`` — including
the under-cap early return — orders its result by ``e.src``, never by
arrival order.  Arrival order within a reduce group is a function of which
upstream task emitted each record, i.e. of the shuffle partition function;
canonical ordering is what keeps pipeline output byte-identical across
partitioners (hash vs planned), backends, and re-executed attempts.
Sampling is deterministic given ``(seed, node id, salt)`` — and the salt is
*round-independent* on purpose:

* a re-executed reducer attempt must sample identically, or the fault
  tolerance inherited from MapReduce breaks;
* every Reduce round re-propagates the same in-edge records, so a
  round-dependent draw would store the *union* of per-round selections in
  the final GraphFeature, while GraphInfer (which samples once per layer)
  would see a different neighborhood — breaking §3.4's "consistence of data
  processing ... unbiased inference" guarantee.  With one fixed draw per
  node, GraphFlat's neighborhoods and GraphInfer's per-layer aggregations
  coincide exactly, for stochastic strategies too (tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.graphflat.records import InEdgeInfo

__all__ = [
    "SamplingStrategy",
    "UniformSampling",
    "WeightedSampling",
    "TopKSampling",
    "SAMPLING_REGISTRY",
    "make_sampler",
    "sample_negative_edges",
]


class SamplingStrategy:
    """Base: cap in-edge record lists at ``max_neighbors``."""

    name = "abstract"

    def __init__(self, max_neighbors: int, seed: int = 0):
        if max_neighbors < 1:
            raise ValueError("max_neighbors must be >= 1")
        self.max_neighbors = max_neighbors
        self.seed = seed

    def _rng(self, node_id: int, salt: int) -> np.random.Generator:
        """Deterministic per (seed, node, salt): independent of reducer
        placement, of retry attempts, and of the reduce round (see module
        docstring).  ``salt`` distinguishes re-indexed hub slices."""
        return np.random.default_rng(
            np.random.SeedSequence(entropy=(self.seed, node_id & 0x7FFFFFFFFFFFFFFF, salt))
        )

    def select(
        self, in_edges: list[InEdgeInfo], node_id: int, salt: int = 0
    ) -> list[InEdgeInfo]:  # pragma: no cover - abstract
        raise NotImplementedError


class UniformSampling(SamplingStrategy):
    """Keep a uniformly random subset of in-edges."""

    name = "uniform"

    def select(self, in_edges, node_id, salt=0):
        if len(in_edges) <= self.max_neighbors:
            return sorted(in_edges, key=lambda e: e.src)
        rng = self._rng(node_id, salt)
        # Sort candidates by src id first so the choice does not depend on
        # arrival order (shuffles are unordered between runs).
        ordered = sorted(in_edges, key=lambda e: e.src)
        keep = rng.choice(len(ordered), size=self.max_neighbors, replace=False)
        keep.sort()
        return [ordered[i] for i in keep]


class WeightedSampling(SamplingStrategy):
    """Sample without replacement with probability proportional to weight."""

    name = "weighted"

    def select(self, in_edges, node_id, salt=0):
        if len(in_edges) <= self.max_neighbors:
            return sorted(in_edges, key=lambda e: e.src)
        rng = self._rng(node_id, salt)
        ordered = sorted(in_edges, key=lambda e: e.src)
        weights = np.asarray([max(e.weight, 1e-12) for e in ordered], dtype=np.float64)
        probs = weights / weights.sum()
        keep = rng.choice(len(ordered), size=self.max_neighbors, replace=False, p=probs)
        keep.sort()
        return [ordered[i] for i in keep]


class TopKSampling(SamplingStrategy):
    """Deterministically keep the ``max_neighbors`` heaviest in-edges
    (ties broken by src id, so results are placement-independent)."""

    name = "topk"

    def select(self, in_edges, node_id, salt=0):
        if len(in_edges) <= self.max_neighbors:
            return sorted(in_edges, key=lambda e: e.src)
        ordered = sorted(in_edges, key=lambda e: (-e.weight, e.src))
        return ordered[: self.max_neighbors]


SAMPLING_REGISTRY = {
    cls.name: cls for cls in (UniformSampling, WeightedSampling, TopKSampling)
}


def make_sampler(name: str, max_neighbors: int, seed: int = 0) -> SamplingStrategy:
    if name not in SAMPLING_REGISTRY:
        raise KeyError(f"unknown sampling strategy {name!r}; known: {sorted(SAMPLING_REGISTRY)}")
    return SAMPLING_REGISTRY[name](max_neighbors, seed)


def sample_negative_edges(
    pos_src: np.ndarray,
    pos_dst: np.ndarray,
    candidate_ids: np.ndarray,
    num_samples: int,
    seed: int,
    *,
    forbid_src: np.ndarray | None = None,
    forbid_dst: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded corrupt-destination negative sampling for link prediction.

    Cycles through the positive edges, keeping each source and redrawing
    the destination uniformly from ``candidate_ids`` until the pair is
    neither a real edge (``forbid_src``/``forbid_dst``, defaulting to the
    positives themselves), a self-loop, nor an already-drawn negative.

    Runs **parent-side, before any MapReduce round**, from a single
    ``SeedSequence(seed, salt)`` stream — so like the neighbor-sampling
    strategies above, the draw is independent of backend, reducer
    placement, task retries and speculation (the PR 7/8 determinism
    contract), and a re-run with the same seed reproduces the exact
    target table the shards were built from.
    """
    pos_src = np.asarray(pos_src, dtype=np.int64)
    pos_dst = np.asarray(pos_dst, dtype=np.int64)
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
    if len(pos_src) == 0:
        raise ValueError("need at least one positive edge to corrupt")
    if len(candidate_ids) < 2:
        raise ValueError("need at least two candidate nodes to draw negatives from")
    if forbid_src is None or forbid_dst is None:
        forbid_src, forbid_dst = pos_src, pos_dst
    taken = set(
        zip(np.asarray(forbid_src).tolist(), np.asarray(forbid_dst).tolist())
    )
    rng = np.random.default_rng(np.random.SeedSequence(entropy=(seed, 0x4E454741)))
    neg_src = np.empty(num_samples, dtype=np.int64)
    neg_dst = np.empty(num_samples, dtype=np.int64)
    budget = 200 * max(num_samples, 1) + 1000
    attempts = 0
    for k in range(num_samples):
        s = int(pos_src[k % len(pos_src)])
        while True:
            attempts += 1
            if attempts > budget:
                raise RuntimeError(
                    "negative-edge sampling budget exhausted — graph too dense "
                    "for the requested number of negatives"
                )
            d = int(candidate_ids[int(rng.integers(len(candidate_ids)))])
            if d != s and (s, d) not in taken:
                break
        taken.add((s, d))
        neg_src[k] = s
        neg_dst[k] = d
    return neg_src, neg_dst
