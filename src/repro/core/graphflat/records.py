"""Value types flowing through GraphFlat's shuffles.

The paper's Reduce phase handles "three kinds of information" per node
(§3.2.1): the **self information** (here :class:`SubgraphInfo` — the
accumulated (k-1)-hop neighborhood), the **in-edge information**
(:class:`InEdgeInfo` — edge feature/weight plus the sender's self
information) and the **out-edge information** (:class:`OutEdgeInfo` — where
to propagate next round).  All three pickle cleanly so the runtime can spill
shuffles to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.subgraph import GraphFeature

__all__ = ["SubgraphInfo", "InEdgeInfo", "OutEdgeInfo", "PartialMerge"]


@dataclass
class SubgraphInfo:
    """Accumulated neighborhood of ``root`` (the "self information").

    ``nodes`` maps node id -> (feature, hop distance to root along directed
    paths); ``edges`` maps (src, dst) -> (weight, edge_feature).  Dedup by
    construction: re-discovered nodes keep the *minimum* hop.
    """

    root: int
    nodes: dict[int, tuple[np.ndarray, int]] = field(default_factory=dict)
    edges: dict[tuple[int, int], tuple[float, np.ndarray | None]] = field(default_factory=dict)

    @staticmethod
    def seed(node_id: int, feature: np.ndarray) -> "SubgraphInfo":
        """The 0-hop neighborhood: the node itself (Definition 1)."""
        return SubgraphInfo(root=node_id, nodes={node_id: (feature, 0)})

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def absorb_neighbor(
        self,
        neighbor: "SubgraphInfo",
        weight: float,
        edge_feat: np.ndarray | None,
    ) -> None:
        """Merge an in-edge neighbor's self information (one merge step).

        Every node of the neighbor's subgraph lands one hop further from our
        root; the connecting edge ``neighbor.root -> self.root`` is added.
        """
        for node_id, (feat, hop) in neighbor.nodes.items():
            mine = self.nodes.get(node_id)
            if mine is None or hop + 1 < mine[1]:
                self.nodes[node_id] = (feat, hop + 1)
        for key, value in neighbor.edges.items():
            if key not in self.edges:
                self.edges[key] = value
        self.edges[(neighbor.root, self.root)] = (weight, edge_feat)

    def absorb_partial(self, other: "SubgraphInfo") -> None:
        """Merge a partial result from a re-indexed (suffixed) reducer —
        hops are already relative to our root, so no +1."""
        if other.root != self.root:
            raise ValueError(f"partial merge root mismatch: {other.root} != {self.root}")
        for node_id, (feat, hop) in other.nodes.items():
            mine = self.nodes.get(node_id)
            if mine is None or hop < mine[1]:
                self.nodes[node_id] = (feat, hop)
        for key, value in other.edges.items():
            if key not in self.edges:
                self.edges[key] = value

    def to_graph_feature(self) -> GraphFeature:
        """Flatten to the storage/training form (§3.2.1 "Storing")."""
        node_ids = np.fromiter(self.nodes.keys(), dtype=np.int64, count=len(self.nodes))
        order = np.argsort(node_ids)
        node_ids = node_ids[order]
        feats = list(self.nodes.values())
        x = np.stack([feats[i][0] for i in order]).astype(np.float32)
        hops = np.asarray([feats[i][1] for i in order], dtype=np.int64)

        pos = {int(i): p for p, i in enumerate(node_ids)}
        m = len(self.edges)
        src = np.empty(m, dtype=np.int64)
        dst = np.empty(m, dtype=np.int64)
        weight = np.empty(m, dtype=np.float32)
        any_feat = any(ef is not None for _, ef in self.edges.values())
        efeat = None
        if any_feat:
            dim = next(len(ef) for _, ef in self.edges.values() if ef is not None)
            efeat = np.zeros((m, dim), dtype=np.float32)
        for i, ((s, d), (w, ef)) in enumerate(self.edges.items()):
            src[i] = pos[s]
            dst[i] = pos[d]
            weight[i] = w
            if efeat is not None and ef is not None:
                efeat[i] = ef
        # Canonical (dst, src) order: the flattened bytes are then identical
        # no matter how reducers were partitioned (re-indexing, retries, ...).
        order = np.lexsort((src, dst))
        return GraphFeature(
            np.asarray([self.root]),
            node_ids,
            x,
            hops,
            src[order],
            dst[order],
            None if efeat is None else efeat[order],
            weight[order],
        )


@dataclass
class InEdgeInfo:
    """In-edge information: the edge ``src -> key_node`` plus the sender's
    current self information (its (k-1)-hop neighborhood)."""

    src: int
    weight: float
    edge_feat: np.ndarray | None
    subgraph: SubgraphInfo


@dataclass
class OutEdgeInfo:
    """Out-edge information: propagation target for the next round.
    "All of the out-edge information remain unchanged" (§3.2.1)."""

    dst: int
    weight: float
    edge_feat: np.ndarray | None


@dataclass
class PartialMerge:
    """Output of a suffixed (re-indexed) reducer: the in-edge records of one
    slice of a hub node, pre-sampled and pre-merged (§3.2.2)."""

    in_edges: list[InEdgeInfo]
