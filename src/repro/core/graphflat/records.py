"""Value types flowing through GraphFlat's shuffles.

The paper's Reduce phase handles "three kinds of information" per node
(§3.2.1): the **self information** (here :class:`SubgraphInfo` — the
accumulated (k-1)-hop neighborhood), the **in-edge information**
(:class:`InEdgeInfo` — edge feature/weight plus the sender's self
information) and the **out-edge information** (:class:`OutEdgeInfo` — where
to propagate next round).  All three pickle cleanly so the runtime can spill
shuffles to disk — and each registers a *flat* wire form with the binary
shuffle codec (bottom of this module): node/edge state is spilled as
varint id/hop blocks plus contiguous feature matrices instead of pickled
dicts of per-node tuples, which is where the process backend's per-object
serialization tax lived.  Encoding preserves dict insertion order, float
bits and array dtypes exactly, so a job's output is byte-identical under
either codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.subgraph import GraphFeature
from repro.proto.framing import (
    decode_edge_fields,
    decode_value,
    encode_edge_fields,
    encode_value,
    register_record,
)
from repro.proto.varint import decode_signed, decode_unsigned, encode_signed, encode_unsigned

__all__ = ["SubgraphInfo", "InEdgeInfo", "OutEdgeInfo", "PartialMerge"]


@dataclass
class SubgraphInfo:
    """Accumulated neighborhood of ``root`` (the "self information").

    ``nodes`` maps node id -> (feature, hop distance to root along directed
    paths); ``edges`` maps (src, dst) -> (weight, edge_feature).  Dedup by
    construction: re-discovered nodes keep the *minimum* hop.
    """

    root: int
    nodes: dict[int, tuple[np.ndarray, int]] = field(default_factory=dict)
    edges: dict[tuple[int, int], tuple[float, np.ndarray | None]] = field(default_factory=dict)

    @staticmethod
    def seed(node_id: int, feature: np.ndarray) -> "SubgraphInfo":
        """The 0-hop neighborhood: the node itself (Definition 1)."""
        return SubgraphInfo(root=node_id, nodes={node_id: (feature, 0)})

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def absorb_neighbor(
        self,
        neighbor: "SubgraphInfo",
        weight: float,
        edge_feat: np.ndarray | None,
    ) -> None:
        """Merge an in-edge neighbor's self information (one merge step).

        Every node of the neighbor's subgraph lands one hop further from our
        root; the connecting edge ``neighbor.root -> self.root`` is added.
        """
        for node_id, (feat, hop) in neighbor.nodes.items():
            mine = self.nodes.get(node_id)
            if mine is None or hop + 1 < mine[1]:
                self.nodes[node_id] = (feat, hop + 1)
        for key, value in neighbor.edges.items():
            if key not in self.edges:
                self.edges[key] = value
        self.edges[(neighbor.root, self.root)] = (weight, edge_feat)

    def absorb_partial(self, other: "SubgraphInfo") -> None:
        """Merge a partial result from a re-indexed (suffixed) reducer —
        hops are already relative to our root, so no +1."""
        if other.root != self.root:
            raise ValueError(f"partial merge root mismatch: {other.root} != {self.root}")
        for node_id, (feat, hop) in other.nodes.items():
            mine = self.nodes.get(node_id)
            if mine is None or hop < mine[1]:
                self.nodes[node_id] = (feat, hop)
        for key, value in other.edges.items():
            if key not in self.edges:
                self.edges[key] = value

    def to_graph_feature(self) -> GraphFeature:
        """Flatten to the storage/training form (§3.2.1 "Storing")."""
        node_ids = np.fromiter(self.nodes.keys(), dtype=np.int64, count=len(self.nodes))
        order = np.argsort(node_ids)
        node_ids = node_ids[order]
        feats = list(self.nodes.values())
        x = np.stack([feats[i][0] for i in order]).astype(np.float32)
        hops = np.asarray([feats[i][1] for i in order], dtype=np.int64)

        pos = {int(i): p for p, i in enumerate(node_ids)}
        m = len(self.edges)
        src = np.empty(m, dtype=np.int64)
        dst = np.empty(m, dtype=np.int64)
        weight = np.empty(m, dtype=np.float32)
        any_feat = any(ef is not None for _, ef in self.edges.values())
        efeat = None
        if any_feat:
            dim = next(len(ef) for _, ef in self.edges.values() if ef is not None)
            efeat = np.zeros((m, dim), dtype=np.float32)
        for i, ((s, d), (w, ef)) in enumerate(self.edges.items()):
            src[i] = pos[s]
            dst[i] = pos[d]
            weight[i] = w
            if efeat is not None and ef is not None:
                efeat[i] = ef
        # Canonical (dst, src) order: the flattened bytes are then identical
        # no matter how reducers were partitioned (re-indexing, retries, ...).
        order = np.lexsort((src, dst))
        return GraphFeature(
            np.asarray([self.root]),
            node_ids,
            x,
            hops,
            src[order],
            dst[order],
            None if efeat is None else efeat[order],
            weight[order],
        )


@dataclass
class InEdgeInfo:
    """In-edge information: the edge ``src -> key_node`` plus the sender's
    current self information (its (k-1)-hop neighborhood)."""

    src: int
    weight: float
    edge_feat: np.ndarray | None
    subgraph: SubgraphInfo


@dataclass
class OutEdgeInfo:
    """Out-edge information: propagation target for the next round.
    "All of the out-edge information remain unchanged" (§3.2.1)."""

    dst: int
    weight: float
    edge_feat: np.ndarray | None


@dataclass
class PartialMerge:
    """Output of a suffixed (re-indexed) reducer: the in-edge records of one
    slice of a hub node, pre-sampled and pre-merged (§3.2.2)."""

    in_edges: list[InEdgeInfo]


# --------------------------------------------------------------- wire forms
# Flat binary encodings for the spill shuffle (repro.proto.framing).  Tags
# 0x20-0x2F are reserved for GraphFlat records.

def _encode_vectors(arrays: list, out: bytearray) -> None:
    """A block of per-row vectors: ``0`` = empty, ``1`` = uniform (stacked
    into one contiguous matrix — the flat fast path), ``2`` = generic
    fallback (ragged shapes, mixed dtypes, or ``None`` entries)."""
    if not arrays:
        out.append(0)
        return
    first = arrays[0]
    uniform = isinstance(first, np.ndarray) and first.ndim == 1 and all(
        isinstance(a, np.ndarray) and a.dtype == first.dtype and a.shape == first.shape
        for a in arrays
    )
    if uniform:
        out.append(1)
        out += encode_value(np.stack(arrays))
    else:
        out.append(2)
        out += encode_value(list(arrays))


def _decode_vectors(buf: memoryview, offset: int, count: int):
    mode = buf[offset]
    offset += 1
    if mode == 0:
        rows = []
    elif mode == 1:
        matrix, offset = decode_value(buf, offset)
        # Owned per-row copies, not views: reducers sample rows and keep a
        # subset alive across the round — a view would pin the whole stacked
        # matrix and break the streamed reduce's memory bound.
        rows = [np.array(row) for row in matrix]
    else:
        rows, offset = decode_value(buf, offset)
    if len(rows) != count:
        raise ValueError(
            f"vector block holds {len(rows)} rows, header promised {count}"
        )
    return rows, offset


def _encode_subgraph(info: SubgraphInfo, out: bytearray) -> None:
    # Node and edge tables go out as contiguous little-endian blocks
    # (ids/hops as raw int64, weights as raw float64, features stacked into
    # one matrix): every hot loop is a numpy bulk conversion, not a
    # per-element Python encode — this is where the codec's wall-clock win
    # over per-object pickling comes from.
    out += encode_signed(info.root)
    n = len(info.nodes)
    out += encode_unsigned(n)
    ids = np.fromiter(info.nodes.keys(), dtype=np.int64, count=n)
    out += ids.astype("<i8", copy=False).tobytes()
    hops = np.empty(n, dtype=np.int64)
    feats = []
    for i, (feat, hop) in enumerate(info.nodes.values()):
        hops[i] = hop
        feats.append(feat)
    out += hops.astype("<i8", copy=False).tobytes()
    _encode_vectors(feats, out)

    m = len(info.edges)
    out += encode_unsigned(m)
    if not m:
        return
    pairs = np.fromiter(
        (i for pair in info.edges.keys() for i in pair), dtype=np.int64, count=2 * m
    )
    out += pairs.astype("<i8", copy=False).tobytes()
    weights = np.empty(m, dtype=np.float64)
    efeats = []
    for i, (weight, ef) in enumerate(info.edges.values()):
        weights[i] = weight
        efeats.append(ef)
    out += weights.astype("<f8", copy=False).tobytes()
    if all(ef is None for ef in efeats):
        out.append(0)
    else:
        _encode_vectors(efeats, out)


def _read_block(buf: memoryview, offset: int, count: int, dtype: str):
    nbytes = count * np.dtype(dtype).itemsize
    block = np.frombuffer(buf[offset : offset + nbytes], dtype=dtype)
    if len(block) != count:
        raise ValueError("truncated SubgraphInfo block")
    return block, offset + nbytes


def _decode_subgraph(buf: memoryview, offset: int):
    root, offset = decode_signed(buf, offset)
    n, offset = decode_unsigned(buf, offset)
    ids, offset = _read_block(buf, offset, n, "<i8")
    hops, offset = _read_block(buf, offset, n, "<i8")
    feats, offset = _decode_vectors(buf, offset, n)
    nodes = {
        nid: (feat, hop) for nid, feat, hop in zip(ids.tolist(), feats, hops.tolist())
    }
    m, offset = decode_unsigned(buf, offset)
    if not m:
        return SubgraphInfo(root, nodes, {}), offset
    pairs, offset = _read_block(buf, offset, 2 * m, "<i8")
    weights, offset = _read_block(buf, offset, m, "<f8")
    mode = buf[offset]
    if mode == 0:  # all-None edge features: mode byte only
        offset += 1
        efeats = [None] * m
    else:
        efeats, offset = _decode_vectors(buf, offset, m)
    edges = {
        (src, dst): (weight, ef)
        for (src, dst), weight, ef in zip(
            pairs.reshape(m, 2).tolist(), weights.tolist(), efeats
        )
    }
    return SubgraphInfo(root, nodes, edges), offset


def _encode_in_edge(info: InEdgeInfo, out: bytearray) -> None:
    encode_edge_fields(info.src, info.weight, info.edge_feat, out)
    _encode_subgraph(info.subgraph, out)


def _decode_in_edge(buf: memoryview, offset: int):
    src, weight, edge_feat, offset = decode_edge_fields(buf, offset)
    subgraph, offset = _decode_subgraph(buf, offset)
    return InEdgeInfo(src, weight, edge_feat, subgraph), offset


def _encode_out_edge(info: OutEdgeInfo, out: bytearray) -> None:
    encode_edge_fields(info.dst, info.weight, info.edge_feat, out)


def _decode_out_edge(buf: memoryview, offset: int):
    dst, weight, edge_feat, offset = decode_edge_fields(buf, offset)
    return OutEdgeInfo(dst, weight, edge_feat), offset


def _encode_partial(partial: PartialMerge, out: bytearray) -> None:
    out += encode_value(partial.in_edges)


def _decode_partial(buf: memoryview, offset: int):
    in_edges, offset = decode_value(buf, offset)
    return PartialMerge(in_edges), offset


register_record(0x20, SubgraphInfo, _encode_subgraph, _decode_subgraph)
register_record(0x21, InEdgeInfo, _encode_in_edge, _decode_in_edge)
register_record(0x22, OutEdgeInfo, _encode_out_edge, _decode_out_edge)
register_record(0x23, PartialMerge, _encode_partial, _decode_partial)
