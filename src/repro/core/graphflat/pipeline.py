"""The GraphFlat MapReduce pipeline (§3.2.1) with re-indexing + sampling
(§3.2.2).

Rounds:

* **Map** (runs once): co-locates, per node ``v``, the self information
  ``S_0(v)`` (its feature), and v's out-edges; then propagates
  ``S_0(v)`` along out-edges as the in-edge information of the destinations.
* **Reduce × K**: round ``k`` merges each node's self information with its
  (sampled) in-edge information — producing the k-hop neighborhood — and
  propagates the merged result via out-edges for round ``k+1``.  Out-edge
  information passes through unchanged.
* **Storing**: final self informations of the target nodes are flattened to
  wire bytes (``repro.proto``) and written to the DFS.

Hub handling: when a destination's in-degree exceeds ``hub_threshold``
(degrees are pre-computed by a small MapReduce job), propagation appends a
deterministic suffix to the shuffle key, splitting the hub's in-edge records
across ``reindex_fanout`` reducers which pre-sample and pre-merge; an
inverted-indexing step restores the original key for the final merge.  This
is Figure 3 verbatim.

Every operator here is a top-level callable dataclass (not a closure) so a
job can be pickled to worker processes under the runtime's ``processes``
backend — which is what turns §3.2's "scales near-linearly with workers"
claim into something this reproduction can actually measure.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.graphflat.records import InEdgeInfo, OutEdgeInfo, SubgraphInfo
from repro.core.graphflat.sampling import SamplingStrategy, make_sampler
from repro.graph.subgraph import GraphFeature, merge_graph_features
from repro.graph.tables import EdgeTable, NodeTable
from repro.graph.validate import validate_tables
from repro.mapreduce.fs import DATASET_LAYOUTS, DistFileSystem
from repro.mapreduce.job import MapReduceJob, SumCombiner
from repro.mapreduce.partition import PARTITIONERS, PartitionPlan, plan_partitions, publish_plan
from repro.mapreduce.runtime import LocalRuntime, RunStats
from repro.mapreduce.spill import DEFAULT_RUN_BYTES, DEFAULT_RUN_RECORDS
from repro.proto.codec import encode_sample
from repro.proto.columnar import write_sample_shard
from repro.tasks import make_task

__all__ = [
    "DATASET_SINKS",
    "GraphFlatConfig",
    "GraphFlatResult",
    "MergeReducer",
    "PairReducer",
    "PartialReducer",
    "PrepareReducer",
    "SampleShardSink",
    "build_partition_plan",
    "graph_flat",
]

DATASET_SINKS = ("auto", "parent", "reducer")


@dataclass
class GraphFlatConfig:
    """Knobs of the pipeline (the CLI flags of Figure 6's ``GraphFlat -n
    node_table -e edge_table -h hops -s sampling_strategy``)."""

    hops: int = 2
    sampling: str = "uniform"
    max_neighbors: int = 32
    task: str = "node_classification"
    """Task plugin (``repro.tasks``) the samples are built for.  Node-level
    tasks keep the classic per-node flow byte-for-byte; edge-level tasks
    (``link_prediction`` / ``edge_classification``) derive a target-edge
    table, flatten *both* endpoints' k-hop neighborhoods, and join them in
    one extra pairing round keyed by edge index."""
    edge_targets: int | None = None
    """Edge-level tasks: cap on the number of positive target edges
    (seeded downsample); ``None`` keeps every eligible edge."""
    negative_ratio: int = 1
    """Link prediction: sampled negative edges per positive edge."""
    hub_threshold: int = 1_000
    reindex_fanout: int = 8
    num_reducers: int = 4
    num_shards: int = 4
    seed: int = 0
    validate: bool = True
    backend: str = "serial"
    """MapReduce backend (``serial`` / ``threads`` / ``processes``) used
    when no explicit runtime is passed to :func:`graph_flat`."""
    num_workers: int | None = None
    """Worker count for the pooled backends; ``None`` = backend default."""
    spill_dir: str | None = None
    """Shuffle spill directory; ``None`` = in-memory (serial/threads) or a
    private temp dir (processes)."""
    shuffle_codec: str = "binary"
    """Spill record encoding: ``binary`` (flat SubgraphInfo/edge records
    instead of pickled object graphs — the default; output is byte-identical
    to ``pickle``, tested) or ``pickle``."""
    partitioner: str = "hash"
    """Shuffle partition function for the intermediate rounds: ``hash``
    (crc32 of the key, the classic default) or ``planned`` (degree-aware
    greedy bin-packing built from the degree job's output — heavy keys get
    explicit placements, the light tail keeps hashing; see
    ``repro.mapreduce.partition``).  The *final* round always partitions by
    hash: output record order is partition-major, so pinning the last
    round's placement is what keeps pipeline output byte-identical across
    partitioners (tested)."""
    dataset_layout: str = "columnar"
    """DFS shard layout for the output dataset: ``columnar`` (mmap-able
    stacked matrices that GraphTrainer slices batches from — the default;
    samples go straight from the final reduce into the shard writer, no
    per-sample re-framing pass) or ``row`` (framed per-sample byte strings,
    the compatibility fallback).  ``read_dataset`` yields byte-identical
    records either way."""
    dataset_sink: str = "auto"
    """Who writes the output shards.  ``reducer``: each final-round reducer
    writes its own columnar shard directly into the DFS — the sample
    triples never funnel through the parent process, and shard count equals
    ``num_reducers`` (``num_shards`` is ignored).  ``parent``: the classic
    collect-then-write path (``num_shards`` shards).  ``auto`` (default)
    picks ``reducer`` whenever a DFS is given with columnar layout.  The
    global record stream (``read_dataset``) is byte-identical either way —
    only shard boundaries differ."""
    spill_run_records: int = DEFAULT_RUN_RECORDS
    """External-sort run bound: records buffered per spill writer before a
    sorted run is flushed (see ``repro.mapreduce.spill.SpillRunWriter``)."""
    spill_run_bytes: int = DEFAULT_RUN_BYTES
    """External-sort run bound in encoded bytes (binary codec only)."""
    max_attempts: int = 3
    """Attempt budget per MapReduce task before the job fails."""
    task_timeout_s: float | None = None
    """Per-attempt deadline: an attempt running longer is discarded (pool
    kill under ``processes``, cooperative check elsewhere) and retried as a
    :class:`~repro.mapreduce.fault.TaskTimeoutError`.  ``None`` = none."""
    speculation_factor: float | None = None
    """Straggler speculation (processes backend): a task running longer
    than this factor x the phase's median completed duration races a
    duplicate attempt; first completion wins.  ``None`` = off."""
    shuffle_transport: str = "local"
    """How reducers reach map-side shuffle runs: ``local`` (direct file
    reads — the intra-host fast path, byte-identical to the historical
    spill layout), ``tcp`` (shuffle peering over the frame wire protocol)
    or ``shared-dir`` (runs pushed to per-partition peer directories under
    a shared ``spill_dir`` mount).  Output is byte-identical across all
    three (tested)."""
    hosts: str | None = None
    """Cluster roster for the TCP transports (``host:port,host:port,...``;
    first entry is the coordinator).  ``None`` binds ephemeral loopback."""

    def __post_init__(self):
        if self.hops < 1:
            raise ValueError("hops must be >= 1")
        if self.reindex_fanout < 2:
            raise ValueError("reindex_fanout must be >= 2")
        make_task(self.task)  # unknown task names fail here, not mid-pipeline
        if self.edge_targets is not None and self.edge_targets < 1:
            raise ValueError("edge_targets must be >= 1")
        if self.negative_ratio < 1:
            raise ValueError("negative_ratio must be >= 1")
        if self.dataset_layout not in DATASET_LAYOUTS:
            raise ValueError(f"dataset_layout must be one of {DATASET_LAYOUTS}")
        if self.dataset_sink not in DATASET_SINKS:
            raise ValueError(f"dataset_sink must be one of {DATASET_SINKS}")
        if self.partitioner not in PARTITIONERS:
            raise ValueError(f"partitioner must be one of {PARTITIONERS}")
        from repro.transport.shuffle import SHUFFLE_TRANSPORTS

        if self.shuffle_transport not in SHUFFLE_TRANSPORTS:
            raise ValueError(
                f"shuffle_transport must be one of {SHUFFLE_TRANSPORTS}"
            )

    def make_runtime(self) -> LocalRuntime:
        cluster = None
        if self.hosts:
            from repro.transport.cluster import ClusterSpec

            cluster = ClusterSpec.parse(self.hosts)
        return LocalRuntime(
            backend=self.backend,
            max_workers=self.num_workers,
            max_attempts=self.max_attempts,
            spill_dir=self.spill_dir,
            shuffle_codec=self.shuffle_codec,
            spill_run_records=self.spill_run_records,
            spill_run_bytes=self.spill_run_bytes,
            task_timeout_s=self.task_timeout_s,
            speculation_factor=self.speculation_factor,
            shuffle_transport=self.shuffle_transport,
            cluster=cluster,
        )


@dataclass
class GraphFlatResult:
    """Output handle: encoded samples (in-memory mode) or a DFS dataset."""

    num_targets: int
    hops: int
    task: str = "node_classification"
    dataset: str | None = None
    samples: list[bytes] | None = None
    hub_nodes: list[int] = field(default_factory=list)
    round_stats: list[RunStats] = field(default_factory=list)
    neighborhood_nodes: np.ndarray | None = None
    neighborhood_edges: np.ndarray | None = None

    def summary(self) -> dict:
        out = {
            "targets": self.num_targets,
            "hops": self.hops,
            "hubs": len(self.hub_nodes),
        }
        if self.neighborhood_nodes is not None and len(self.neighborhood_nodes):
            out["mean_nodes"] = float(self.neighborhood_nodes.mean())
            out["max_nodes"] = int(self.neighborhood_nodes.max())
            out["mean_edges"] = float(self.neighborhood_edges.mean())
            out["max_edges"] = int(self.neighborhood_edges.max())
        return out


def _suffix(src: int, dst: int, fanout: int) -> int:
    """Deterministic 'random suffix' for re-indexing: stable across task
    re-execution (fault tolerance), across runs, and across rounds (so the
    per-slice sampling draw is the same every round — see repro.core.
    graphflat.sampling)."""
    return zlib.crc32(f"{src}|{dst}".encode()) % fanout


def _degree_mapper(key, value):
    # value: (src, dst, weight, edge_feat); count by destination
    yield value[1], 1


def _sum_reducer(key, values):
    yield key, sum(values)


def _degree_job(num_reducers: int) -> MapReduceJob:
    """In-degree counting — the broadcast input of the hub detector.

    The combiner is a :class:`~repro.mapreduce.job.SumCombiner`, which the
    spilling map path pushes down into the run writer: per-edge ``(dst, 1)``
    records are folded into per-key partial counts *inside the write
    buffer*, on the encoded records, before they ever hit disk."""
    return MapReduceJob(
        "graphflat-degree",
        _sum_reducer,
        mapper=_degree_mapper,
        combiner=SumCombiner(),
        num_reducers=num_reducers,
    )


def build_partition_plan(
    degree_pairs,
    hubs: frozenset[int],
    fanout: int,
    reindex_active: bool,
    num_reducers: int,
) -> PartitionPlan:
    """Degree-aware placement plan covering every intermediate round's key
    forms (GraphFlat and GraphInfer share them).

    A node's expected shuffle load is its in-degree — the number of ``in``
    records propagated to it each round, known before any round runs
    because the degree job already counted it.  Per node of in-degree
    ``deg``, the weighted key set is:

    * reindex off — the plain int key at weight ``deg`` (both the merge
      rounds' routing and the no-hub case).
    * reindex on, non-hub — ``(node, 0)`` at ``deg`` (routing into the
      re-index rounds, where in-records pass through unsampled) and the
      plain int at ``deg`` (routing into the merge rounds, whose keys are
      inverted back to plain ids).
    * reindex on, hub — each slice key ``(node, 1+s)`` at ``deg / fanout``
      (the split the re-indexing performs), ``(node, 0)`` at ~2 (self +
      out records only), and the plain int at ``2 + fanout`` (post-sampling
      partials).

    :func:`~repro.mapreduce.partition.plan_partitions` then LPT-packs the
    heavy head of that set; everything else keeps hashing."""

    def weighted():
        for node, deg in degree_pairs:
            node = int(node)
            deg = float(deg)
            if not reindex_active:
                yield node, deg
            elif node in hubs:
                share = deg / fanout
                for s in range(1, fanout + 1):
                    yield (node, s), share
                yield (node, 0), 2.0
                yield node, 2.0 + fanout
            else:
                yield (node, 0), deg
                yield node, deg

    return plan_partitions(weighted(), num_reducers)


def graph_flat(
    nodes: NodeTable,
    edges: EdgeTable,
    targets: np.ndarray | None = None,
    config: GraphFlatConfig | None = None,
    runtime: LocalRuntime | None = None,
    fs: DistFileSystem | None = None,
    dataset_name: str = "graphflat/output",
) -> GraphFlatResult:
    """Run GraphFlat end to end.

    Parameters
    ----------
    targets:
        node ids whose k-hop neighborhoods are materialised (the labeled
        nodes, §3.2); ``None`` keeps every node (GraphInfer-style input).
    runtime:
        MapReduce runtime; defaults to a serial one.
    fs / dataset_name:
        when ``fs`` is given, flattened samples are written there as a
        sharded dataset and ``result.dataset`` is set; otherwise the encoded
        samples are returned in memory (``result.samples``).
    """
    config = config or GraphFlatConfig()
    owns_runtime = runtime is None
    runtime = runtime or config.make_runtime()
    try:
        return _graph_flat(
            nodes, edges, targets, config, runtime, fs, dataset_name
        )
    finally:
        if owns_runtime:
            runtime.close()


def _graph_flat(
    nodes: NodeTable,
    edges: EdgeTable,
    targets: np.ndarray | None,
    config: GraphFlatConfig,
    runtime: LocalRuntime,
    fs: DistFileSystem | None,
    dataset_name: str,
) -> GraphFlatResult:
    if config.validate:
        validate_tables(nodes, edges)
    edges = edges.coalesce()  # one A_{v,u} entry per node pair (see EdgeTable)

    sampler = make_sampler(config.sampling, config.max_neighbors, config.seed)
    task_obj = make_task(config.task)
    # Meta records the task only when it deviates from the classic default,
    # so node-classification output (shards *and* _META.json) stays
    # byte-identical to the pre-task-layer pipeline.
    meta_task = None if config.task == "node_classification" else config.task
    edge_fanout = None
    if task_obj.edge_level:
        if targets is not None:
            raise ValueError(
                f"task {config.task!r} derives its targets from the edge "
                "table; explicit node targets only apply to node-level tasks"
            )
        # Parent-side + seeded: the target-edge table (including link
        # prediction's negative draws) is fixed before any MapReduce round
        # runs, so retries/speculation/backend choice cannot change it.
        edge_table = task_obj.build_edge_targets(
            nodes,
            edges,
            seed=config.seed,
            max_targets=config.edge_targets,
            negative_ratio=config.negative_ratio,
        )
        target_set = {int(t) for t in edge_table.endpoint_ids}
        label_of = _EdgeLabelTable(edge_table.labels)
        edge_fanout = _EdgeFanout.from_targets(edge_table)
    else:
        target_set = None if targets is None else {int(t) for t in np.asarray(targets)}
        label_of = _LabelTable.from_nodes(nodes)
    if target_set is not None:
        missing = [t for t in sorted(target_set) if t not in nodes]
        if missing:
            raise KeyError(f"{len(missing)} target ids not in node table (e.g. {missing[:5]})")
    type_table = _TypeTable.from_tables(nodes, edges)

    edge_rows = [
        (int(s), (int(s), int(d), float(w), f))
        for s, d, f, w in edges.rows()
    ]

    # ---- hub detection (a tiny MR job over the edge table) ----------------
    degree_pairs = runtime.run(_degree_job(config.num_reducers), edge_rows)
    degree_stats: list[RunStats] = list(runtime.round_stats)
    hubs = frozenset(int(v) for v, deg in degree_pairs if deg > config.hub_threshold)
    reindex_active = bool(hubs)

    # ---- degree-aware placement plan (tentpole of the pluggable
    # partitioner): built from the degree job's output the pipeline already
    # ran for hub detection, broadcast once (shared memory under pickling
    # backends), applied to every intermediate round below.
    partition_broadcast = None
    planned = None
    if config.partitioner == "planned":
        plan = build_partition_plan(
            degree_pairs, hubs, config.reindex_fanout, reindex_active,
            config.num_reducers,
        )
        partition_broadcast, planned = publish_plan(plan, runtime.needs_pickling)
    try:
        # ---- Map phase ("runs only once at the beginning", §3.2.1) followed
        # by K Reduce rounds, submitted as one chained sequence: every round
        # is reduce-only, so the runtime hands partitions reducer-to-reducer
        # and intermediate state never funnels through this process.
        node_rows = [(int(i), ("node", feat)) for i, feat, _ in nodes.rows()]
        jobs = [
            MapReduceJob(
                "graphflat-map",
                PrepareReducer(hubs, config.reindex_fanout, reindex_active),
                num_reducers=config.num_reducers,
            )
        ]
        for k in range(1, config.hops + 1):
            if reindex_active:
                jobs.append(
                    MapReduceJob(
                        f"graphflat-reduce{k}-reindex",
                        PartialReducer(sampler, k, config.reindex_fanout),
                        num_reducers=config.num_reducers,
                    )
                )
            jobs.append(
                MapReduceJob(
                    f"graphflat-reduce{k}",
                    MergeReducer(
                        sampler,
                        k,
                        config.hops,
                        hubs,
                        config.reindex_fanout,
                        reindex_active,
                        None if target_set is None else frozenset(target_set),
                        edge_fanout,
                    ),
                    num_reducers=config.num_reducers,
                )
            )
        if edge_fanout is not None:
            # Pairing round: join the two endpoints' flattened neighborhoods
            # per target edge.  Keyed by edge index and hash-partitioned —
            # being the new final round, it inherits the determinism
            # contract (output order is partition-major over edge indices).
            jobs.append(
                MapReduceJob(
                    "graphflat-pair",
                    PairReducer(),
                    num_reducers=config.num_reducers,
                )
            )
        if planned is not None:
            # Intermediate rounds get planned placement; the *final* round
            # keeps the hash default: output record order is partition-major
            # and reducer-sink shards are per-partition, so pinning the last
            # round's placement is the planner's determinism contract —
            # pipeline output stays byte-identical across partitioners.
            for job in jobs[:-1]:
                job.partitioner = planned
        sink_mode = config.dataset_sink
        if sink_mode == "auto":
            sink_mode = (
                "reducer"
                if fs is not None and config.dataset_layout == "columnar"
                else "parent"
            )
        elif sink_mode == "reducer" and (fs is None or config.dataset_layout != "columnar"):
            raise ValueError(
                "dataset_sink='reducer' requires a DFS and columnar dataset_layout"
            )

        if sink_mode == "reducer":
            # ---- Storing, reducer-owned: each final-round reducer writes
            # its own AGLC shard straight into the (pre-cleared) dataset
            # directory; sample triples never travel through this process.
            # Shard order = partition order and keys are sorted within a
            # partition, so the global record stream matches the parent-side
            # write exactly.
            directory = fs.prepare_dataset(dataset_name)
            sink = SampleShardSink(str(directory), label_of, type_table, meta_task)
            summaries = runtime.run_rounds(jobs, node_rows + edge_rows, final_sink=sink)
            round_stats = degree_stats + list(runtime.round_stats)
            counts = [count for count, _, _ in summaries]
            fs.finalize_dataset(
                dataset_name,
                layout="columnar",
                kind="samples",
                record_counts=counts,
                task=meta_task,
            )
            return GraphFlatResult(
                num_targets=sum(counts),
                hops=config.hops,
                task=config.task,
                dataset=dataset_name,
                hub_nodes=sorted(hubs),
                round_stats=round_stats,
                neighborhood_nodes=np.asarray(
                    [n for _, n_nodes, _ in summaries for n in n_nodes], dtype=np.int64
                ),
                neighborhood_edges=np.asarray(
                    [n for _, _, n_edges in summaries for n in n_edges], dtype=np.int64
                ),
            )

        data = runtime.run_rounds(jobs, node_rows + edge_rows)
    finally:
        # Single unlink point for the plan slab — covers failed rounds too.
        if partition_broadcast is not None:
            partition_broadcast.close()
    # Degree-job stats included: the CLI/bench shuffle accounting must cover
    # every round the pipeline actually ran.
    round_stats: list[RunStats] = degree_stats + list(runtime.round_stats)

    # ---- Storing, parent-side -----------------------------------------------
    # ``sample_id`` is the node id (node tasks) or edge index (edge tasks);
    # edge tasks' final pairing round already yields GraphFeatures.
    triples: list[tuple] = []
    n_nodes: list[int] = []
    n_edges: list[int] = []
    for sample_id, (tag, info) in data:
        if tag != "final":  # pragma: no cover - defensive
            raise RuntimeError(f"unexpected record tag {tag!r} after final round")
        gf = info if isinstance(info, GraphFeature) else info.to_graph_feature()
        if type_table is not None:
            gf = type_table.attach(gf)
        n_nodes.append(gf.num_nodes)
        n_edges.append(gf.num_edges)
        triples.append((sample_id, label_of(sample_id), gf))

    result = GraphFlatResult(
        num_targets=len(triples),
        hops=config.hops,
        task=config.task,
        hub_nodes=sorted(hubs),
        round_stats=round_stats,
        neighborhood_nodes=np.asarray(n_nodes, dtype=np.int64),
        neighborhood_edges=np.asarray(n_edges, dtype=np.int64),
    )
    if fs is not None and config.dataset_layout == "columnar":
        # Columnar shards take the triples directly — no per-sample
        # re-framing pass between the final reduce and the DFS.
        fs.write_dataset(
            dataset_name,
            triples,
            num_shards=config.num_shards,
            layout="columnar",
            task=meta_task,
        )
        result.dataset = dataset_name
        return result
    encoded = [encode_sample(sample_id, label, gf) for sample_id, label, gf in triples]
    if fs is not None:
        fs.write_dataset(
            dataset_name, encoded, num_shards=config.num_shards, task=meta_task
        )
        result.dataset = dataset_name
    else:
        result.samples = encoded
    return result


@dataclass(frozen=True)
class _LabelTable:
    """Picklable label lookup: sorted node ids + aligned label rows.

    The closure variant of this (capturing the whole :class:`NodeTable`)
    cannot ship inside a reducer-owned sink under the process backend;
    this table can, and both sink modes use it so label semantics cannot
    drift between them."""

    ids: np.ndarray
    values: np.ndarray | None

    @classmethod
    def from_nodes(cls, nodes: NodeTable) -> "_LabelTable":
        if nodes.labels is None:
            return cls(np.empty(0, dtype=np.int64), None)
        ids = np.asarray(nodes.ids)
        order = np.argsort(ids, kind="stable")
        return cls(ids[order], np.asarray(nodes.labels)[order])

    def __call__(self, node_id: int):
        if self.values is None:
            return None
        label = self.values[int(np.searchsorted(self.ids, node_id))]
        if np.ndim(label) == 0:
            return int(label)
        return np.asarray(label, dtype=np.float32)


@dataclass(frozen=True)
class _EdgeLabelTable:
    """Label lookup for edge-level tasks: the sample id *is* the row index
    into the target-edge table, so lookup is a direct index."""

    values: np.ndarray

    def __call__(self, edge_index: int) -> int:
        return int(self.values[int(edge_index)])


@dataclass(frozen=True)
class _EdgeFanout:
    """Broadcast table for edge-level tasks: node id -> the target edges it
    terminates, as ``(edge_index, role)`` entries (role 0 = src endpoint,
    role 1 = dst).  Built parent-side from the seeded target table, shipped
    inside the final MergeReducer, so every re-execution fans out the exact
    same records."""

    entries_by_node: dict[int, tuple[tuple[int, int], ...]]

    @classmethod
    def from_targets(cls, edge_table) -> "_EdgeFanout":
        return cls.from_pairs(edge_table.src, edge_table.dst)

    @classmethod
    def from_pairs(cls, src, dst) -> "_EdgeFanout":
        out: dict[int, list[tuple[int, int]]] = {}
        for idx in range(len(src)):
            out.setdefault(int(src[idx]), []).append((idx, 0))
            out.setdefault(int(dst[idx]), []).append((idx, 1))
        return cls({node: tuple(pairs) for node, pairs in out.items()})

    def entries(self, node_id: int) -> tuple[tuple[int, int], ...]:
        return self.entries_by_node.get(int(node_id), ())


@dataclass(frozen=True)
class _TypeTable:
    """Picklable node/edge type lookup for heterogeneous tables.

    Types ride *outside* the MapReduce rounds: the shuffled SubgraphInfo
    records stay exactly as they were (byte-identical spills), and types
    are attached to the flattened GraphFeatures at the storage boundary —
    the sink (reducer path) or the parent storing loop."""

    node_types: dict[int, int] | None
    edge_types: dict[tuple[int, int], int] | None

    @classmethod
    def from_tables(cls, nodes: NodeTable, edges: EdgeTable) -> "_TypeTable | None":
        if nodes.types is None and edges.types is None:
            return None
        node_types = None
        if nodes.types is not None:
            node_types = {
                int(i): int(t) for i, t in zip(nodes.ids.tolist(), nodes.types.tolist())
            }
        edge_types = None
        if edges.types is not None:
            edge_types = {
                (int(s), int(d)): int(t)
                for s, d, t in zip(
                    edges.src.tolist(), edges.dst.tolist(), edges.types.tolist()
                )
            }
        return cls(node_types, edge_types)

    def attach(self, gf: GraphFeature) -> GraphFeature:
        node_type = None
        if self.node_types is not None:
            node_type = np.asarray(
                [self.node_types[int(i)] for i in gf.node_ids.tolist()], dtype=np.int64
            )
        edge_type = None
        if self.edge_types is not None:
            g_src = gf.node_ids[gf.edge_src].tolist()
            g_dst = gf.node_ids[gf.edge_dst].tolist()
            edge_type = np.asarray(
                [self.edge_types[(int(s), int(d))] for s, d in zip(g_src, g_dst)],
                dtype=np.int64,
            )
        return GraphFeature(
            gf.target_ids,
            gf.node_ids,
            gf.x,
            gf.hops,
            gf.edge_src,
            gf.edge_dst,
            gf.edge_feat,
            gf.edge_weight,
            node_type,
            edge_type,
        )


@dataclass(frozen=True)
class SampleShardSink:
    """Reducer-owned columnar sink: the final-round reducer streams its
    output pairs straight into one AGLC shard (``part-<task>``), buffering
    one shard's triples — never the whole dataset.  Returns ``(count,
    n_nodes, n_edges)`` per partition; the parent only ever sees these
    summaries.

    Handles both final-round shapes: node flows yield SubgraphInfos to
    flatten, edge flows yield already-joined GraphFeatures keyed by edge
    index (``labels`` is the matching lookup either way)."""

    directory: str
    labels: _LabelTable | _EdgeLabelTable
    types: _TypeTable | None = None
    task: str | None = None

    def store(self, task_index: int, pairs):
        triples: list[tuple] = []
        n_nodes: list[int] = []
        n_edges: list[int] = []
        for sample_id, (tag, info) in pairs:
            if tag != "final":  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected record tag {tag!r} after final round")
            gf = info if isinstance(info, GraphFeature) else info.to_graph_feature()
            if self.types is not None:
                gf = self.types.attach(gf)
            n_nodes.append(gf.num_nodes)
            n_edges.append(gf.num_edges)
            triples.append((sample_id, self.labels(sample_id), gf))
        path = Path(self.directory) / f"part-{task_index:05d}"
        count = write_sample_shard(path, triples, task=self.task)
        return count, n_nodes, n_edges


def _propagation_key(dst: int, src: int, hubs, fanout, reindex_active):
    if not reindex_active:
        return dst
    if dst in hubs:
        return (dst, 1 + _suffix(src, dst, fanout))
    return (dst, 0)


def _plain_key(node_id: int, reindex_active: bool):
    return (node_id, 0) if reindex_active else node_id


@dataclass(frozen=True)
class PrepareReducer:
    """The Map phase: build S_0, gather out-edges, propagate for round 1."""

    hubs: frozenset[int]
    fanout: int
    reindex_active: bool

    def __call__(self, node_id, values):
        feature = None
        outs: list[OutEdgeInfo] = []
        for value in values:
            tag = value[0]
            if tag == "node":
                feature = value[1]
            else:  # edge row keyed by source
                _, dst, weight, edge_feat = value
                outs.append(OutEdgeInfo(int(dst), weight, edge_feat))
        if feature is None:
            # Edge rows whose source never appears in the node table are
            # rejected by validation; reaching here means validation was
            # disabled — drop the stray records.
            return
        self_info = SubgraphInfo.seed(int(node_id), feature)
        yield _plain_key(int(node_id), self.reindex_active), ("self", self_info)
        if outs:
            yield _plain_key(int(node_id), self.reindex_active), ("out", outs)
            for out in outs:
                key = _propagation_key(
                    out.dst, int(node_id), self.hubs, self.fanout, self.reindex_active
                )
                yield key, ("in", InEdgeInfo(int(node_id), out.weight, out.edge_feat, self_info))


@dataclass(frozen=True)
class PartialReducer:
    """Re-indexed stage (Figure 3): sample/pre-merge hub slices, then
    inverted-index back to the original shuffle key."""

    sampler: SamplingStrategy
    round_index: int
    fanout: int

    def __call__(self, key, values):
        node_id, sfx = key
        if sfx == 0:
            # Non-hub records pass through unchanged (inverted index is a
            # no-op for them).
            for value in values:
                yield node_id, value
            return
        in_edges = [value[1] for value in values]  # only "in" records get suffixes
        sampled = self.sampler.select(in_edges, node_id, salt=sfx)
        yield node_id, ("partial", sampled)


@dataclass(frozen=True)
class MergeReducer:
    """The paper's Reduce: merge self + in-edge info, propagate via
    out-edges (or emit the final neighborhoods on the last round)."""

    sampler: SamplingStrategy
    round_index: int
    total_rounds: int
    hubs: frozenset[int]
    fanout: int
    reindex_active: bool
    target_set: frozenset[int] | None
    edge_fanout: _EdgeFanout | None = None

    @property
    def final_round(self) -> bool:
        return self.round_index == self.total_rounds

    def __call__(self, node_id, values):
        self_info: SubgraphInfo | None = None
        outs: list[OutEdgeInfo] = []
        ins: list[InEdgeInfo] = []
        for value in values:
            tag = value[0]
            if tag == "self":
                self_info = value[1]
            elif tag == "out":
                outs = value[1]
            elif tag == "in":
                ins.append(value[1])
            elif tag == "partial":
                ins.extend(value[1])
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown record tag {tag!r}")
        if self_info is None:
            # A node that only ever appears as an edge destination of
            # dropped strays (validation disabled); nothing to do.
            return

        sampled = self.sampler.select(ins, node_id, salt=0)
        # Copy-on-merge: the previous round's object is shared with every
        # reducer we propagated it to — never mutate it.
        merged = SubgraphInfo(self_info.root, dict(self_info.nodes), dict(self_info.edges))
        for in_edge in sampled:
            merged.absorb_neighbor(in_edge.subgraph, in_edge.weight, in_edge.edge_feat)

        if self.final_round:
            if self.edge_fanout is not None:
                # Edge-level task: the k-hop neighborhood of this endpoint
                # fans out to every target edge it terminates, keyed by
                # edge index for the pairing round.  The merged object is
                # shared across emissions — the pairing round only reads it.
                for edge_index, role in self.edge_fanout.entries(node_id):
                    yield edge_index, ("end", role, merged)
            elif self.target_set is None or node_id in self.target_set:
                yield node_id, ("final", merged)
            return
        yield _plain_key(node_id, self.reindex_active), ("self", merged)
        if outs:
            yield _plain_key(node_id, self.reindex_active), ("out", outs)
            for out in outs:
                key = _propagation_key(
                    out.dst, node_id, self.hubs, self.fanout, self.reindex_active
                )
                yield key, ("in", InEdgeInfo(node_id, out.weight, out.edge_feat, merged))


@dataclass(frozen=True)
class PairReducer:
    """Edge-task pairing round: join the two endpoint neighborhoods of one
    target edge into a single GraphFeature whose targets are the *ordered*
    ``[src, dst]`` pair.

    Receives exactly two ``("end", role, SubgraphInfo)`` records per edge
    index (role 0 = src, role 1 = dst); the merge dedupes overlapping
    neighborhoods exactly like the trainer's batch merge, then the ordered
    target pair is re-imposed on the merged arrays (the merge sorts its
    targets, but edge readout needs to know which endpoint is which)."""

    def __call__(self, edge_index, values):
        ends = sorted(
            ((value[1], value[2]) for value in values), key=lambda pair: pair[0]
        )
        if [role for role, _ in ends] != [0, 1]:
            raise RuntimeError(
                f"target edge {edge_index} expected one record per endpoint "
                f"role, got roles {[role for role, _ in ends]}"
            )
        src_info, dst_info = ends[0][1], ends[1][1]
        merged = merge_graph_features(
            [src_info.to_graph_feature(), dst_info.to_graph_feature()]
        )
        gf = GraphFeature(
            np.asarray([src_info.root, dst_info.root], dtype=np.int64),
            merged.node_ids,
            merged.x,
            merged.hops,
            merged.edge_src,
            merged.edge_dst,
            merged.edge_feat,
            merged.edge_weight,
        )
        yield edge_index, ("final", gf)
