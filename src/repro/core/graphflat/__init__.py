"""GraphFlat: distributed generator of k-hop neighborhoods (§3.2).

The pipeline follows the message-passing scheme exactly: a Map phase that
co-locates each node's self / in-edge / out-edge information, then K Reduce
rounds that (1) merge self + in-edge information into the new self
information — the k-hop neighborhood — and (2) propagate it along out-edges.
Hub nodes are handled by the re-indexing + sampling framework of §3.2.2.
"""

from repro.core.graphflat.records import InEdgeInfo, OutEdgeInfo, SubgraphInfo
from repro.core.graphflat.sampling import (
    SAMPLING_REGISTRY,
    SamplingStrategy,
    TopKSampling,
    UniformSampling,
    WeightedSampling,
    make_sampler,
)
from repro.core.graphflat.pipeline import (
    GraphFlatConfig,
    GraphFlatResult,
    MergeReducer,
    PartialReducer,
    PrepareReducer,
    graph_flat,
)

__all__ = [
    "MergeReducer",
    "PartialReducer",
    "PrepareReducer",
    "SubgraphInfo",
    "InEdgeInfo",
    "OutEdgeInfo",
    "SamplingStrategy",
    "UniformSampling",
    "WeightedSampling",
    "TopKSampling",
    "SAMPLING_REGISTRY",
    "make_sampler",
    "GraphFlatConfig",
    "GraphFlatResult",
    "graph_flat",
]
