"""Edge partitioning — the operator-level optimization of §3.3.2.

"We partition the sparse adjacent matrix into t parts and ensure that the
edges with the same destination node fall in the same partition ... each
partition will be handled with a thread to perform aggregation independently
... there will be no conflicts between any two threads."

The vectorizer guarantees edges are sorted by destination, so a *partition*
is a contiguous edge range cut only at destination boundaries.  Each
partition is reduced with a single ``np.add.reduceat`` segment sum (one
C-level pass), instead of the generic unbuffered ``np.add.at`` scatter that
AGL_base uses — this is where the Table 4 speedup comes from.  Partitions
can additionally run on a thread pool.

The aggregator is installed on an :class:`~repro.nn.gnn.block.EdgeBlock` as
its ``segment_sum`` forward backend; backward passes are unaffected (the
gradient of a segment sum is a gather), so this is purely a speed choice —
tests assert bit-level agreement with the scatter backend.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.nn.gnn.block import EdgeBlock

__all__ = [
    "EdgePartitionAggregator",
    "PartitionedAggregatorFactory",
    "partitioned_backend_factory",
]


class EdgePartitionAggregator:
    """Destination-partitioned segment-sum backend bound to one edge layout.

    Parameters
    ----------
    dst:
        destination index of every edge, sorted ascending (checked).
    num_partitions:
        target number of partitions ``t``; actual count can be lower when
        there are fewer destination rows than partitions.
    threads:
        size of the shared thread pool; 1 (default) keeps execution serial —
        the segment-sum rewrite alone is the bulk of the win on CPython.
    """

    def __init__(self, dst: np.ndarray, num_partitions: int = 4, threads: int = 1):
        dst = np.asarray(dst, dtype=np.int64)
        if len(dst) and np.any(np.diff(dst) < 0):
            raise ValueError("edge partitioning requires destination-sorted edges")
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.dst = dst
        self.num_partitions = num_partitions
        self.threads = max(1, threads)
        self._pool = ThreadPoolExecutor(max_workers=self.threads) if self.threads > 1 else None

        m = len(dst)
        if m == 0:
            self._parts: list[tuple[int, int, np.ndarray, np.ndarray]] = []
            return
        # Row boundaries: absolute edge indices where a new destination starts.
        row_starts = np.concatenate([[0], np.flatnonzero(np.diff(dst)) + 1])
        row_dst = dst[row_starts]
        n_rows = len(row_starts)
        t = min(num_partitions, n_rows)
        # Cut at row boundaries closest to an even edge split.
        ideal = (np.arange(1, t) * m) // t
        cut_rows = np.unique(np.searchsorted(row_starts, ideal, side="right"))
        bounds = np.concatenate([[0], cut_rows, [n_rows]])
        self._parts = []
        for lo_row, hi_row in zip(bounds[:-1], bounds[1:]):
            if lo_row == hi_row:
                continue
            edge_lo = int(row_starts[lo_row])
            edge_hi = int(row_starts[hi_row]) if hi_row < n_rows else m
            rel_starts = row_starts[lo_row:hi_row] - edge_lo
            self._parts.append((edge_lo, edge_hi, rel_starts, row_dst[lo_row:hi_row]))

    @property
    def num_edges(self) -> int:
        return len(self.dst)

    def partition_sizes(self) -> list[int]:
        """Edges per partition — load-balance evidence for the ablation."""
        return [hi - lo for lo, hi, _, _ in self._parts]

    # ------------------------------------------------------------- backend
    def __call__(
        self, values: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        if len(segment_ids) != len(self.dst):
            raise ValueError(
                f"aggregator bound to {len(self.dst)} edges, got {len(segment_ids)}; "
                "rebind the aggregator when the edge layout changes"
            )
        out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        if not self._parts:
            return out

        def reduce_part(part):
            edge_lo, edge_hi, rel_starts, rows = part
            sums = np.add.reduceat(values[edge_lo:edge_hi], rel_starts, axis=0)
            out[rows] = sums  # conflict-free: partitions never share a row

        if self._pool is not None and len(self._parts) > 1:
            list(self._pool.map(reduce_part, self._parts))
        else:
            for part in self._parts:
                reduce_part(part)
        return out

    # ------------------------------------------------------------- rebind
    def rebind(self, block: EdgeBlock) -> "EdgePartitionAggregator":
        """New aggregator for a block with a different edge layout (e.g. the
        self-loop-augmented block GAT builds)."""
        return EdgePartitionAggregator(block.dst, self.num_partitions, self.threads)

    # ----------------------------------------------------------- pickling
    # Aggregators ride inside prepared batches across the process-pool
    # prefetch boundary; the thread pool is per-process state, rebuilt on
    # the receiving side.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.threads > 1:
            self._pool = ThreadPoolExecutor(max_workers=self.threads)


@dataclass(frozen=True)
class PartitionedAggregatorFactory:
    """Picklable factory suitable for ``vectorize_batch(aggregator_factory=
    ...)`` — a top-level dataclass (not a closure) so trainer configs using
    edge partitioning work under the ``processes`` prefetch backend."""

    num_partitions: int = 4
    threads: int = 1

    def __call__(self, block: EdgeBlock) -> EdgePartitionAggregator:
        return EdgePartitionAggregator(block.dst, self.num_partitions, self.threads)


def partitioned_backend_factory(
    num_partitions: int = 4, threads: int = 1
) -> PartitionedAggregatorFactory:
    """Factory suitable for ``vectorize_batch(aggregator_factory=...)``."""
    return PartitionedAggregatorFactory(num_partitions, threads)
