"""Graph pruning — the graph-level optimization of §3.3.2.

Equation 3 replaces the batch adjacency ``A_B`` with per-layer pruned
matrices ``A^(k)_B``.  The insight: after layer ``k`` of a K-layer model,
only embeddings of nodes within ``K - k - 1`` hops of a target are ever read
again, so layer ``k`` need not aggregate into any farther destination.

With ``hops[u] = d(V_B, u)`` (computed by GraphFlat and min-merged during
batching — exactly the paper's ``d(V_B, u) = min_v d(v, u)``), layer ``k``
keeps edge ``u -> w`` iff ``hops[w] <= K - k - 1``:

* layer 0 keeps every edge of a K-hop neighborhood (their destinations are
  all within ``K - 1`` hops) — pruning is a no-op for 1-layer models, as
  Table 4 observes;
* the last layer keeps only edges pointing directly at targets.

Pruning happens once per batch at vectorization time, so under the training
pipeline it costs "nearly no extra time" (§3.3.2).
"""

from __future__ import annotations

import numpy as np

from repro.nn.gnn.block import EdgeBlock

__all__ = ["layer_edge_masks", "prune_blocks"]


def layer_edge_masks(
    edge_dst: np.ndarray, hops: np.ndarray, num_layers: int
) -> list[np.ndarray]:
    """Boolean keep-mask per layer for edges with destinations ``edge_dst``.

    ``hops[i]`` is the distance of local node ``i`` to the nearest batch
    target.  Masks are monotone: ``mask[k+1] ⊆ mask[k]``.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    dst_hops = hops[edge_dst]
    return [dst_hops <= num_layers - k - 1 for k in range(num_layers)]


def prune_blocks(
    base: EdgeBlock,
    hops: np.ndarray,
    num_layers: int,
    aggregator_factory=None,
) -> list[EdgeBlock]:
    """Build the per-layer pruned ``EdgeBlock`` list for Equation 3.

    Boolean masking preserves the destination-sorted order, so each pruned
    block remains a valid partitioning target; ``aggregator_factory`` (if
    given) installs a layout-bound aggregation backend on every block.
    """
    masks = layer_edge_masks(base.dst, hops, num_layers)
    blocks: list[EdgeBlock] = []
    for mask in masks:
        if bool(mask.all()):
            # Layer keeps every edge — share the base block (and its
            # aggregator / self-loop caches) instead of copying.
            if aggregator_factory is not None and base.aggregator is None:
                base.aggregator = aggregator_factory(base)
            blocks.append(base)
            continue
        block = EdgeBlock(
            base.src[mask],
            base.dst[mask],
            base.num_nodes,
            base.weight[mask],
            None if base.edge_feat is None else base.edge_feat[mask],
        )
        if aggregator_factory is not None:
            block.aggregator = aggregator_factory(block)
        blocks.append(block)
    return blocks
