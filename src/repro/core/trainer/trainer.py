"""GraphTrainer — the training loop of §3.3.

Thanks to GraphFlat's information-complete neighborhoods, "the training
workers become independent of each other ... the training of a GNN model
becomes similar to the training of a conventional machine learning model".
The loop below is therefore an ordinary mini-batch loop; all graph-specific
machinery lives in the vectorizer and the optimization strategies, enabled
by three flags that Table 4 sweeps:

* ``pipeline``       — overlap preprocessing with model computation;
* ``pruning``        — per-layer adjacency ``A^(k)_B`` (Equation 3);
* ``edge_partition`` — conflict-free partitioned aggregation.

The trainer runs *standalone* (local optimizer; Tables 3/4) or against a
parameter-server client (``ps_client``): pull fresh parameters before each
batch, push gradients after backward, server applies the update (§3.3's
worker role; used by the Figure 7/8 experiments).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer.dataset import SampleSource, as_sample_source
from repro.core.trainer.partition import partitioned_backend_factory
from repro.core.trainer.pipeline import PREFETCH_TRANSPORTS, BatchPipeline
from repro.core.trainer.vectorize import TrainSample, decode_samples
from repro.mapreduce.backends import BACKEND_REGISTRY, make_backend
from repro.metrics import accuracy, hits_at_k, micro_f1, roc_auc
from repro.nn import Adam, SGD, bce_with_logits_loss, no_grad, ops, softmax_cross_entropy
from repro.nn.gnn.base import GNNModel
from repro.tasks import EDGE_TASKS, make_task
from repro.utils.rng import new_rng
from repro.utils.timer import TimerRegistry

__all__ = ["TrainerConfig", "GraphTrainer"]

_TASKS = ("multiclass", "multilabel", "binary") + EDGE_TASKS


@dataclass
class TrainerConfig:
    """Training hyper-parameters + the three optimization switches."""

    batch_size: int = 32
    epochs: int = 10
    lr: float = 0.01
    optimizer: str = "adam"
    weight_decay: float = 0.0
    task: str = "multiclass"
    pruning: bool = True
    edge_partition: bool = True
    num_partitions: int = 4
    partition_threads: int = 1
    pipeline: bool = True
    prefetch: int = 4
    prefetch_backend: str = "threads"
    """Preprocessing-pool backend (MapReduce backend registry name:
    ``serial`` / ``threads`` / ``processes``).  ``threads`` with one worker
    is the classic single prefetch thread; ``processes`` shards minibatch
    preprocessing across cores while the main process trains."""
    prefetch_workers: int = 1
    """Worker count for the preprocessing pool."""
    prefetch_transport: str = "auto"
    """How prepared batches return from pool workers (see
    ``repro.core.trainer.pipeline.PREFETCH_TRANSPORTS``): ``auto`` uses
    shared-memory slabs whenever the pool crosses a process boundary,
    ``shm``/``pickle`` force a path."""
    prefetch_slab_bytes: int = 64 << 20
    """Per-slot slab capacity for the shm transport; batches that outgrow
    it fall back to the pickle pipe for that batch only."""
    shuffle: bool = True
    seed: int = 0
    early_stopping_patience: int | None = None
    """Stop when the validation metric has not improved by ``min_delta``
    for this many consecutive epochs (needs ``val_samples`` in ``fit``)."""
    min_delta: float = 0.0

    def __post_init__(self):
        if self.task not in _TASKS:
            raise ValueError(f"task must be one of {_TASKS}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if self.batch_size < 1 or self.epochs < 0:
            raise ValueError("batch_size >= 1 and epochs >= 0 required")
        if self.early_stopping_patience is not None and self.early_stopping_patience < 1:
            raise ValueError("early_stopping_patience must be >= 1")
        if self.prefetch_backend not in BACKEND_REGISTRY:
            raise ValueError(
                f"prefetch_backend must be one of {sorted(BACKEND_REGISTRY)}"
            )
        if self.prefetch_workers < 1:
            raise ValueError("prefetch_workers must be >= 1")
        if self.prefetch_transport not in PREFETCH_TRANSPORTS:
            raise ValueError(
                f"prefetch_transport must be one of {PREFETCH_TRANSPORTS}"
            )
        if self.prefetch_transport == "shm" and not BACKEND_REGISTRY[
            self.prefetch_backend
        ].needs_pickling:
            raise ValueError(
                "prefetch_transport='shm' requires a pickling prefetch_backend "
                "(e.g. 'processes')"
            )
        if self.prefetch_slab_bytes < 1:
            raise ValueError("prefetch_slab_bytes must be >= 1")


class GraphTrainer:
    """Train a :class:`GNNModel` over GraphFlat samples."""

    def __init__(self, model: GNNModel, config: TrainerConfig, ps_client=None):
        self.model = model
        self.config = config
        self.ps = ps_client
        self.timers = TimerRegistry()
        self._rng = new_rng(config.seed)
        # Edge-level task plugin (link prediction / edge classification);
        # None keeps every node-classification code path exactly as it was.
        self._task_plugin = make_task(config.task) if config.task in EDGE_TASKS else None
        self._aggregator_factory = (
            partitioned_backend_factory(config.num_partitions, config.partition_threads)
            if config.edge_partition
            else None
        )
        if ps_client is None:
            cls = Adam if config.optimizer == "adam" else SGD
            self.optimizer = cls(
                model.parameters(), lr=config.lr, weight_decay=config.weight_decay
            )
        else:
            self.optimizer = None
        self.history: list[dict] = []
        self._prefetch_pool = None

    # ----------------------------------------------------------------- data
    @staticmethod
    def _as_samples(data) -> list[TrainSample]:
        data = list(data)
        if data and isinstance(data[0], (bytes, bytearray)):
            return decode_samples(data)
        return data

    @staticmethod
    def _as_source(data) -> SampleSource:
        """Accept wire bytes, decoded samples, or any :class:`SampleSource`
        (e.g. an mmap'd columnar dataset)."""
        return as_sample_source(data)

    def _make_batches(self, source: SampleSource, shuffle: bool) -> list[tuple]:
        """``(batch, index_array)`` pairs; the batch object is whatever the
        source hands the pipeline (sample lists, or columnar batch refs)."""
        order = np.arange(len(source))
        if shuffle:
            self._rng.shuffle(order)
        bs = self.config.batch_size
        return [
            (source.batch(order[lo : lo + bs]), order[lo : lo + bs])
            for lo in range(0, len(order), bs)
        ]

    def _prefetch_backend(self):
        """Shared preprocessing pool, built once and reused across epochs
        (a process pool would otherwise respawn workers every epoch)."""
        if self._prefetch_pool is None:
            self._prefetch_pool = make_backend(
                self.config.prefetch_backend, self.config.prefetch_workers
            )
        return self._prefetch_pool

    def _pipeline(self, batches: list[tuple], train: bool) -> BatchPipeline:
        return BatchPipeline(
            [batch for batch, _ in batches],
            num_layers=self.model.num_layers,
            pruning=self.config.pruning,
            aggregator_factory=self._aggregator_factory,
            enabled=self.config.pipeline,
            prefetch=self.config.prefetch,
            timers=self.timers,
            backend=self._prefetch_backend(),
            workers=self.config.prefetch_workers,
            transport=self.config.prefetch_transport,
            slab_bytes=self.config.prefetch_slab_bytes,
            edge_level=self._task_plugin is not None,
        )

    # -------------------------------------------------------------- forward
    def _forward(self, batch):
        """Batch logits: the model's target-row head for node-level tasks,
        the task plugin's pair readout for edge-level ones."""
        if self._task_plugin is None:
            return self.model(batch)
        h = self.model.embed(batch)
        h_targets = ops.gather_rows(h, batch.target_index)
        return self._task_plugin.readout(h_targets, batch.pair_index, self.model.head)

    # ----------------------------------------------------------------- loss
    def _loss(self, logits, labels):
        if self._task_plugin is not None:
            return self._task_plugin.loss(logits, labels)
        if self.config.task == "multilabel":
            return bce_with_logits_loss(logits, labels)
        return softmax_cross_entropy(logits, labels)

    def _scores(self, logits: np.ndarray) -> np.ndarray:
        """Per-task score used by the evaluation metric."""
        if self._task_plugin is not None:
            return self._task_plugin.scores(logits)
        if self.config.task == "binary":
            return logits[:, 1] - logits[:, 0]
        return logits

    # ------------------------------------------------------------- training
    def train_epoch(self, samples) -> float:
        """One pass over the data; returns the mean batch loss."""
        source = self._as_source(samples)
        if not len(source):
            raise ValueError("no training samples")
        self.model.train()
        batches = self._make_batches(source, self.config.shuffle)
        losses = []
        for batch, labels in self._pipeline(batches, train=True):
            if labels is None:
                raise ValueError("training batch has no labels")
            with self.timers.timing("compute"):
                if self.ps is not None:
                    # Version-keyed pull cache: the client returns None when
                    # no server update landed since the last pull, so the
                    # state-dict copy is skipped entirely on unchanged steps.
                    state = self.ps.pull()
                    if state is not None:
                        self.model.load_state_dict(state)
                self.model.zero_grad()
                logits = self._forward(batch)
                loss = self._loss(logits, labels)
                loss.backward()
                if self.ps is not None:
                    self.ps.push(
                        {
                            name: p.grad
                            for name, p in self.model.named_parameters()
                            if p.grad is not None
                        }
                    )
                else:
                    self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses))

    def fit(self, train_samples, val_samples=None, metric: str | None = None) -> list[dict]:
        """Run up to ``config.epochs`` epochs; returns per-epoch history
        dicts (loss, wall time, optional validation metric).  With
        ``early_stopping_patience`` set and validation data provided, stops
        once the metric plateaus and restores the best parameters seen."""
        train_samples = self._as_source(train_samples)
        val = None if val_samples is None else self._as_source(val_samples)
        patience = self.config.early_stopping_patience
        if patience is not None and val is None:
            raise ValueError("early stopping requires val_samples")
        best_metric, best_state, stale = -np.inf, None, 0
        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            loss = self.train_epoch(train_samples)
            entry = {"epoch": epoch, "loss": loss, "seconds": time.perf_counter() - start}
            if val is not None:
                entry["val_metric"] = self.evaluate(val, metric)
            self.history.append(entry)
            if patience is not None:
                if entry["val_metric"] > best_metric + self.config.min_delta:
                    best_metric = entry["val_metric"]
                    best_state = self.model.state_dict()
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        entry["early_stopped"] = True
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self.history

    # --------------------------------------------------------- checkpoints
    def save_checkpoint(self, path) -> None:
        """Persist model + optimizer state + data-order RNG so training can
        resume exactly where it stopped (verified bit-exact in tests)."""
        import pickle

        name_of = {id(p): n for n, p in self.model.named_parameters()}
        optimizer_state: dict = {}
        if isinstance(self.optimizer, Adam):
            for pid, st in self.optimizer._state.items():
                optimizer_state[name_of[pid]] = (st.m.copy(), st.v.copy(), st.step)
        elif self.optimizer is not None:  # SGD
            for pid, vel in self.optimizer._velocity.items():
                optimizer_state[name_of[pid]] = None if vel is None else vel.copy()
        payload = {
            "model": self.model.state_dict(),
            "optimizer": optimizer_state,
            "optimizer_kind": self.config.optimizer,
            "history": list(self.history),
            "rng_state": self._rng.bit_generator.state,
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    def load_checkpoint(self, path) -> None:
        """Inverse of :meth:`save_checkpoint` (model must match in shape)."""
        import pickle

        from repro.nn.optim import AdamState

        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if payload["optimizer_kind"] != self.config.optimizer:
            raise ValueError(
                f"checkpoint was written by a {payload['optimizer_kind']!r} "
                f"optimizer, trainer uses {self.config.optimizer!r}"
            )
        self.model.load_state_dict(payload["model"])
        if self.optimizer is not None:
            params = dict(self.model.named_parameters())
            if self.config.optimizer == "adam":
                self.optimizer._state = {
                    id(params[name]): AdamState(m.copy(), v.copy(), step)
                    for name, (m, v, step) in payload["optimizer"].items()
                }
            else:
                self.optimizer._velocity = {
                    id(params[name]): None if vel is None else vel.copy()
                    for name, vel in payload["optimizer"].items()
                }
        self.history = list(payload["history"])
        self._rng.bit_generator.state = payload["rng_state"]

    # ------------------------------------------------------------ inference
    def predict(self, samples) -> tuple[np.ndarray, np.ndarray]:
        """``(target_ids, logits)`` over all samples, batched, no autograd."""
        source = self._as_source(samples)
        self.model.eval()
        outs = []
        batches = self._make_batches(source, shuffle=False)
        with no_grad():
            for batch, _ in self._pipeline(batches, train=False):
                logits = self._forward(batch)
                outs.append(logits.data.copy())
        ids = source.ids()
        if self._task_plugin is not None:
            # Edge-level logit rows follow batch-sample order (one row per
            # target edge), so ids pass through unchanged.
            target_ids = np.concatenate(
                [ids[indices] for _, indices in batches]
            ).astype(np.int64)
        else:
            # Logit rows follow each batch's merged (sorted, deduped)
            # target ids.
            target_ids = np.concatenate(
                [np.unique(ids[indices]) for _, indices in batches]
            ).astype(np.int64)
        return target_ids, np.concatenate(outs, axis=0)

    def evaluate(self, samples, metric: str | None = None) -> float:
        """Metric over samples: accuracy (multiclass), micro-F1
        (multilabel), ROC-AUC (binary / link prediction) or the task
        plugin's default, unless overridden."""
        source = self._as_source(samples)
        if metric is None:
            if self._task_plugin is not None:
                metric = self._task_plugin.default_metric
            else:
                metric = {
                    "multiclass": "accuracy",
                    "multilabel": "micro_f1",
                    "binary": "auc",
                }[self.config.task]
        label_by_id = source.labels_by_id()
        target_ids, logits = self.predict(source)
        labels = [label_by_id[int(t)] for t in target_ids]
        if metric == "accuracy":
            return accuracy(logits, np.asarray(labels, dtype=np.int64))
        if metric == "micro_f1":
            return micro_f1(logits, np.stack(labels))
        if metric == "auc":
            return roc_auc(self._scores(logits), np.asarray(labels, dtype=np.int64))
        if metric.startswith("hits@"):
            k = int(metric.split("@", 1)[1])
            return hits_at_k(self._scores(logits), np.asarray(labels, dtype=np.int64), k)
        raise ValueError(f"unknown metric {metric!r}")
