"""GraphTrainer: distributed graph training framework (§3.3).

Components map one-to-one onto the paper's Figure 4:

* :mod:`vectorize` — merge a batch of GraphFeatures and build the three
  matrices ``A_B`` (destination-sorted sparse adjacency), ``X_B``, ``E_B``;
* :mod:`dataset` — layout-aware sample sources (in-memory lists, or
  zero-copy slicing over mmap'd columnar DFS shards);
* :mod:`pruning` — per-layer pruned adjacencies ``A^(k)_B`` (graph-level
  optimization);
* :mod:`partition` — conflict-free edge partitioning for parallel
  aggregation (edge/operator-level optimization);
* :mod:`pipeline` — the two-stage prefetch pipeline overlapping
  preprocessing with model computation (batch-level optimization);
* :mod:`trainer` — the training loop, standalone or against parameter
  servers.
"""

from repro.core.trainer.vectorize import TrainSample, decode_samples, vectorize_batch
from repro.core.trainer.dataset import (
    ColumnarDataset,
    ColumnarSlice,
    MemorySamples,
    SampleSource,
    as_sample_source,
    open_sample_source,
)
from repro.core.trainer.pruning import layer_edge_masks, prune_blocks
from repro.core.trainer.partition import EdgePartitionAggregator, partitioned_backend_factory
from repro.core.trainer.pipeline import BatchPipeline, BatchPreparer
from repro.core.trainer.trainer import GraphTrainer, TrainerConfig

__all__ = [
    "TrainSample",
    "decode_samples",
    "vectorize_batch",
    "ColumnarDataset",
    "ColumnarSlice",
    "MemorySamples",
    "SampleSource",
    "as_sample_source",
    "open_sample_source",
    "layer_edge_masks",
    "prune_blocks",
    "EdgePartitionAggregator",
    "partitioned_backend_factory",
    "BatchPipeline",
    "BatchPreparer",
    "GraphTrainer",
    "TrainerConfig",
]
