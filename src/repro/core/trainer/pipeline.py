"""The training pipeline — batch-level optimization of §3.3.2.

"We build a pipeline that consists of two stages: preprocessing stage
including data reading and subgraph vectorization, and model computation
stage.  The two stages operate in a parallel manner."

Preprocessing (decode + vectorize) runs ahead of the training loop and
feeds a bounded queue the caller drains.  The preprocessing stage itself
is pluggable: it reuses the MapReduce backend registry
(``serial``/``threads``/``processes``), so with ``backend="processes"``
minibatch preprocessing shards across cores while the main process trains
— the GIL no longer caps the storage layer.  Batches may be lists of
wire-format bytes, decoded :class:`TrainSample` objects, or picklable refs
with a ``load_samples()`` method (columnar shard slices — see
``repro.core.trainer.dataset``), which is what keeps the process backend's
per-batch IPC to a few ints each way plus the prepared tensors back.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.trainer.vectorize import TrainSample, decode_samples, vectorize_batch
from repro.mapreduce.backends import (
    BACKEND_REGISTRY,
    Backend,
    WorkerCrashError,
    make_backend,
)
from repro.nn.gnn.block import BatchInputs
from repro.utils.timer import TimerRegistry

__all__ = ["BatchPipeline", "BatchPreparer", "PREFETCH_TRANSPORTS"]

_SENTINEL = object()

PREFETCH_TRANSPORTS = ("auto", "shm", "pickle")
"""How prepared batches travel from pool workers back to the trainer.

``pickle`` is the classic path: the whole ``(inputs, labels)`` tuple rides
the result pipe.  ``shm`` parks the numpy payload in a parent-owned
per-slot :class:`~repro.ps.shm.BatchSlab` and pickles only a tiny locator
(protocol-5 out-of-band buffers), so the pipe carries kilobytes instead of
the vectorized batch.  ``auto`` picks ``shm`` exactly when batches cross a
process boundary (``backend.needs_pickling``) and ``pickle`` otherwise —
same-process backends already hand over bare references."""


@dataclass(frozen=True)
class BatchPreparer:
    """Picklable preprocessing operator: one batch in, model inputs out.

    Top-level dataclass (not a closure) so the ``processes`` prefetch
    backend can ship it to worker processes, mirroring the GraphFlat
    operator refactor.
    """

    num_layers: int
    pruning: bool = True
    aggregator_factory: object | None = None
    edge_level: bool = False

    def resolve(self, batch) -> list[TrainSample]:
        """Materialise a batch: bytes are decoded, refs are loaded."""
        if hasattr(batch, "load_samples"):
            return batch.load_samples()
        if batch and isinstance(batch[0], (bytes, bytearray)):
            return decode_samples(batch)
        return batch

    def __call__(self, batch) -> tuple[BatchInputs, np.ndarray | None, float]:
        """Returns ``(inputs, labels, preprocess_seconds)`` — the elapsed
        time rides along because pool workers cannot reach the caller's
        :class:`TimerRegistry`."""
        start = time.perf_counter()
        inputs, labels = vectorize_batch(
            self.resolve(batch),
            self.num_layers,
            pruning=self.pruning,
            aggregator_factory=self.aggregator_factory,
            edge_level=self.edge_level,
        )
        return inputs, labels, time.perf_counter() - start


@dataclass(frozen=True)
class _SlabPreparer:
    """Pool-worker wrapper that parks the prepared batch in a shm slab.

    One instance per in-flight window slot, each bound to its own slab —
    the parent drains slot *i* before reissuing it, so overwriting is safe.
    Falls back to shipping the tuple in-band (``ref is None``) when the
    batch outgrows the slab."""

    prepare: BatchPreparer
    slab: str
    capacity: int

    def __call__(self, batch):
        inputs, labels, seconds = self.prepare(batch)
        start = time.perf_counter()
        from repro.ps.shm import slab_dump  # lazy: repro.ps imports the trainer

        ref = slab_dump((inputs, labels), self.slab, self.capacity)
        seconds += time.perf_counter() - start
        if ref is None:
            return inputs, labels, seconds
        return ref, None, seconds


class BatchPipeline:
    """Iterate ``(BatchInputs, labels)`` over batches of samples.

    Parameters
    ----------
    batches:
        iterable of batches; each batch is a list of wire-format ``bytes``
        records, already-decoded :class:`TrainSample` objects, or a batch
        ref with ``load_samples()`` (columnar shard slice).
    num_layers / pruning / aggregator_factory:
        forwarded to :func:`vectorize_batch`.
    enabled:
        ``False`` degrades to strictly sequential preprocessing (AGL_base
        without the pipeline strategy — the ablation baseline).
    prefetch:
        queue depth; how many vectorized batches may sit ready.
    backend / workers:
        preprocessing pool: a backend name from the MapReduce registry
        (``serial``/``threads``/``processes``) and its worker count.  The
        default (``threads``, 1) is the classic single prefetch thread;
        ``processes`` with N workers shards preprocessing across cores.
        ``serial`` runs inline, like ``enabled=False``.  Passing a
        :class:`~repro.mapreduce.backends.Backend` *instance* borrows it
        (the caller keeps ownership — how GraphTrainer reuses one process
        pool across epochs instead of respawning workers every epoch).
    timers:
        optional :class:`TimerRegistry`; preprocessing time lands in
        ``"preprocess"`` (regardless of which thread or process spent it).
    transport / slab_bytes:
        result-path transport, one of :data:`PREFETCH_TRANSPORTS`, and the
        per-slot slab capacity for the ``shm`` path.  ``shm_batches`` /
        ``inband_batches`` count which path each pool batch actually took.
    """

    def __init__(
        self,
        batches: Iterable,
        num_layers: int,
        pruning: bool = True,
        aggregator_factory=None,
        enabled: bool = True,
        prefetch: int = 4,
        timers: TimerRegistry | None = None,
        backend: str | Backend = "threads",
        workers: int = 1,
        transport: str = "auto",
        slab_bytes: int = 64 << 20,
        edge_level: bool = False,
    ):
        if prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if transport not in PREFETCH_TRANSPORTS:
            raise ValueError(
                f"unknown prefetch transport {transport!r}; known: {PREFETCH_TRANSPORTS}"
            )
        if slab_bytes < 1:
            raise ValueError("slab_bytes must be >= 1")
        if isinstance(backend, Backend):
            self._backend_obj: Backend | None = backend
            backend = backend.name
        else:
            self._backend_obj = None
        if backend not in BACKEND_REGISTRY:
            raise ValueError(
                f"unknown prefetch backend {backend!r}; known: {sorted(BACKEND_REGISTRY)}"
            )
        if transport == "shm" and not BACKEND_REGISTRY[backend].needs_pickling:
            raise ValueError(
                f"transport='shm' requires a pickling backend; {backend!r} hands over "
                "in-process references already"
            )
        self._batches = batches
        self._prepare = BatchPreparer(num_layers, pruning, aggregator_factory, edge_level)
        self._enabled = enabled
        self._prefetch = prefetch
        self._backend = backend
        self._workers = workers
        self._transport = transport
        self._slab_bytes = slab_bytes
        self._timers = timers if timers is not None else TimerRegistry()
        self.shm_batches = 0
        self.inband_batches = 0

    # ----------------------------------------------------------- internals
    def _record(self, seconds: float) -> None:
        timer = self._timers["preprocess"]
        timer.total += seconds
        timer.count += 1

    def _iter_sequential(self) -> Iterator[tuple[BatchInputs, np.ndarray | None]]:
        for batch in self._batches:
            with self._timers.timing("preprocess"):
                inputs, labels, _ = self._prepare(batch)
            yield inputs, labels

    def _iter_single_thread(self) -> Iterator[tuple[BatchInputs, np.ndarray | None]]:
        """The classic two-stage pipeline: one background prefetch thread.

        Timing runs through ``timers.timing`` on the producer thread so
        interval records (used to *prove* stage overlap in the ablation
        benchmark) are preserved."""
        out: queue.Queue = queue.Queue(maxsize=self._prefetch)
        error: list[BaseException] = []

        def producer():
            try:
                for batch in self._batches:
                    with self._timers.timing("preprocess"):
                        inputs, labels, _ = self._prepare(batch)
                    out.put((inputs, labels))
            except BaseException as exc:  # surface in the consumer thread
                error.append(exc)
            finally:
                out.put(_SENTINEL)

        yield from self._drain(producer, out, error)

    def _iter_pool(self) -> Iterator[tuple[BatchInputs, np.ndarray | None]]:
        """Worker-pool prefetch: the producer thread walks the batch list in
        windows of ``workers`` tasks, executes each window on the registry
        backend, and feeds results into the bounded queue in batch order.

        Windowed ``execute`` calls are the registry's phase contract, so a
        window boundary is a mini-barrier (idle workers wait on the
        window's straggler); the bounded queue keeps the *consumer* fed
        across windows, which is the overlap that matters here — batch
        costs are near-uniform, so straggler slack stays small."""
        out: queue.Queue = queue.Queue(maxsize=self._prefetch)
        error: list[BaseException] = []

        def plain_retrier(task_id, call):
            # Preprocessing is pure, so a crashed pool worker is retried
            # MapReduce-style (bounded) instead of aborting the epoch.
            for attempt in range(3):
                try:
                    return call()
                except WorkerCrashError:
                    if attempt == 2:
                        raise

        def producer():
            owns = self._backend_obj is None
            backend = self._backend_obj or make_backend(self._backend, self._workers)
            use_shm = self._transport == "shm" or (
                self._transport == "auto" and backend.needs_pickling
            )
            slabs = []
            try:
                if use_shm:
                    # Lazy: repro.ps imports the trainer package (circular).
                    from repro.ps.shm import BatchSlab, ShmBatchRef, slab_load

                    # One slab per window slot, reused every window.  Safe
                    # because each window's results are fully drained (and
                    # slab-loaded into private memory) before the next
                    # ``execute`` can overwrite a slot.
                    slabs = [BatchSlab(self._slab_bytes) for _ in range(self._workers)]
                    by_name = {slab.name: slab for slab in slabs}
                    preparers = [
                        _SlabPreparer(self._prepare, slab.name, slab.capacity)
                        for slab in slabs
                    ]
                window: list = []
                batch_iter = iter(self._batches)
                exhausted = False
                while not exhausted:
                    window.clear()
                    for batch in batch_iter:
                        window.append(batch)
                        if len(window) >= self._workers:
                            break
                    else:
                        exhausted = True
                    if not window:
                        break
                    tasks = [
                        (
                            f"prefetch-{i}",
                            preparers[i] if use_shm else self._prepare,
                            (batch,),
                        )
                        for i, batch in enumerate(window)
                    ]
                    for first, labels, seconds in backend.execute(tasks, plain_retrier):
                        self._record(seconds)
                        if use_shm and isinstance(first, ShmBatchRef):
                            inputs, labels = slab_load(first, by_name[first.slab].buf)
                            self.shm_batches += 1
                        else:
                            inputs = first
                            if use_shm:
                                self.inband_batches += 1
                        out.put((inputs, labels))
            except BaseException as exc:
                error.append(exc)
            finally:
                for slab in slabs:
                    slab.close()
                if owns:
                    backend.close()
                out.put(_SENTINEL)

        yield from self._drain(producer, out, error)

    def _drain(self, producer, out: queue.Queue, error: list):
        worker = threading.Thread(target=producer, name="agl-preprocess", daemon=True)
        worker.start()
        try:
            while True:
                item = out.get()
                if item is _SENTINEL:
                    break
                yield item
        finally:
            # Drain so the producer is never blocked on a full queue forever
            # when the consumer stops early (e.g. test breaks out of loop).
            while worker.is_alive():
                try:
                    out.get_nowait()
                except queue.Empty:
                    worker.join(timeout=0.05)
        if error:
            raise error[0]

    def __iter__(self) -> Iterator[tuple[BatchInputs, np.ndarray | None]]:
        if not self._enabled or self._backend == "serial":
            return self._iter_sequential()
        if self._workers == 1 and self._backend == "threads":
            return self._iter_single_thread()
        return self._iter_pool()
