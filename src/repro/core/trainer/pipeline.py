"""The training pipeline — batch-level optimization of §3.3.2.

"We build a pipeline that consists of two stages: preprocessing stage
including data reading and subgraph vectorization, and model computation
stage.  The two stages operate in a parallel manner."

A background thread decodes + vectorizes upcoming batches into a bounded
queue while the caller trains on the current one.  Because preprocessing is
cheaper than model computation, steady-state epoch time collapses to the
compute time alone — the claim bench_ablation_pipeline measures.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.trainer.vectorize import TrainSample, decode_samples, vectorize_batch
from repro.nn.gnn.block import BatchInputs
from repro.utils.timer import TimerRegistry

__all__ = ["BatchPipeline"]

_SENTINEL = object()


class BatchPipeline:
    """Iterate ``(BatchInputs, labels)`` over batches of samples.

    Parameters
    ----------
    batches:
        iterable of batches; each batch is a list of wire-format ``bytes``
        records or already-decoded :class:`TrainSample` objects.
    num_layers / pruning / aggregator_factory:
        forwarded to :func:`vectorize_batch`.
    enabled:
        ``False`` degrades to strictly sequential preprocessing (AGL_base
        without the pipeline strategy — the ablation baseline).
    prefetch:
        queue depth; how many vectorized batches may sit ready.
    timers:
        optional :class:`TimerRegistry`; preprocessing time lands in
        ``"preprocess"`` (regardless of which thread spent it).
    """

    def __init__(
        self,
        batches: Iterable[list],
        num_layers: int,
        pruning: bool = True,
        aggregator_factory=None,
        enabled: bool = True,
        prefetch: int = 4,
        timers: TimerRegistry | None = None,
    ):
        if prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        self._batches = batches
        self._num_layers = num_layers
        self._pruning = pruning
        self._aggregator_factory = aggregator_factory
        self._enabled = enabled
        self._prefetch = prefetch
        self._timers = timers if timers is not None else TimerRegistry()

    # ----------------------------------------------------------- internals
    def _prepare(self, batch: list) -> tuple[BatchInputs, np.ndarray | None]:
        with self._timers.timing("preprocess"):
            if batch and isinstance(batch[0], (bytes, bytearray)):
                samples: list[TrainSample] = decode_samples(batch)
            else:
                samples = batch
            return vectorize_batch(
                samples,
                self._num_layers,
                pruning=self._pruning,
                aggregator_factory=self._aggregator_factory,
            )

    def __iter__(self) -> Iterator[tuple[BatchInputs, np.ndarray | None]]:
        if not self._enabled:
            for batch in self._batches:
                yield self._prepare(batch)
            return

        out: queue.Queue = queue.Queue(maxsize=self._prefetch)
        error: list[BaseException] = []

        def producer():
            try:
                for batch in self._batches:
                    out.put(self._prepare(batch))
            except BaseException as exc:  # surface in the consumer thread
                error.append(exc)
            finally:
                out.put(_SENTINEL)

        worker = threading.Thread(target=producer, name="agl-preprocess", daemon=True)
        worker.start()
        try:
            while True:
                item = out.get()
                if item is _SENTINEL:
                    break
                yield item
        finally:
            # Drain so the producer is never blocked on a full queue forever
            # when the consumer stops early (e.g. test breaks out of loop).
            while worker.is_alive():
                try:
                    out.get_nowait()
                except queue.Empty:
                    worker.join(timeout=0.05)
        if error:
            raise error[0]
