"""Subgraph vectorization — phase one of the training workflow (§3.3.1).

"The training process of GNNs has to merge the subgraphs described by
GraphFeatures together, and then vectorize the merged subgraph as the
following three matrices": the destination-sorted sparse adjacency ``A_B``
(our :class:`~repro.nn.gnn.block.EdgeBlock`), the node feature matrix
``X_B`` and the edge feature matrix ``E_B`` — plus target ids and labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer.pruning import prune_blocks
from repro.graph.subgraph import GraphFeature, merge_graph_features
from repro.nn.gnn.block import BatchInputs, EdgeBlock
from repro.proto.codec import decode_sample

__all__ = ["TrainSample", "decode_samples", "vectorize_batch"]


@dataclass
class TrainSample:
    """Decoded ``<TargetedNodeId, Label, GraphFeature>`` triple."""

    target_id: int
    label: int | np.ndarray | None
    graph_feature: GraphFeature


def decode_samples(records) -> list[TrainSample]:
    """Decode an iterable of wire-format sample records."""
    return [TrainSample(*decode_sample(r)) for r in records]


def vectorize_batch(
    samples: list[TrainSample],
    num_layers: int,
    pruning: bool = True,
    aggregator_factory=None,
    edge_level: bool = False,
) -> tuple[BatchInputs, np.ndarray | None]:
    """Merge + vectorize a batch of samples into model inputs.

    Returns ``(batch, labels)``.  Node-level batches (the default) align
    ``labels`` with ``batch.target_index`` rows (int vector for
    single-label tasks, float matrix for multi-label, ``None`` for
    unlabeled inference batches).  With ``edge_level`` each sample is a
    target *edge* whose GraphFeature carries the ordered ``[src, dst]``
    target pair: the batch gains a ``(B, 2)`` ``pair_index`` into the
    merged target rows and ``labels`` follow batch-sample order (edge
    samples are keyed by edge index, not node id, so two samples may share
    every endpoint).

    With ``pruning`` the per-layer adjacency list implements Equation 3;
    otherwise every layer sees the full ``A_B``.  ``aggregator_factory``
    installs an edge-partitioned aggregation backend on each block.
    """
    if not samples:
        raise ValueError("cannot vectorize an empty batch")
    merged = merge_graph_features([s.graph_feature for s in samples])

    base = EdgeBlock(
        merged.edge_src,
        merged.edge_dst,
        merged.num_nodes,
        merged.edge_weight,
        merged.edge_feat,
    )
    if pruning:
        blocks = prune_blocks(base, merged.hops, num_layers, aggregator_factory)
    else:
        if aggregator_factory is not None:
            base.aggregator = aggregator_factory(base)
        blocks = [base] * num_layers

    if edge_level:
        for s in samples:
            if len(s.graph_feature.target_ids) != 2:
                raise ValueError(
                    "edge-level samples need exactly two targets (src, dst); "
                    f"sample {s.target_id} has {len(s.graph_feature.target_ids)}"
                )
        pairs = np.stack([s.graph_feature.target_ids for s in samples])
        # merged.target_ids is sorted-unique, so searchsorted is an exact
        # lookup into the merged target rows.
        pair_index = np.searchsorted(merged.target_ids, pairs)
        batch = BatchInputs(merged.x, merged.target_index, blocks, pair_index)
        raw = [s.label for s in samples]
        labels = None
        if any(label is not None for label in raw):
            if any(label is None for label in raw):
                raise ValueError("batch mixes labeled and unlabeled samples")
            labels = np.asarray([int(label) for label in raw], dtype=np.int64)
        return batch, labels

    batch = BatchInputs(merged.x, merged.target_index, blocks)

    labels = None
    sample_labels = {int(s.target_id): s.label for s in samples}
    if any(label is not None for label in sample_labels.values()):
        ordered = [sample_labels[int(t)] for t in merged.target_ids]
        if any(o is None for o in ordered):
            raise ValueError("batch mixes labeled and unlabeled samples")
        if np.ndim(ordered[0]) == 0:
            labels = np.asarray(ordered, dtype=np.int64)
        else:
            labels = np.stack([np.asarray(o, dtype=np.float32) for o in ordered])
    return batch, labels
