"""Sample sources — the trainer's layout-aware view of a dataset.

GraphTrainer used to accept only in-memory lists (wire bytes or decoded
:class:`TrainSample` objects).  A :class:`SampleSource` generalises that to
"anything with random access to N training triples", which is what lets the
trainer run off mmap'd columnar shards without materialising — or even
decoding — the dataset:

* :class:`MemorySamples` — wraps a list (decoding wire bytes once), the old
  behavior;
* :class:`ColumnarDataset` — random access over the columnar shards of a
  DFS dataset.  ``batch()`` returns a tiny picklable
  :class:`ColumnarBatchRef` instead of sample objects, so a process-pool
  prefetch worker ships a few ints per batch and slices the shard out of
  its own mapping (per-process shard cache).

:func:`open_sample_source` picks the right source for a DFS dataset from
its layout metadata; both sources present samples in ``read_dataset``
order (shard-major), so switching layouts never changes the data order a
trainer sees — per-epoch losses are bit-identical across layouts (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.trainer.vectorize import TrainSample, decode_samples
from repro.proto.columnar import ColumnarShard

__all__ = [
    "ColumnarBatchRef",
    "ColumnarDataset",
    "ColumnarSlice",
    "MemorySamples",
    "SampleSource",
    "as_sample_source",
    "open_sample_source",
]


class SampleSource:
    """Random-access source of :class:`TrainSample` records.

    Subclasses implement ``__len__``, :meth:`sample` and :meth:`ids`;
    :meth:`batch` may return any object the
    :class:`~repro.core.trainer.pipeline.BatchPipeline` preparer
    understands (a list of samples, or a picklable ref with a
    ``load_samples()`` method).
    """

    def __len__(self) -> int:
        raise NotImplementedError  # pragma: no cover - abstract

    def sample(self, i: int) -> TrainSample:
        raise NotImplementedError  # pragma: no cover - abstract

    def ids(self) -> np.ndarray:
        """``(N,) int64`` target id of every sample, in source order."""
        raise NotImplementedError  # pragma: no cover - abstract

    def batch(self, indices: np.ndarray):
        """Pipeline-ready batch for ``indices`` (in the given order)."""
        return [self.sample(int(i)) for i in indices]

    def iter_samples(self):
        for i in range(len(self)):
            yield self.sample(i)

    # ------------------------------------------------------------- labels
    @property
    def label_kind(self) -> str:
        """``"none"`` / ``"int"`` / ``"vector"`` — homogeneous per source."""
        if not len(self):
            return "none"
        label = self.sample(0).label
        if label is None:
            return "none"
        return "int" if np.ndim(label) == 0 else "vector"

    @property
    def label_dim(self) -> int:
        """Vector-label width (0 for int/absent labels)."""
        if self.label_kind != "vector":
            return 0
        return len(self.sample(0).label)

    def max_int_label(self) -> int:
        if self.label_kind != "int":
            raise ValueError("max_int_label needs int labels")
        return max(int(s.label) for s in self.iter_samples())

    def labels_by_id(self) -> dict[int, object]:
        """Target id -> label (evaluation-time lookup)."""
        return {int(s.target_id): s.label for s in self.iter_samples()}


class MemorySamples(SampleSource):
    """The in-memory source: a decoded list of :class:`TrainSample`."""

    def __init__(self, samples: list[TrainSample]):
        self._samples = list(samples)
        self._ids: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._samples)

    def sample(self, i: int) -> TrainSample:
        return self._samples[i]

    def ids(self) -> np.ndarray:
        if self._ids is None:
            self._ids = np.asarray(
                [int(s.target_id) for s in self._samples], dtype=np.int64
            )
        return self._ids

    def batch(self, indices) -> list[TrainSample]:
        return [self._samples[int(i)] for i in indices]

    def iter_samples(self):
        return iter(self._samples)


# Per-process cache so pool workers mmap each shard once, not per batch.
# Keyed on (path, mtime, size): rewriting a dataset in place invalidates
# the stale mapping instead of silently serving the old file.  LRU-bounded
# so a long-lived process touching many datasets doesn't pin file handles
# and address-space mappings forever.
_SHARD_CACHE: dict[tuple, ColumnarShard] = {}
_SHARD_CACHE_LIMIT = 256


def _cached_shard(path: str) -> ColumnarShard:
    stat = Path(path).stat()
    key = (path, stat.st_mtime_ns, stat.st_size)
    shard = _SHARD_CACHE.get(key)
    if shard is not None:
        _SHARD_CACHE[key] = _SHARD_CACHE.pop(key)  # refresh LRU position
        return shard
    for stale in [k for k in _SHARD_CACHE if k[0] == path]:
        del _SHARD_CACHE[stale]
    while len(_SHARD_CACHE) >= _SHARD_CACHE_LIMIT:
        del _SHARD_CACHE[next(iter(_SHARD_CACHE))]  # dicts iterate LRU-first
    shard = _SHARD_CACHE[key] = ColumnarShard(path)
    return shard


def _load_locator(shard_paths: tuple[str, ...], locator: tuple[int, int]) -> TrainSample:
    shard, row = locator
    return TrainSample(*_cached_shard(shard_paths[shard]).sample(row))


@dataclass(frozen=True)
class ColumnarBatchRef:
    """Picklable pointer to one batch: shard paths + (shard, row) locators.

    This is what crosses the process boundary under the ``processes``
    prefetch backend — a few dozen ints instead of the batch's tensors.
    """

    shard_paths: tuple[str, ...]
    locators: tuple[tuple[int, int], ...]

    def load_samples(self) -> list[TrainSample]:
        return [_load_locator(self.shard_paths, loc) for loc in self.locators]


@dataclass
class ColumnarSlice(SampleSource):
    """Picklable worker shard: a fixed subsequence of a columnar dataset.

    This is how a distributed-training worker *process* receives its data
    assignment: shard paths plus ``(shard, row)`` locators — a few ints per
    sample — instead of the samples themselves.  The worker opens the
    mmap'd shards through the per-process cache, so sample bytes never
    transit the parent.  Built by :meth:`ColumnarDataset.slice`.
    """

    shard_paths: tuple[str, ...]
    locators: tuple[tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.locators)

    def sample(self, i: int) -> TrainSample:
        return _load_locator(self.shard_paths, self.locators[int(i)])

    def ids(self) -> np.ndarray:
        if not self.locators:
            return np.zeros(0, dtype=np.int64)
        locs = np.asarray(self.locators, dtype=np.int64)
        out = np.empty(len(locs), dtype=np.int64)
        for shard in np.unique(locs[:, 0]):  # one id-column read per shard
            mask = locs[:, 0] == shard
            ids = _cached_shard(self.shard_paths[int(shard)]).array("sample_ids")
            out[mask] = ids[locs[mask, 1]]
        return out

    def batch(self, indices) -> ColumnarBatchRef:
        return ColumnarBatchRef(
            self.shard_paths, tuple(self.locators[int(i)] for i in indices)
        )


class ColumnarDataset(SampleSource):
    """Random access over the columnar shards of one dataset.

    Global sample index is shard-major (shard 0's rows, then shard 1's …),
    matching ``DistFileSystem.read_dataset`` order for the row layout.
    """

    def __init__(self, shard_paths):
        self._paths = tuple(str(p) for p in shard_paths)
        if not self._paths:
            raise ValueError("columnar dataset has no shards")
        self._shards = [_cached_shard(p) for p in self._paths]
        for shard in self._shards:
            if shard.kind != "samples":
                raise ValueError(
                    f"{shard.path} holds {shard.kind!r} records, not training samples"
                )
        counts = [len(s) for s in self._shards]
        self._starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._ids: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self._starts[-1])

    def _locate(self, i: int) -> tuple[int, int]:
        if not 0 <= i < len(self):
            raise IndexError(f"dataset has {len(self)} samples")
        shard = int(np.searchsorted(self._starts, i, side="right")) - 1
        return shard, i - int(self._starts[shard])

    def sample(self, i: int) -> TrainSample:
        shard, row = self._locate(int(i))
        return TrainSample(*self._shards[shard].sample(row))

    def ids(self) -> np.ndarray:
        if self._ids is None:
            blocks = [s.array("sample_ids") for s in self._shards if len(s)]
            self._ids = (
                np.concatenate(blocks) if blocks else np.zeros(0, dtype=np.int64)
            )
        return self._ids

    def batch(self, indices) -> ColumnarBatchRef:
        return ColumnarBatchRef(
            self._paths, tuple(self._locate(int(i)) for i in indices)
        )

    def slice(self, indices) -> ColumnarSlice:
        """Picklable sub-source over ``indices`` (worker shard assignment)."""
        return ColumnarSlice(
            self._paths, tuple(self._locate(int(i)) for i in indices)
        )

    # ------------------------------------------------------------- labels
    @property
    def label_kind(self) -> str:
        for shard in self._shards:
            if len(shard):
                return shard.label_kind
        return "none"

    @property
    def label_dim(self) -> int:
        for shard in self._shards:
            if len(shard) and shard.label_kind == "vector":
                return int(shard.meta.get("label_dim", 0))
        return 0

    def max_int_label(self) -> int:
        if self.label_kind != "int":
            raise ValueError("max_int_label needs int labels")
        return max(int(s.array("labels").max()) for s in self._shards if len(s))

    def labels_by_id(self) -> dict[int, object]:
        out: dict[int, object] = {}
        for shard in self._shards:
            if not len(shard):
                continue
            ids = shard.array("sample_ids")
            if shard.label_kind == "none":
                out.update((int(i), None) for i in ids)
            elif shard.label_kind == "int":
                labels = shard.array("labels")
                out.update((int(i), int(lbl)) for i, lbl in zip(ids, labels))
            else:
                labels = shard.array("labels")
                out.update((int(i), labels[row]) for row, i in enumerate(ids))
        return out


def as_sample_source(data) -> SampleSource:
    """Coerce trainer input — a source, wire bytes, or decoded samples."""
    if isinstance(data, SampleSource):
        return data
    data = list(data)
    if data and isinstance(data[0], (bytes, bytearray)):
        return MemorySamples(decode_samples(data))
    return MemorySamples(data)


def open_sample_source(fs, name: str) -> SampleSource:
    """Layout-aware DFS reader: mmap'd :class:`ColumnarDataset` for
    columnar datasets, a decoded :class:`MemorySamples` for row datasets.
    Every consumer that loops ``read_dataset`` should go through this."""
    if fs.layout(name) == "columnar":
        return ColumnarDataset([Path(p) for p in fs.shards(name)])
    return MemorySamples(decode_samples(fs.read_dataset(name)))
