"""The GraphInfer MapReduce pipeline (§3.4, Figure 5).

Round structure mirrors GraphFlat — Map once, then K+1 Reduce rounds — but
the "self information" is the node's *current-layer embedding* instead of an
accumulated subgraph, which is why there is no repeated computation: each
node's kth-layer embedding is computed exactly once and propagated to every
out-edge neighbor that needs it.

Sampling and hub re-indexing are applied identically to GraphFlat (same
strategies, same seeds), "to maintain the consistence of data processing ...
which can provide unbiased inference with the model trained based on
GraphFlat and GraphTrainer" (§3.4).  With sampling disabled (``max_neighbors
= inf``), the pipeline's outputs equal the full-graph batched forward to
float tolerance — an integration test asserts this.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.graphflat.pipeline import (
    DATASET_SINKS,
    _EdgeFanout,
    build_partition_plan,
)
from repro.core.graphflat.sampling import SamplingStrategy, make_sampler
from repro.core.infer.segmentation import ModelSlice, broadcast_slices, segment_model
from repro.graph.tables import EdgeTable, NodeTable
from repro.graph.validate import validate_tables
from repro.mapreduce.fs import DATASET_LAYOUTS, DistFileSystem
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partition import PARTITIONERS, publish_plan
from repro.mapreduce.runtime import LocalRuntime, RunStats
from repro.mapreduce.spill import DEFAULT_RUN_BYTES, DEFAULT_RUN_RECORDS
from repro.proto.columnar import write_prediction_shard
from repro.nn.gnn.base import GNNModel
from repro.proto.codec import decode_prediction, encode_prediction
from repro.proto.framing import (
    decode_edge_fields,
    decode_value,
    encode_edge_fields,
    encode_value,
    register_record,
)
from repro.proto.varint import decode_signed, decode_unsigned, encode_signed, encode_unsigned
from repro.tasks import make_task

SLICE_TRANSPORTS = ("auto", "shm", "pickle")

__all__ = [
    "EdgePredictionReducer",
    "EmbeddingReducer",
    "GraphInferConfig",
    "SLICE_TRANSPORTS",
    "GraphInferResult",
    "InferPartialReducer",
    "InferPrepareReducer",
    "PredictionReducer",
    "PredictionShardSink",
    "ReceptiveField",
    "graph_infer",
]


@dataclass
class _OutEdge:
    dst: int
    weight: float
    edge_feat: np.ndarray | None


@dataclass
class _InEmb:
    """In-edge information during inference: the sender's embedding.

    Field names ``src``/``weight`` intentionally match GraphFlat's
    ``InEdgeInfo`` so the sampling strategies apply unchanged."""

    src: int
    weight: float
    edge_feat: np.ndarray | None
    h: np.ndarray


# Flat wire forms for the binary spill codec (tags 0x30-0x3F are reserved
# for GraphInfer records): embeddings go to disk as raw little-endian
# blocks instead of pickled object graphs.  The leading (id, weight,
# edge_feat) triple shares GraphFlat's wire shape via encode_edge_fields.


def _encode_out_edge(edge: _OutEdge, out: bytearray) -> None:
    encode_edge_fields(edge.dst, edge.weight, edge.edge_feat, out)


def _decode_out_edge(buf, offset: int):
    dst, weight, edge_feat, offset = decode_edge_fields(buf, offset)
    return _OutEdge(dst, weight, edge_feat), offset


def _encode_in_emb(emb: _InEmb, out: bytearray) -> None:
    encode_edge_fields(emb.src, emb.weight, emb.edge_feat, out)
    out += encode_value(emb.h)


def _decode_in_emb(buf, offset: int):
    src, weight, edge_feat, offset = decode_edge_fields(buf, offset)
    h, offset = decode_value(buf, offset)
    return _InEmb(src, weight, edge_feat, h), offset


register_record(0x30, _OutEdge, _encode_out_edge, _decode_out_edge)
register_record(0x31, _InEmb, _encode_in_emb, _decode_in_emb)


@dataclass
class GraphInferConfig:
    """Inference knobs (Figure 6's ``GraphInfer -m model -i input -c ...``)."""

    sampling: str = "uniform"
    max_neighbors: int = 10**9
    hub_threshold: int = 10**9
    reindex_fanout: int = 8
    num_reducers: int = 4
    num_shards: int = 4
    seed: int = 0
    validate: bool = True
    backend: str = "serial"
    """MapReduce backend (``serial`` / ``threads`` / ``processes``) used
    when no explicit runtime is passed to :func:`graph_infer`."""
    num_workers: int | None = None
    """Worker count for the pooled backends; ``None`` = backend default."""
    spill_dir: str | None = None
    """Shuffle spill directory; ``None`` = in-memory (serial/threads) or a
    private temp dir (processes)."""
    shuffle_codec: str = "binary"
    """Spill record encoding: ``binary`` (flat embedding/edge records —
    the default; output is byte-identical to ``pickle``, tested) or
    ``pickle``."""
    partitioner: str = "hash"
    """Shuffle partition function for the embedding rounds: ``hash``
    (crc32 default) or ``planned`` (degree-aware bin-packing of heavy
    keys, planned from one vectorized in-degree pass — the same counts hub
    detection uses).  The final prediction round always partitions by
    hash so score order and shard contents stay partitioner-independent
    (see ``GraphFlatConfig.partitioner``)."""
    dataset_layout: str = "columnar"
    """DFS shard layout for the predictions dataset: ``columnar`` (stacked
    ``node_ids`` + score matrix per shard — the default) or ``row`` (framed
    per-record byte strings).  ``read_dataset`` yields byte-identical
    records either way."""
    slice_transport: str = "auto"
    """How model slices reach the reducers: ``shm`` publishes every slice
    once into a shared-memory slab (:class:`~repro.ps.shm.SlabBroadcast`)
    and ships only locators — zero serialized parameter bytes per task
    attempt; ``pickle`` embeds the parameter arrays in each pickled
    reducer (the pre-slab behavior, kept as the in-process fallback);
    ``auto`` (default) picks ``shm`` under the ``processes`` backend and
    ``pickle`` otherwise.  Scores are byte-identical either way (tested)."""
    dataset_sink: str = "auto"
    """Who writes the predictions shards: ``reducer`` (each final-round
    reducer writes its own columnar shard; shard count = ``num_reducers``),
    ``parent`` (collect then write ``num_shards`` shards), or ``auto``
    (default — ``reducer`` whenever a DFS is given with columnar layout).
    The global record stream is byte-identical either way."""
    spill_run_records: int = DEFAULT_RUN_RECORDS
    """External-sort run bound: records buffered per spill writer before a
    sorted run is flushed (see ``repro.mapreduce.spill.SpillRunWriter``)."""
    spill_run_bytes: int = DEFAULT_RUN_BYTES
    """External-sort run bound in encoded bytes (binary codec only)."""
    max_attempts: int = 3
    """Attempt budget per MapReduce task before the job fails."""
    task_timeout_s: float | None = None
    """Per-attempt deadline: an attempt running longer is discarded (pool
    kill under ``processes``, cooperative check elsewhere) and retried as a
    :class:`~repro.mapreduce.fault.TaskTimeoutError`.  ``None`` = none."""
    speculation_factor: float | None = None
    """Straggler speculation (processes backend): a task running longer
    than this factor x the phase's median completed duration races a
    duplicate attempt; first completion wins.  ``None`` = off."""
    shuffle_transport: str = "local"
    """How reducers reach map-side shuffle runs: ``local`` (direct file
    reads), ``tcp`` (shuffle peering over the frame wire protocol) or
    ``shared-dir`` (runs pushed to per-partition peer directories under a
    shared ``spill_dir`` mount).  Scores are byte-identical across all
    three (tested) — see ``GraphFlatConfig.shuffle_transport``."""
    hosts: str | None = None
    """Cluster roster for the TCP transports (``host:port,...``; first
    entry is the coordinator).  ``None`` binds ephemeral loopback."""
    task: str = "node_classification"
    """Inference task (``repro.tasks`` registry).  Edge-level tasks score
    candidate edges instead of nodes: the final embedding round fans each
    endpoint embedding out to the edges it terminates, and the prediction
    round applies the task's score function to the ``(src, dst)``
    embedding pair — record ids in the output are candidate-edge indices."""

    def __post_init__(self):
        make_task(self.task)  # fail fast on unknown task names
        if self.dataset_layout not in DATASET_LAYOUTS:
            raise ValueError(f"dataset_layout must be one of {DATASET_LAYOUTS}")
        if self.dataset_sink not in DATASET_SINKS:
            raise ValueError(f"dataset_sink must be one of {DATASET_SINKS}")
        if self.slice_transport not in SLICE_TRANSPORTS:
            raise ValueError(
                f"slice_transport must be one of {SLICE_TRANSPORTS}, "
                f"got {self.slice_transport!r}"
            )
        if self.partitioner not in PARTITIONERS:
            raise ValueError(f"partitioner must be one of {PARTITIONERS}")
        from repro.transport.shuffle import SHUFFLE_TRANSPORTS

        if self.shuffle_transport not in SHUFFLE_TRANSPORTS:
            raise ValueError(
                f"shuffle_transport must be one of {SHUFFLE_TRANSPORTS}"
            )

    def make_runtime(self) -> LocalRuntime:
        cluster = None
        if self.hosts:
            from repro.transport.cluster import ClusterSpec

            cluster = ClusterSpec.parse(self.hosts)
        return LocalRuntime(
            backend=self.backend,
            max_workers=self.num_workers,
            max_attempts=self.max_attempts,
            spill_dir=self.spill_dir,
            shuffle_codec=self.shuffle_codec,
            spill_run_records=self.spill_run_records,
            spill_run_bytes=self.spill_run_bytes,
            task_timeout_s=self.task_timeout_s,
            speculation_factor=self.speculation_factor,
            shuffle_transport=self.shuffle_transport,
            cluster=cluster,
        )


@dataclass
class GraphInferResult:
    """Predictions plus the cost counters Table 5 reports."""

    num_nodes: int
    scores: dict[int, np.ndarray] | None = None
    dataset: str | None = None
    round_stats: list[RunStats] = field(default_factory=list)
    embedding_computations: int = 0
    """Total per-node layer evaluations — exactly ``K * |V|`` here; the
    original module's count grows with neighborhood overlap instead."""
    slice_transport: str = "pickle"
    """The resolved transport this run shipped model slices with
    (``auto`` never appears here)."""


def _degree_counts(edges: EdgeTable) -> tuple[np.ndarray, np.ndarray]:
    """Per-destination in-degree as ``(node ids, counts)`` — one vectorized
    unique+count pass over the dst column.  Feeds both hub detection and
    the degree-aware partition plan (the same counts GraphFlat gets from
    its degree MapReduce job)."""
    return np.unique(np.asarray(edges.dst, dtype=np.int64), return_counts=True)


def _detect_hubs(edges: EdgeTable, hub_threshold: int) -> frozenset[int]:
    """In-degree hub detection identical to GraphFlat's, vectorized: one
    unique+count pass over the dst column instead of a per-edge dict loop
    (equality with the loop is reference-tested)."""
    uniq, counts = _degree_counts(edges)
    return frozenset(int(v) for v in uniq[counts > hub_threshold])


def _distance_to_targets(
    edges: EdgeTable, target_set: set[int], max_hops: int
) -> dict[int, int]:
    """``d(target_set, u)`` for every u within ``max_hops`` reverse hops.

    BFS from the targets along edges *backwards* (an edge ``u -> v`` means
    u's embedding feeds v), i.e. the same distance GraphTrainer's pruning
    uses (§3.3.2) lifted to the inference pipeline.

    The reverse adjacency is built with one stable argsort over ``dst``
    instead of a per-edge dict-append loop: in-neighbors of ``v`` are a
    contiguous run of the src column.  The BFS itself visits nodes in the
    same hop order, so the returned distances are identical.
    """
    src = np.asarray(edges.src, dtype=np.int64)
    dst = np.asarray(edges.dst, dtype=np.int64)
    order = np.argsort(dst, kind="stable")
    sorted_src = src[order]
    sorted_dst = dst[order]
    uniq, starts = np.unique(sorted_dst, return_index=True)
    ends = np.append(starts[1:], len(sorted_dst))
    spans = {
        int(v): (int(lo), int(hi)) for v, lo, hi in zip(uniq, starts, ends)
    }
    dist = {t: 0 for t in target_set}
    frontier = list(target_set)
    for hop in range(1, max_hops + 1):
        nxt: list[int] = []
        for v in frontier:
            span = spans.get(v)
            if span is None:
                continue
            for u in sorted_src[span[0] : span[1]].tolist():
                if u not in dist:
                    dist[u] = hop
                    nxt.append(u)
        if not nxt:
            break
        frontier = nxt
    return dist


def graph_infer(
    model: GNNModel,
    nodes: NodeTable,
    edges: EdgeTable,
    config: GraphInferConfig | None = None,
    runtime: LocalRuntime | None = None,
    fs: DistFileSystem | None = None,
    dataset_name: str = "graphinfer/output",
    targets=None,
    candidates=None,
) -> GraphInferResult:
    """Run segmented-model inference over the whole graph.

    Returns per-node prediction scores (in-memory dict keyed by node id, or
    a DFS dataset of framed prediction records when ``fs`` is given).

    ``targets`` restricts inference to a subset of nodes, enabling §3.4's
    pruning: "the pruning strategy similar to that in GraphTrainer also
    works in this pipeline in the case the inference task is performed over
    a part of the entire graph".  A node's layer-k embedding is computed
    and propagated only when the node lies within ``K - k`` reverse hops of
    a target, so the per-round work shrinks toward the targets.  Scores are
    produced for the targets only and equal the whole-graph run exactly
    (tested).

    With an edge-level ``config.task``, ``candidates`` is the ``(src,
    dst)`` edge list to score — a ``(m, 2)`` array, defaulting to the
    graph's own (coalesced) edges — and the result is keyed by candidate
    index.  The candidate endpoints become the pruning targets, so only
    embeddings inside their receptive fields are computed.
    """
    config = config or GraphInferConfig()
    owns_runtime = runtime is None
    runtime = runtime or config.make_runtime()
    try:
        return _graph_infer(
            model, nodes, edges, config, runtime, fs, dataset_name, targets,
            candidates,
        )
    finally:
        if owns_runtime:
            runtime.close()


def _graph_infer(
    model: GNNModel,
    nodes: NodeTable,
    edges: EdgeTable,
    config: GraphInferConfig,
    runtime: LocalRuntime,
    fs: DistFileSystem | None,
    dataset_name: str,
    targets,
    candidates,
) -> GraphInferResult:
    if config.validate:
        validate_tables(nodes, edges)
    edges = edges.coalesce()  # must match GraphFlat's canonical adjacency

    slices = segment_model(model)
    transport = config.slice_transport
    if transport == "auto":
        transport = "shm" if runtime.backend == "processes" else "pickle"
    broadcast = None
    if transport == "shm":
        # Publish every slice's parameters into one named slab, once per
        # run; reducers then pickle only locators.  The slab is unlinked in
        # the finally below — the single ownership point, which also covers
        # failed rounds and mid-round worker crashes (retries re-attach the
        # same slab; nothing is republished per attempt).
        broadcast, slices = broadcast_slices(slices)
    try:
        return _graph_infer_rounds(
            nodes, edges, config, runtime, fs, dataset_name, targets,
            candidates, slices, transport,
        )
    finally:
        if broadcast is not None:
            broadcast.close()


def _graph_infer_rounds(
    nodes: NodeTable,
    edges: EdgeTable,
    config: GraphInferConfig,
    runtime: LocalRuntime,
    fs: DistFileSystem | None,
    dataset_name: str,
    targets,
    candidates,
    slices: list[ModelSlice],
    transport: str,
) -> GraphInferResult:
    gnn_slices, head_slice = slices[:-1], slices[-1]
    sampler = make_sampler(config.sampling, config.max_neighbors, config.seed)

    task_obj = make_task(config.task)
    meta_task = None if config.task == "node_classification" else config.task
    edge_fanout = None
    if task_obj.edge_level:
        if targets is not None:
            raise ValueError(
                f"task {config.task!r} scores candidate edges; pass "
                "candidates=(src, dst) pairs instead of node targets"
            )
        if candidates is None:
            cand_src = np.asarray(edges.src, dtype=np.int64)
            cand_dst = np.asarray(edges.dst, dtype=np.int64)
        else:
            cand = np.asarray(candidates, dtype=np.int64)
            if cand.ndim != 2 or cand.shape[1] != 2:
                raise ValueError("candidates must be an (m, 2) edge array")
            cand_src, cand_dst = cand[:, 0], cand[:, 1]
        if np.any(cand_src == cand_dst):
            raise ValueError("candidate edges must not be self-loops")
        edge_fanout = _EdgeFanout.from_pairs(cand_src, cand_dst)
        # Endpoints are the pruning targets: only embeddings inside a
        # candidate endpoint's receptive field are computed below.
        targets = np.unique(np.concatenate([cand_src, cand_dst]))
    elif candidates is not None:
        raise ValueError("candidates only apply to edge-level tasks")

    target_set = None
    distance: dict[int, int] | None = None
    if targets is not None:
        target_set = {int(t) for t in np.asarray(targets)}
        missing = [t for t in sorted(target_set) if t not in nodes]
        if missing:
            raise KeyError(
                f"{len(missing)} target ids not in node table (e.g. {missing[:5]})"
            )
        distance = _distance_to_targets(edges, target_set, len(gnn_slices))

    uniq_dst, dst_counts = _degree_counts(edges)
    hubs = frozenset(
        int(v) for v in uniq_dst[dst_counts > config.hub_threshold]
    )
    reindex_active = bool(hubs)

    # ---- degree-aware placement plan: same construction as GraphFlat's,
    # from the vectorized in-degree pass above instead of a degree job.
    partition_broadcast = None
    planned = None
    if config.partitioner == "planned":
        plan = build_partition_plan(
            zip(uniq_dst.tolist(), dst_counts.tolist()),
            hubs,
            config.reindex_fanout,
            reindex_active,
            config.num_reducers,
        )
        partition_broadcast, planned = publish_plan(plan, runtime.needs_pickling)

    # ---- Map: self embedding h^(0) = x, out-edges, propagate h^(0) --------
    total_rounds = len(gnn_slices)
    needed = ReceptiveField(distance, total_rounds)

    node_rows = [(int(i), ("node", feat)) for i, feat, _ in nodes.rows()]
    edge_rows = [(int(s), (int(s), int(d), float(w), f)) for s, d, f, w in edges.rows()]
    jobs = [
        MapReduceJob(
            "graphinfer-map",
            InferPrepareReducer(hubs, config.reindex_fanout, reindex_active, needed),
            num_reducers=config.num_reducers,
        )
    ]

    # ---- K embedding rounds, then the prediction slice, chained: every
    # round is reduce-only, so partitions flow reducer-to-reducer without
    # funneling embeddings through this process.
    for k, mslice in enumerate(gnn_slices, start=1):
        if reindex_active:
            jobs.append(
                MapReduceJob(
                    f"graphinfer-reduce{k}-reindex",
                    InferPartialReducer(sampler, k, config.reindex_fanout),
                    num_reducers=config.num_reducers,
                )
            )
        jobs.append(
            MapReduceJob(
                f"graphinfer-reduce{k}",
                EmbeddingReducer(
                    mslice, sampler, k, total_rounds, hubs, config.reindex_fanout,
                    reindex_active, needed,
                    # Only the Kth round fans embeddings out to candidate
                    # edges; earlier rounds never ship the table.
                    edge_fanout if k == total_rounds else None,
                ),
                num_reducers=config.num_reducers,
            )
        )
    jobs.append(
        MapReduceJob(
            "graphinfer-predict",
            EdgePredictionReducer(head_slice, config.task)
            if task_obj.edge_level
            else PredictionReducer(head_slice),
            num_reducers=config.num_reducers,
        )
    )
    if planned is not None:
        # Embedding rounds get planned placement; the prediction round
        # keeps the hash default so score order and reducer-sink shard
        # contents are partitioner-independent (GraphFlat pins its final
        # round for the same reason).
        for job in jobs[:-1]:
            job.partitioner = planned
    if distance is None:
        embedding_computations = len(nodes) * total_rounds
    else:
        embedding_computations = sum(
            1
            for k in range(1, total_rounds + 1)
            for node_id, d in distance.items()
            if d <= total_rounds - k and node_id in nodes
        )

    try:
        sink_mode = config.dataset_sink
        if sink_mode == "auto":
            sink_mode = (
                "reducer"
                if fs is not None and config.dataset_layout == "columnar"
                else "parent"
            )
        elif sink_mode == "reducer" and (fs is None or config.dataset_layout != "columnar"):
            raise ValueError(
                "dataset_sink='reducer' requires a DFS and columnar dataset_layout"
            )

        if sink_mode == "reducer":
            # Reducer-owned sink: each prediction reducer writes its own
            # AGLC shard; score matrices never travel through this process.
            directory = fs.prepare_dataset(dataset_name)
            sink = PredictionShardSink(str(directory))
            counts = runtime.run_rounds(jobs, node_rows + edge_rows, final_sink=sink)
            fs.finalize_dataset(
                dataset_name,
                layout="columnar",
                kind="predictions",
                record_counts=counts,
                task=meta_task,
            )
            return GraphInferResult(
                num_nodes=sum(counts),
                dataset=dataset_name,
                round_stats=list(runtime.round_stats),
                embedding_computations=embedding_computations,
                slice_transport=transport,
            )

        data = runtime.run_rounds(jobs, node_rows + edge_rows)
    finally:
        # Single unlink point for the plan slab — covers failed rounds too.
        if partition_broadcast is not None:
            partition_broadcast.close()
    stats = list(runtime.round_stats)

    result = GraphInferResult(
        num_nodes=len(data),
        round_stats=stats,
        embedding_computations=embedding_computations,
        slice_transport=transport,
    )
    if fs is not None:
        if config.dataset_layout == "columnar":
            fs.write_dataset(
                dataset_name,
                [(int(v), s) for v, s in data],
                num_shards=config.num_shards,
                layout="columnar",
                kind="predictions",
                task=meta_task,
            )
        else:
            fs.write_dataset(
                dataset_name,
                (encode_prediction(v, s) for v, s in data),
                num_shards=config.num_shards,
                kind="predictions",
                task=meta_task,
            )
        result.dataset = dataset_name
    else:
        result.scores = {int(v): s for v, s in data}
    return result


# --------------------------------------------------------------------- keys
def _suffix_key(dst: int, src: int, hubs, fanout, reindex_active):
    if not reindex_active:
        return dst
    if dst in hubs:
        # Round-independent, matching GraphFlat's suffix exactly.
        return (dst, 1 + zlib.crc32(f"{src}|{dst}".encode()) % fanout)
    return (dst, 0)


def _plain_key(node_id: int, reindex_active: bool):
    return (node_id, 0) if reindex_active else node_id


# ----------------------------------------------------------------- reducers
# Callable dataclasses (not closures) so jobs pickle to worker processes.


@dataclass(frozen=True)
class ReceptiveField:
    """Targeted-inference pruning predicate: is a node's layer-k embedding
    inside some target's receptive field?  ``distance=None`` = everything."""

    distance: dict[int, int] | None
    total_rounds: int

    def __call__(self, node_id: int, k: int) -> bool:
        if self.distance is None:
            return True
        return self.distance.get(node_id, self.total_rounds + 1) <= self.total_rounds - k


@dataclass(frozen=True)
class InferPrepareReducer:
    hubs: frozenset[int]
    fanout: int
    reindex_active: bool
    needed: ReceptiveField

    def __call__(self, node_id, values):
        feature = None
        outs: list[_OutEdge] = []
        for value in values:
            if value[0] == "node":
                feature = value[1]
            else:
                _, dst, weight, edge_feat = value
                outs.append(_OutEdge(int(dst), weight, edge_feat))
        if feature is None:
            return
        # Targeted-inference pruning: a node outside every target's
        # receptive field contributes nothing to any round.
        if not self.needed(int(node_id), 0):
            return
        h0 = np.asarray(feature, dtype=np.float32)
        yield _plain_key(int(node_id), self.reindex_active), ("self", h0)
        if outs:
            yield _plain_key(int(node_id), self.reindex_active), ("out", outs)
            for out in outs:
                if not self.needed(out.dst, 1):
                    continue
                key = _suffix_key(
                    out.dst, int(node_id), self.hubs, self.fanout, self.reindex_active
                )
                yield key, ("in", _InEmb(int(node_id), out.weight, out.edge_feat, h0))


@dataclass(frozen=True)
class InferPartialReducer:
    sampler: SamplingStrategy
    round_index: int
    fanout: int

    def __call__(self, key, values):
        node_id, sfx = key
        if sfx == 0:
            for value in values:
                yield node_id, value
            return
        in_embs = [value[1] for value in values]
        yield node_id, ("partial", self.sampler.select(in_embs, node_id, salt=sfx))


@dataclass
class EmbeddingReducer:
    """One GNN layer's Reduce round.  Ships the picklable :class:`ModelSlice`
    and materializes the runnable layer lazily, once per process — exactly
    the production "each reducer loads its model slice" behavior (§3.4).
    With ``slice_transport="shm"`` the slice is locator-backed, so the
    pickled reducer carries no parameter arrays at all; materialization
    attaches the broadcast slab instead."""

    mslice: ModelSlice
    sampler: SamplingStrategy
    round_index: int
    total_rounds: int
    hubs: frozenset[int]
    fanout: int
    reindex_active: bool
    needed: ReceptiveField
    edge_fanout: _EdgeFanout | None = None
    """Edge-level tasks only (and only on the Kth round): node id ->
    ``(candidate_index, role)`` entries, so the final embedding is keyed to
    the candidate edges it terminates instead of the node itself."""

    def __post_init__(self):
        self._layer = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_layer"] = None  # rebuilt lazily on the other side
        return state

    @property
    def layer(self):
        if self._layer is None:
            self._layer = self.mslice.materialize()
        return self._layer

    def __call__(self, node_id, values):
        self_h: np.ndarray | None = None
        outs: list[_OutEdge] = []
        ins: list[_InEmb] = []
        for value in values:
            tag = value[0]
            if tag == "self":
                self_h = value[1]
            elif tag == "out":
                outs = value[1]
            elif tag == "in":
                ins.append(value[1])
            elif tag == "partial":
                ins.extend(value[1])
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown record tag {tag!r}")
        if self_h is None:
            return
        # Targeted-inference pruning: this round's embedding is only
        # computed for nodes still inside a target's receptive field.
        if not self.needed(node_id, self.round_index):
            return
        sampled = self.sampler.select(ins, node_id, salt=0)
        if sampled:
            neigh_h = np.stack([e.h for e in sampled])
            neigh_w = np.asarray([e.weight for e in sampled], dtype=np.float32)
            edge_feat = (
                np.stack([e.edge_feat for e in sampled])
                if sampled[0].edge_feat is not None
                else None
            )
        else:
            neigh_h = np.zeros((0, len(self_h)), dtype=np.float32)
            neigh_w = np.zeros(0, dtype=np.float32)
            edge_feat = None
        h_next = self.layer.infer_node(self_h, neigh_h, neigh_w, edge_feat)

        if self.round_index == self.total_rounds:
            # "in the Kth round ... only need to output it rather than all of
            # the three information to the last Reduce phase" (§3.4).
            if self.edge_fanout is not None:
                for edge_index, role in self.edge_fanout.entries(node_id):
                    yield edge_index, ("end", role, h_next)
                return
            yield node_id, ("self", h_next)
            return
        yield _plain_key(node_id, self.reindex_active), ("self", h_next)
        if outs:
            yield _plain_key(node_id, self.reindex_active), ("out", outs)
            for out in outs:
                if not self.needed(out.dst, self.round_index + 1):
                    continue
                key = _suffix_key(
                    out.dst, node_id, self.hubs, self.fanout, self.reindex_active
                )
                yield key, ("in", _InEmb(node_id, out.weight, out.edge_feat, h_next))


@dataclass(frozen=True)
class PredictionShardSink:
    """Reducer-owned columnar sink for predictions: the final-round reducer
    streams its ``(node_id, scores)`` pairs into one AGLC shard
    (``part-<task>``), buffering one shard's records — never the whole
    dataset.  Returns the record count; that is all the parent sees."""

    directory: str

    def store(self, task_index: int, pairs):
        records = [(int(node_id), scores) for node_id, scores in pairs]
        path = Path(self.directory) / f"part-{task_index:05d}"
        return write_prediction_shard(path, records)


@dataclass
class PredictionReducer:
    """The K+1th slice: the prediction head, materialized lazily per process."""

    head_slice: ModelSlice

    def __post_init__(self):
        self._head = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_head"] = None
        return state

    @property
    def head(self):
        if self._head is None:
            self._head = self.head_slice.materialize()
        return self._head

    def __call__(self, node_id, values):
        for value in values:
            if value[0] == "self":
                h = value[1]
                scores = h @ self.head.weight.data
                if self.head.bias is not None:
                    scores = scores + self.head.bias.data
                yield node_id, scores.astype(np.float32)


@dataclass
class EdgePredictionReducer:
    """Edge-task prediction round: pair up the two endpoint embeddings a
    candidate edge received from the Kth embedding round and apply the
    task's score function (dot product for link prediction, the head over
    the Hadamard product for edge classification).  The head slice rides
    along like :class:`PredictionReducer`'s — link prediction simply
    ignores it."""

    head_slice: ModelSlice
    task_name: str

    def __post_init__(self):
        self._head = None
        self._task = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_head"] = None
        state["_task"] = None
        return state

    @property
    def head(self):
        if self._head is None:
            self._head = self.head_slice.materialize()
        return self._head

    @property
    def task(self):
        if self._task is None:
            self._task = make_task(self.task_name)
        return self._task

    def __call__(self, edge_index, values):
        by_role: dict[int, np.ndarray] = {}
        for value in values:
            if value[0] == "end":
                by_role[int(value[1])] = value[2]
        if sorted(by_role) != [0, 1]:  # pragma: no cover - defensive
            raise RuntimeError(
                f"candidate edge {edge_index} received roles {sorted(by_role)}; "
                "expected exactly one src (0) and one dst (1) embedding"
            )
        head = self.head
        bias = None if head.bias is None else head.bias.data
        scores = self.task.infer_scores(by_role[0], by_role[1], head.weight.data, bias)
        yield edge_index, np.asarray(scores, dtype=np.float32)
