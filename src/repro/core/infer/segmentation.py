"""Hierarchical model segmentation (§3.4, step 1).

"A K-layer GNN model is split into K+1 slices in terms of the model
hierarchy: the kth slice consists of all parameters of the kth GNN layer,
while the K+1th slice consists of all parameters of the final prediction
model."

A :class:`ModelSlice` is self-contained and picklable — (kind, constructor
config, state) — so a MapReduce reducer can load exactly its slice without
the rest of the model, mirroring how the production system ships slices to
reducer processes.

The state travels one of two ways:

* **pickled** — ``state`` holds the parameter arrays and rides inside every
  pickled reducer (the original behavior; fine for serial/thread backends,
  where "shipping" is a reference copy);
* **broadcast** — :func:`broadcast_slices` publishes every slice's arrays
  into one shared-memory slab (:class:`~repro.ps.shm.SlabBroadcast`) and the
  slice carries only a :class:`~repro.ps.shm.SlabSlice` locator.  A reducer
  pickled to a worker process then contains *zero* parameter bytes;
  ``materialize()`` attaches the slab (cached per process) and loads the
  layer from layout views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.gnn.base import GNNModel
from repro.nn.gnn.registry import build_layer
from repro.ps.shm import SlabBroadcast, SlabSlice

__all__ = ["ModelSlice", "broadcast_slices", "segment_model"]


@dataclass
class ModelSlice:
    """One slice of a segmented model.

    Exactly one of ``state`` (inline parameter arrays) and ``locator``
    (shared-memory reference) is set.
    """

    index: int
    kind: str
    config: dict
    state: dict[str, np.ndarray] | None = None
    locator: SlabSlice | None = None

    def __post_init__(self):
        if (self.state is None) == (self.locator is None):
            raise ValueError("ModelSlice needs exactly one of state / locator")

    def materialize(self):
        """Rebuild the runnable layer (reducer-side "load its model slice").

        Locator-backed slices attach the broadcast slab here; the layer
        copies the values out of the slab views (``load_state_dict``), so
        the materialized layer outlives the slab.
        """
        state = self.state if self.state is not None else self.locator.state()
        return build_layer(self.kind, self.config, state)

    @property
    def is_prediction(self) -> bool:
        return self.kind == "dense_head"

    def num_parameters(self) -> int:
        if self.state is None:
            return self.locator.num_values()
        return int(sum(v.size for v in self.state.values()))


def segment_model(model: GNNModel) -> list[ModelSlice]:
    """Split a trained model into its K+1 slices."""
    slices = [
        ModelSlice(i, kind, config, state)
        for i, (kind, config, state) in enumerate(model.layer_slices())
    ]
    if not slices or not slices[-1].is_prediction:
        raise ValueError("model segmentation must end with the prediction slice")
    return slices


def broadcast_slices(
    slices: list[ModelSlice],
) -> tuple[SlabBroadcast, list[ModelSlice]]:
    """Publish every slice's state into one shared-memory slab.

    Returns the owning :class:`~repro.ps.shm.SlabBroadcast` (the caller
    must ``close()`` it — typically in a ``finally`` — to unlink the slab)
    plus locator-backed twins of the input slices, in order.
    """
    broadcast = SlabBroadcast([s.state for s in slices])
    located = [
        ModelSlice(s.index, s.kind, s.config, locator=broadcast.slice(i))
        for i, s in enumerate(slices)
    ]
    return broadcast, located
