"""Hierarchical model segmentation (§3.4, step 1).

"A K-layer GNN model is split into K+1 slices in terms of the model
hierarchy: the kth slice consists of all parameters of the kth GNN layer,
while the K+1th slice consists of all parameters of the final prediction
model."

A :class:`ModelSlice` is self-contained and picklable — (kind, constructor
config, state dict) — so a MapReduce reducer can load exactly its slice
without the rest of the model, mirroring how the production system ships
slices to reducer processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.gnn.base import GNNModel
from repro.nn.gnn.registry import build_layer

__all__ = ["ModelSlice", "segment_model"]


@dataclass
class ModelSlice:
    """One slice of a segmented model."""

    index: int
    kind: str
    config: dict
    state: dict[str, np.ndarray]

    def materialize(self):
        """Rebuild the runnable layer (reducer-side "load its model slice")."""
        return build_layer(self.kind, self.config, self.state)

    @property
    def is_prediction(self) -> bool:
        return self.kind == "dense_head"

    def num_parameters(self) -> int:
        return int(sum(v.size for v in self.state.values()))


def segment_model(model: GNNModel) -> list[ModelSlice]:
    """Split a trained model into its K+1 slices."""
    slices = [
        ModelSlice(i, kind, config, state)
        for i, (kind, config, state) in enumerate(model.layer_slices())
    ]
    if not slices or not slices[-1].is_prediction:
        raise ValueError("model segmentation must end with the prediction slice")
    return slices
