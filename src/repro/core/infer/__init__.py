"""GraphInfer: distributed GNN inference over huge graphs (§3.4).

A trained K-layer model is split into K+1 slices (hierarchical model
segmentation); K MapReduce Reduce rounds then push *every* node's embedding
up one layer per round — merging each node's in-edge neighbor embeddings,
applying the slice, propagating via out-edges — and a final round applies
the prediction slice.  "There is no repetition of embedding inference in the
above pipeline", unlike the original GraphFeature-based module
(:mod:`repro.baselines.original`) that Table 5 compares against.
"""

from repro.core.infer.segmentation import ModelSlice, broadcast_slices, segment_model
from repro.core.infer.pipeline import (
    EmbeddingReducer,
    GraphInferConfig,
    GraphInferResult,
    InferPartialReducer,
    InferPrepareReducer,
    PredictionReducer,
    ReceptiveField,
    graph_infer,
)

__all__ = [
    "ModelSlice",
    "broadcast_slices",
    "segment_model",
    "EmbeddingReducer",
    "GraphInferConfig",
    "GraphInferResult",
    "InferPartialReducer",
    "InferPrepareReducer",
    "PredictionReducer",
    "ReceptiveField",
    "graph_infer",
]
