"""AGL's three core modules (the paper's primary contribution, §3):

* :mod:`repro.core.graphflat` — distributed k-hop neighborhood generation;
* :mod:`repro.core.trainer` — PS-based training with pipeline / pruning /
  edge-partitioning optimizations;
* :mod:`repro.core.infer` — MapReduce inference via model segmentation.
"""
