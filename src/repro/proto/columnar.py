"""Columnar shard frame — the mmap-able training-dataset layout.

The row format (``repro.proto.stream``) frames every sample as its own byte
string, so a trainer must run the varint decoder record by record in a
single GIL-bound thread before it can build a batch — the storage layer caps
the trainer no matter how many cores exist.  This module is the columnar
alternative (the GraphStorm/GiGL route): one shard holds *stacked* matrices
for a whole block of samples plus int64 offset tables, so a reader mmaps the
file once and materialises any sample — or a whole batch — by slicing,
with zero per-element decoding.

File layout::

    "AGLC" | u8 version | u8 pad | u32le header_len | u32le header_crc
    header JSON (utf-8)            <- record count, kind, dtype/shape table
    zero padding to a 64-byte boundary
    array blocks, each 64-byte aligned, raw little-endian

The header is deterministic JSON (sorted keys) carrying ``num_records``,
the shard ``kind`` and, per array, ``name``/``dtype``/``shape``/``offset``
— everything a reader needs to build zero-copy views over one mmap of the
file.  Two kinds exist:

* ``samples`` — GraphFlat training triples.  Per-record arrays
  (``sample_ids``, ``labels``) are indexed directly; ragged arrays
  (``node_ids``/``hops``/``x``, ``edge_*``, ``target_ids``) are stacked and
  sliced through ``*_offsets`` prefix-sum tables.
* ``predictions`` — GraphInfer output: ``node_ids`` plus a stacked
  ``scores`` matrix.

Round-trip fidelity is the contract: :meth:`ColumnarShard.iter_wire`
re-encodes every record through the row codec and is byte-identical to what
the row layout would have written for the same records — which is what lets
``DistFileSystem.read_dataset`` stay layout-transparent.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.graph.subgraph import GraphFeature
from repro.proto.codec import (
    CodecError,
    decode_prediction,
    decode_sample,
    encode_prediction,
    encode_sample,
)

__all__ = [
    "SHARD_MAGIC",
    "ColumnarShard",
    "shard_record_count",
    "write_prediction_shard",
    "write_sample_shard",
]

SHARD_MAGIC = b"AGLC"
_VERSION = 1
_TYPED_VERSION = 2
"""Header version gate for the task-layer extensions: shards carrying an
edge-level task tag or per-type (heterogeneous) blocks are written as
version 2; plain node-classification shards stay version 1 — byte-identical
to the pre-task format (tested).  The reader accepts both."""
_ALIGN = 64
_HEAD = struct.Struct("<4sBxII")  # magic, version, pad, header_len, header_crc

_LABEL_KINDS = ("none", "int", "vector")


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _write_atomic(path: str | Path, data: bytes) -> None:
    """Commit a shard via temp file + ``os.replace`` so a writer that dies
    mid-write (a reducer-owned sink task, say) can never leave a truncated
    shard under the final name — re-executions simply overwrite."""
    final = Path(path)
    tmp = final.with_name(f"{final.name}.tmp{os.getpid()}")
    tmp.write_bytes(data)
    os.replace(tmp, final)


def _pack(
    arrays: list[tuple[str, np.ndarray]],
    kind: str,
    meta: dict,
    num_records: int,
    version: int = _VERSION,
) -> bytes:
    """Assemble header + aligned blocks into one shard byte string."""
    blocks: list[tuple[dict, bytes]] = []
    for name, arr in arrays:
        arr = np.ascontiguousarray(arr)
        if arr.dtype.byteorder == ">":  # shards are little-endian on disk
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        blocks.append(
            (
                {"name": name, "dtype": arr.dtype.str, "shape": list(arr.shape)},
                arr.tobytes(),
            )
        )
    # Two passes: header length depends on offsets, offsets depend on header
    # length.  Fix the header size with a draft that has final digit widths
    # (offsets only grow monotonically, so pad the draft with max offsets).
    def render(offsets: list[int]) -> bytes:
        table = [dict(spec, offset=off) for (spec, _), off in zip(blocks, offsets)]
        header = {
            "arrays": table,
            "kind": kind,
            "meta": meta,
            "num_records": int(num_records),
        }
        return json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")

    offsets = [0] * len(blocks)
    raw = render(offsets)
    for _ in range(4):  # converges once offsets' digit counts stabilise
        data_start = _align(_HEAD.size + len(raw))
        cursor = data_start
        new_offsets = []
        for _, payload in blocks:
            new_offsets.append(cursor)
            cursor = _align(cursor + len(payload))
        new_raw = render(new_offsets)
        if len(new_raw) == len(raw) and new_offsets == offsets:
            raw = new_raw
            break
        offsets, raw = new_offsets, new_raw
    else:  # pragma: no cover - defensive; 4 passes always suffice
        raise RuntimeError("columnar header failed to stabilise")

    out = bytearray(_HEAD.pack(SHARD_MAGIC, version, len(raw), zlib.crc32(raw) & 0xFFFFFFFF))
    out += raw
    for (_, payload), off in zip(blocks, offsets):
        out += b"\x00" * (off - len(out))
        out += payload
    return bytes(out)


# ------------------------------------------------------------------ writers
def write_sample_shard(path: str | Path, samples, task: str | None = None) -> int:
    """Write GraphFlat training triples as one columnar shard.

    ``samples`` is an iterable of either wire-format ``bytes`` records or
    decoded ``(target_id, label, GraphFeature)`` triples — GraphFlat hands
    the triples straight from its final reduce, skipping the per-sample
    re-framing pass entirely.  Returns the record count.

    ``task`` tags the shard with a non-default task name (edge-level
    tasks key records by target-edge index, not node id).  A task tag or
    typed (heterogeneous) per-record blocks gate the shard to header
    version 2; plain node-classification shards stay byte-identical v1.
    """
    triples = [
        decode_sample(s) if isinstance(s, (bytes, bytearray)) else s for s in samples
    ]
    n = len(triples)
    sample_ids = np.asarray([int(t) for t, _, _ in triples], dtype=np.int64)

    label_kind = "none"
    labels: np.ndarray | None = None
    if n and triples[0][1] is not None:
        if any(lbl is None for _, lbl, _ in triples):
            raise ValueError("columnar shard mixes labeled and unlabeled samples")
        if np.ndim(triples[0][1]) == 0:
            label_kind = "int"
            labels = np.asarray([int(lbl) for _, lbl, _ in triples], dtype=np.int64)
        else:
            label_kind = "vector"
            labels = np.stack(
                [np.atleast_1d(np.asarray(lbl, dtype=np.float32)) for _, lbl, _ in triples]
            )
    elif any(lbl is not None for _, lbl, _ in triples):
        raise ValueError("columnar shard mixes labeled and unlabeled samples")

    gfs = [gf for _, _, gf in triples]
    fn = gfs[0].feature_dim if gfs else 0
    fe = gfs[0].edge_feature_dim if gfs else 0
    if any(gf.feature_dim != fn for gf in gfs):
        raise ValueError("columnar shard requires a uniform node feature dim")
    if any(gf.edge_feature_dim != fe for gf in gfs):
        raise ValueError("columnar shard requires a uniform edge feature dim")

    def offsets(counts) -> np.ndarray:
        return np.concatenate([[0], np.cumsum(counts, dtype=np.int64)]).astype(np.int64)

    def stack(rows, dtype, width=None):
        if rows:
            return np.concatenate(rows).astype(dtype, copy=False)
        shape = (0,) if width is None else (0, width)
        return np.zeros(shape, dtype=dtype)

    arrays: list[tuple[str, np.ndarray]] = [
        ("sample_ids", sample_ids),
        ("target_offsets", offsets([len(gf.target_ids) for gf in gfs])),
        ("target_ids", stack([gf.target_ids for gf in gfs], np.int64)),
        ("node_offsets", offsets([gf.num_nodes for gf in gfs])),
        ("node_ids", stack([gf.node_ids for gf in gfs], np.int64)),
        ("hops", stack([gf.hops for gf in gfs], np.int64)),
        ("x", stack([gf.x for gf in gfs], np.float32, width=fn)),
        ("edge_offsets", offsets([gf.num_edges for gf in gfs])),
        ("edge_src", stack([gf.edge_src for gf in gfs], np.int64)),
        ("edge_dst", stack([gf.edge_dst for gf in gfs], np.int64)),
        ("edge_weight", stack([gf.edge_weight for gf in gfs], np.float32)),
    ]
    if fe:
        if any(gf.edge_feat is None for gf in gfs):
            raise ValueError("columnar shard mixes edge-featured and bare samples")
        arrays.append(("edge_feat", stack([gf.edge_feat for gf in gfs], np.float32, width=fe)))
    typed_nodes = bool(gfs) and gfs[0].node_type is not None
    typed_edges = bool(gfs) and gfs[0].edge_type is not None
    if typed_nodes:
        if any(gf.node_type is None for gf in gfs):
            raise ValueError("columnar shard mixes typed and untyped samples")
        arrays.append(("node_type", stack([gf.node_type for gf in gfs], np.int64)))
    if typed_edges:
        if any(gf.edge_type is None for gf in gfs):
            raise ValueError("columnar shard mixes typed and untyped samples")
        arrays.append(("edge_type", stack([gf.edge_type for gf in gfs], np.int64)))
    if labels is not None:
        arrays.insert(1, ("labels", labels))

    meta = {
        "edge_feature_dim": int(fe),
        "feature_dim": int(fn),
        "label": label_kind,
        "label_dim": 0 if label_kind != "vector" else int(labels.shape[1]),
    }
    # Extended (v2) header fields only when the extension is actually used —
    # the default node-classification shard must not change by a byte.
    extended = typed_nodes or typed_edges or (
        task is not None and task != "node_classification"
    )
    if task is not None and task != "node_classification":
        meta["task"] = task
    if typed_nodes:
        meta["num_node_types"] = int(
            max(int(gf.node_type.max(initial=-1)) for gf in gfs) + 1
        )
    if typed_edges:
        meta["num_edge_types"] = int(
            max(int(gf.edge_type.max(initial=-1)) for gf in gfs) + 1
        )
    version = _TYPED_VERSION if extended else _VERSION
    _write_atomic(path, _pack(arrays, "samples", meta, n, version=version))
    return n


def write_prediction_shard(path: str | Path, predictions) -> int:
    """Write GraphInfer ``(node_id, scores)`` records as one columnar shard."""
    records = [
        decode_prediction(p) if isinstance(p, (bytes, bytearray)) else p
        for p in predictions
    ]
    n = len(records)
    node_ids = np.asarray([int(v) for v, _ in records], dtype=np.int64)
    dim = len(np.ravel(records[0][1])) if records else 0
    scores = (
        np.stack([np.asarray(s, dtype=np.float32).ravel() for _, s in records])
        if records
        else np.zeros((0, 0), dtype=np.float32)
    )
    arrays = [("node_ids", node_ids), ("scores", scores)]
    meta = {"score_dim": int(dim)}
    _write_atomic(path, _pack(arrays, "predictions", meta, n))
    return n


# ------------------------------------------------------------------- reader
def _read_header(path: Path) -> tuple[dict, int]:
    """Parse and CRC-check the shard header; returns ``(header, data_len)``."""
    with open(path, "rb") as fh:
        head = fh.read(_HEAD.size)
        if len(head) != _HEAD.size:
            raise CodecError(f"{path}: truncated columnar shard header")
        magic, version, hlen, hcrc = _HEAD.unpack(head)
        if magic != SHARD_MAGIC:
            raise CodecError(f"{path}: bad magic — not a columnar shard")
        if version not in (_VERSION, _TYPED_VERSION):
            raise CodecError(f"{path}: unsupported columnar shard version {version}")
        raw = fh.read(hlen)
    if len(raw) != hlen or zlib.crc32(raw) & 0xFFFFFFFF != hcrc:
        raise CodecError(f"{path}: corrupt columnar shard header")
    return json.loads(raw), path.stat().st_size


def shard_record_count(path: str | Path) -> int:
    """Record count from the shard header alone — O(header), not O(bytes)."""
    header, _ = _read_header(Path(path))
    return int(header["num_records"])


class ColumnarShard:
    """Zero-copy reader over one columnar shard file.

    The file is mmap'd once; every array is a read-only view into that
    mapping, so opening a shard costs the header parse and nothing else.
    ``sample(i)`` / ``batch_samples(rows)`` build :class:`GraphFeature`
    objects whose arrays alias the mapping (vectorized decode: pure
    slicing, no varint loops).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        header, size = _read_header(self.path)
        self.kind: str = header["kind"]
        self.num_records: int = int(header["num_records"])
        self.meta: dict = header["meta"]
        self._specs = {spec["name"]: spec for spec in header["arrays"]}
        for spec in self._specs.values():
            nbytes = int(np.prod(spec["shape"])) * np.dtype(spec["dtype"]).itemsize
            if spec["offset"] + nbytes > size:
                raise CodecError(f"{self.path}: array {spec['name']!r} truncated")
        self._buf = (
            np.memmap(self.path, dtype=np.uint8, mode="r")
            if size
            else np.zeros(0, dtype=np.uint8)
        )
        self._views: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return self.num_records

    def array(self, name: str) -> np.ndarray:
        """Read-only zero-copy view of a named block."""
        view = self._views.get(name)
        if view is None:
            spec = self._specs[name]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            nbytes = int(np.prod(shape)) * dtype.itemsize
            start = spec["offset"]
            # .view(np.ndarray) drops the memmap subclass so downstream
            # pickling (process-pool prefetch) serialises plain arrays.
            view = (
                self._buf[start : start + nbytes]
                .view(np.ndarray)
                .view(dtype)
                .reshape(shape)
            )
            self._views[name] = view
        return view

    @property
    def label_kind(self) -> str:
        return self.meta.get("label", "none")

    @property
    def task(self) -> str:
        """Recorded task tag; pre-task (v1) shards default to the only
        task that existed when they were written."""
        return self.meta.get("task", "node_classification")

    def _check_kind(self, expected: str) -> None:
        if self.kind != expected:
            raise CodecError(f"{self.path}: shard holds {self.kind!r}, not {expected!r}")

    # ------------------------------------------------------------- samples
    def label(self, i: int):
        self._check_kind("samples")
        if self.label_kind == "none":
            return None
        if self.label_kind == "int":
            return int(self.array("labels")[i])
        return self.array("labels")[i]

    def graph_feature(self, i: int) -> GraphFeature:
        self._check_kind("samples")
        t = self.array("target_offsets")
        n = self.array("node_offsets")
        e = self.array("edge_offsets")
        tl, th = int(t[i]), int(t[i + 1])
        nl, nh = int(n[i]), int(n[i + 1])
        el, eh = int(e[i]), int(e[i + 1])
        fe = int(self.meta.get("edge_feature_dim", 0))
        return GraphFeature(
            self.array("target_ids")[tl:th],
            self.array("node_ids")[nl:nh],
            self.array("x")[nl:nh],
            self.array("hops")[nl:nh],
            self.array("edge_src")[el:eh],
            self.array("edge_dst")[el:eh],
            self.array("edge_feat")[el:eh] if fe else None,
            self.array("edge_weight")[el:eh],
            self.array("node_type")[nl:nh] if "node_type" in self._specs else None,
            self.array("edge_type")[el:eh] if "edge_type" in self._specs else None,
        )

    def sample(self, i: int):
        """Decoded ``(target_id, label, GraphFeature)`` triple for row ``i``."""
        if not 0 <= i < self.num_records:
            raise IndexError(f"shard has {self.num_records} records")
        return int(self.array("sample_ids")[i]), self.label(i), self.graph_feature(i)

    def batch_samples(self, rows) -> list:
        """Triples for a whole batch of rows — one slicing pass per sample."""
        return [self.sample(int(i)) for i in rows]

    # --------------------------------------------------------- predictions
    def prediction(self, i: int) -> tuple[int, np.ndarray]:
        self._check_kind("predictions")
        return int(self.array("node_ids")[i]), self.array("scores")[i]

    # -------------------------------------------------------------- compat
    def iter_wire(self):
        """Yield every record re-encoded to its row wire form.

        Byte-identical to what the row layout would hold for the same
        records — the compatibility bridge that keeps ``read_dataset``
        layout-transparent (tested).
        """
        if self.kind == "samples":
            for i in range(self.num_records):
                target_id, label, gf = self.sample(i)
                yield encode_sample(target_id, label, gf)
        elif self.kind == "predictions":
            for i in range(self.num_records):
                node_id, scores = self.prediction(i)
                yield encode_prediction(node_id, scores)
        else:  # pragma: no cover - defensive
            raise CodecError(f"unknown columnar shard kind {self.kind!r}")
