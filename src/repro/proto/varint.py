"""LEB128 varints with protobuf-style ZigZag signed mapping.

The wire format mirrors protocol buffers: unsigned integers are encoded 7
bits per byte, least-significant group first, with the high bit of each byte
flagging continuation.  Signed integers are ZigZag-mapped first so that small
negative numbers stay small on the wire.
"""

from __future__ import annotations

__all__ = ["encode_unsigned", "decode_unsigned", "encode_signed", "decode_signed"]

_MAX_VARINT_BYTES = 10  # enough for 64-bit payloads


def encode_unsigned(value: int) -> bytes:
    """Encode a non-negative integer as a varint."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_unsigned(buf: bytes | memoryview, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    pos = offset
    for _ in range(_MAX_VARINT_BYTES):
        if pos >= len(buf):
            raise ValueError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise ValueError("varint longer than 10 bytes (corrupt stream)")


def encode_signed(value: int) -> bytes:
    """ZigZag-encode a signed integer then varint it."""
    return encode_unsigned((value << 1) ^ (value >> 63) if value < 0 else value << 1)


def decode_signed(buf: bytes | memoryview, offset: int = 0) -> tuple[int, int]:
    """Inverse of :func:`encode_signed`."""
    raw, pos = decode_unsigned(buf, offset)
    return (raw >> 1) ^ -(raw & 1), pos
