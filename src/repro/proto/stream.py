"""Framed record streams: many byte records in one file, with checksums.

GraphFlat's output is a set of DFS files each holding thousands of flattened
samples.  Records are framed as ``varint(length) | varint(crc32) | payload``
so a reader can detect truncation/corruption (industrial pipelines care: a
half-written shard after a worker failure must not silently train the model
on garbage).
"""

from __future__ import annotations

import io
import zlib
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.proto.varint import decode_unsigned, encode_unsigned

__all__ = ["write_records", "read_records", "StreamCorruptionError"]


class StreamCorruptionError(IOError):
    """A framed record failed its CRC or was truncated."""


def write_records(target, records: Iterable[bytes]) -> int:
    """Write framed ``records`` to ``target`` (path or binary file object).

    Returns the number of records written.
    """
    if isinstance(target, (str, Path)):
        with open(target, "wb") as fh:
            return write_records(fh, records)
    count = 0
    for rec in records:
        target.write(encode_unsigned(len(rec)))
        target.write(encode_unsigned(zlib.crc32(rec) & 0xFFFFFFFF))
        target.write(rec)
        count += 1
    return count


def read_records(source) -> Iterator[bytes]:
    """Yield framed records from ``source`` (path, bytes, or file object)."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            yield from read_records(fh.read())
        return
    if isinstance(source, io.IOBase):
        yield from read_records(source.read())
        return
    buf = memoryview(source)
    offset = 0
    while offset < len(buf):
        length, offset = decode_unsigned(buf, offset)
        crc, offset = decode_unsigned(buf, offset)
        if offset + length > len(buf):
            raise StreamCorruptionError(
                f"record of {length} bytes truncated at offset {offset}"
            )
        payload = bytes(buf[offset : offset + length])
        offset += length
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise StreamCorruptionError(f"CRC mismatch at offset {offset - length}")
        yield payload
