"""Binary flattening of GraphFeatures — the paper's "protobuf strings".

GraphFlat stores each k-hop neighborhood as a compact, self-contained byte
string on the distributed file system (§3.2.1 "Storing").  Protobuf itself is
not available offline, so this package implements an equivalent wire format
from scratch: varint-coded headers + raw little-endian tensors, plus a framed
record stream for files holding many records.
"""

from repro.proto.varint import (
    decode_signed,
    decode_unsigned,
    encode_signed,
    encode_unsigned,
)
from repro.proto.codec import (
    CodecError,
    decode_graph_feature,
    decode_prediction,
    decode_sample,
    encode_graph_feature,
    encode_prediction,
    encode_sample,
)
from repro.proto.stream import read_records, write_records
from repro.proto.columnar import (
    ColumnarShard,
    shard_record_count,
    write_prediction_shard,
    write_sample_shard,
)
from repro.proto.framing import (
    FrameCorruptionError,
    decode_value,
    encode_value,
    iter_frames,
    read_stream_header,
    register_record,
    write_frame,
    write_stream_header,
)

__all__ = [
    "encode_unsigned",
    "decode_unsigned",
    "encode_signed",
    "decode_signed",
    "encode_graph_feature",
    "decode_graph_feature",
    "encode_sample",
    "decode_sample",
    "encode_prediction",
    "decode_prediction",
    "CodecError",
    "read_records",
    "write_records",
    "ColumnarShard",
    "shard_record_count",
    "write_prediction_shard",
    "write_sample_shard",
    "FrameCorruptionError",
    "encode_value",
    "decode_value",
    "register_record",
    "iter_frames",
    "write_frame",
    "write_stream_header",
    "read_stream_header",
]
