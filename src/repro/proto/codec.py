"""Wire codec for :class:`~repro.graph.subgraph.GraphFeature` records.

Layout (all multi-byte integers are varints, floats are raw little-endian
float32 blocks so numpy can decode them zero-copy):

```
magic "AGLF" | version | flags | t | n | m | fn | fe
  target_ids  : t signed varints
  node_ids    : n signed varints (delta-coded against previous id)
  hops        : n unsigned varints
  edge_src    : m unsigned varints (local indices)
  edge_dst    : m unsigned varints
  x           : n*fn float32
  edge_weight : m float32
  edge_feat   : m*fe float32            (only if flags & HAS_EDGE_FEAT)
  node_type   : n unsigned varints      (v2 only, if flags & HAS_NODE_TYPE)
  edge_type   : m unsigned varints      (v2 only, if flags & HAS_EDGE_TYPE)
```

Versioning: untyped records encode as version 1 — byte-identical to the
pre-typed format; heterogeneous records (typed nodes/edges) gate their
extra blocks behind version 2 + flag bits.  The decoder accepts both.

A *sample* is the training triple ``<TargetedNodeId, Label, GraphFeature>``
of §3.3.1; labels may be absent (inference), an int class id, or a float
vector (multi-label tasks such as PPI).
"""

from __future__ import annotations

import numpy as np

from repro.graph.subgraph import GraphFeature
from repro.proto.varint import decode_signed, decode_unsigned, encode_signed, encode_unsigned

__all__ = [
    "CodecError",
    "encode_graph_feature",
    "decode_graph_feature",
    "encode_sample",
    "decode_sample",
    "encode_prediction",
    "decode_prediction",
]

_MAGIC = b"AGLF"
_VERSION = 1
_TYPED_VERSION = 2
_HAS_EDGE_FEAT = 1 << 0
_HAS_NODE_TYPE = 1 << 1
_HAS_EDGE_TYPE = 1 << 2

_LABEL_NONE = 0
_LABEL_INT = 1
_LABEL_VECTOR = 2


class CodecError(ValueError):
    """Raised when a byte string cannot be decoded as a GraphFeature."""


def _encode_signed_block(values: np.ndarray, delta: bool = False) -> bytes:
    out = bytearray()
    prev = 0
    for v in values.tolist():
        if delta:
            out += encode_signed(v - prev)
            prev = v
        else:
            out += encode_signed(v)
    return bytes(out)


def _decode_signed_block(
    buf: memoryview, offset: int, count: int, delta: bool = False
) -> tuple[np.ndarray, int]:
    values = np.empty(count, dtype=np.int64)
    prev = 0
    for i in range(count):
        v, offset = decode_signed(buf, offset)
        if delta:
            v += prev
            prev = v
        values[i] = v
    return values, offset


def _encode_unsigned_block(values: np.ndarray) -> bytes:
    out = bytearray()
    for v in values.tolist():
        out += encode_unsigned(v)
    return bytes(out)


def _decode_unsigned_block(buf: memoryview, offset: int, count: int) -> tuple[np.ndarray, int]:
    values = np.empty(count, dtype=np.int64)
    for i in range(count):
        v, offset = decode_unsigned(buf, offset)
        values[i] = v
    return values, offset


def _decode_floats(buf: memoryview, offset: int, count: int) -> tuple[np.ndarray, int]:
    nbytes = count * 4
    if offset + nbytes > len(buf):
        raise CodecError("truncated float block")
    arr = np.frombuffer(buf[offset : offset + nbytes], dtype="<f4").copy()
    return arr, offset + nbytes


def encode_graph_feature(gf: GraphFeature) -> bytes:
    """Flatten a GraphFeature into its wire form."""
    typed = gf.node_type is not None or gf.edge_type is not None
    out = bytearray(_MAGIC)
    out += encode_unsigned(_TYPED_VERSION if typed else _VERSION)
    flags = _HAS_EDGE_FEAT if gf.edge_feat is not None else 0
    if gf.node_type is not None:
        flags |= _HAS_NODE_TYPE
    if gf.edge_type is not None:
        flags |= _HAS_EDGE_TYPE
    out += encode_unsigned(flags)
    out += encode_unsigned(len(gf.target_ids))
    out += encode_unsigned(gf.num_nodes)
    out += encode_unsigned(gf.num_edges)
    out += encode_unsigned(gf.feature_dim)
    out += encode_unsigned(gf.edge_feature_dim)

    out += _encode_signed_block(gf.target_ids)
    out += _encode_signed_block(gf.node_ids, delta=True)
    out += _encode_unsigned_block(gf.hops)
    out += _encode_unsigned_block(gf.edge_src)
    out += _encode_unsigned_block(gf.edge_dst)
    out += np.ascontiguousarray(gf.x, dtype="<f4").tobytes()
    out += np.ascontiguousarray(gf.edge_weight, dtype="<f4").tobytes()
    if gf.edge_feat is not None:
        out += np.ascontiguousarray(gf.edge_feat, dtype="<f4").tobytes()
    if gf.node_type is not None:
        out += _encode_unsigned_block(gf.node_type)
    if gf.edge_type is not None:
        out += _encode_unsigned_block(gf.edge_type)
    return bytes(out)


def decode_graph_feature(data: bytes, offset: int = 0) -> tuple[GraphFeature, int]:
    """Inverse of :func:`encode_graph_feature`; returns ``(gf, next_offset)``."""
    buf = memoryview(data)
    if bytes(buf[offset : offset + 4]) != _MAGIC:
        raise CodecError("bad magic — not a GraphFeature record")
    offset += 4
    version, offset = decode_unsigned(buf, offset)
    if version not in (_VERSION, _TYPED_VERSION):
        raise CodecError(f"unsupported GraphFeature version {version}")
    flags, offset = decode_unsigned(buf, offset)
    if version == _VERSION and flags & (_HAS_NODE_TYPE | _HAS_EDGE_TYPE):
        raise CodecError("typed flag bits require GraphFeature version 2")
    t, offset = decode_unsigned(buf, offset)
    n, offset = decode_unsigned(buf, offset)
    m, offset = decode_unsigned(buf, offset)
    fn, offset = decode_unsigned(buf, offset)
    fe, offset = decode_unsigned(buf, offset)

    target_ids, offset = _decode_signed_block(buf, offset, t)
    node_ids, offset = _decode_signed_block(buf, offset, n, delta=True)
    hops, offset = _decode_unsigned_block(buf, offset, n)
    edge_src, offset = _decode_unsigned_block(buf, offset, m)
    edge_dst, offset = _decode_unsigned_block(buf, offset, m)
    x_flat, offset = _decode_floats(buf, offset, n * fn)
    weight, offset = _decode_floats(buf, offset, m)
    edge_feat = None
    if flags & _HAS_EDGE_FEAT:
        ef_flat, offset = _decode_floats(buf, offset, m * fe)
        edge_feat = ef_flat.reshape(m, fe)
    node_type = edge_type = None
    if flags & _HAS_NODE_TYPE:
        node_type, offset = _decode_unsigned_block(buf, offset, n)
    if flags & _HAS_EDGE_TYPE:
        edge_type, offset = _decode_unsigned_block(buf, offset, m)
    try:
        gf = GraphFeature(
            target_ids,
            node_ids,
            x_flat.reshape(n, fn),
            hops,
            edge_src,
            edge_dst,
            edge_feat,
            weight,
            node_type,
            edge_type,
        )
    except ValueError as exc:
        raise CodecError(f"decoded record is inconsistent: {exc}") from exc
    return gf, offset


def encode_sample(target_id: int, label, gf: GraphFeature) -> bytes:
    """Encode the training triple ``<TargetedNodeId, Label, GraphFeature>``."""
    out = bytearray()
    out += encode_signed(int(target_id))
    if label is None:
        out += encode_unsigned(_LABEL_NONE)
    elif np.isscalar(label) and not isinstance(label, (float, np.floating)):
        out += encode_unsigned(_LABEL_INT)
        out += encode_signed(int(label))
    else:
        vec = np.atleast_1d(np.asarray(label, dtype=np.float32))
        out += encode_unsigned(_LABEL_VECTOR)
        out += encode_unsigned(len(vec))
        out += vec.astype("<f4").tobytes()
    out += encode_graph_feature(gf)
    return bytes(out)


def decode_sample(data: bytes) -> tuple[int, int | np.ndarray | None, GraphFeature]:
    """Inverse of :func:`encode_sample`."""
    buf = memoryview(data)
    target_id, offset = decode_signed(buf, 0)
    kind, offset = decode_unsigned(buf, offset)
    if kind == _LABEL_NONE:
        label = None
    elif kind == _LABEL_INT:
        label, offset = decode_signed(buf, offset)
    elif kind == _LABEL_VECTOR:
        length, offset = decode_unsigned(buf, offset)
        label, offset = _decode_floats(buf, offset, length)
    else:
        raise CodecError(f"unknown label kind {kind}")
    gf, offset = decode_graph_feature(data, offset)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after sample")
    return target_id, label, gf


def encode_prediction(node_id: int, scores: np.ndarray) -> bytes:
    """Encode one GraphInfer output record ``<NodeId, score vector>``."""
    out = bytearray()
    out += encode_signed(int(node_id))
    vec = np.asarray(scores, dtype="<f4").ravel()
    out += encode_unsigned(len(vec))
    out += vec.tobytes()
    return bytes(out)


def decode_prediction(data: bytes) -> tuple[int, np.ndarray]:
    """Inverse of :func:`encode_prediction`.  Strict: the record must hold
    exactly the declared float block — truncated or trailing bytes raise
    (kind-sniffing relies on corrupt records *not* parsing)."""
    node_id, offset = decode_signed(data, 0)
    length, offset = decode_unsigned(data, offset)
    if offset + 4 * length != len(data):
        raise CodecError(
            f"prediction record declares {length} scores but has "
            f"{len(data) - offset} payload bytes"
        )
    scores = np.frombuffer(data[offset : offset + 4 * length], dtype="<f4").copy()
    return node_id, scores
