"""Shuffle-record codec: tagged binary values + length-prefixed frames.

AGL's C++ GraphFlat avoids Python-style per-object serialization by shuffling
flat protobuf records (§3.2).  This module is the equivalent discipline for
our spill shuffle: a compact, self-describing binary encoding for the values
that flow through MapReduce rounds, written to disk as length-prefixed
*frames* that can be read back one record at a time (streamed reduce-side
merge) instead of unpickling a whole partition into RAM.

Two layers:

* **Value codec** — ``encode_value`` / ``decode_value`` handle ``None``,
  bools, ints (ZigZag varints), floats (raw little-endian float64 — lossless
  for any Python float), strings, bytes, tuples, lists and numpy arrays
  (dtype string + shape + raw little-endian block, so float matrices are one
  contiguous write instead of a pickled object graph).  Pipeline-specific
  record types (GraphFlat's ``SubgraphInfo``/``InEdgeInfo``/..., GraphInfer's
  embedding records) plug in through :func:`register_record`, which is how
  the codec stays layered: ``repro.proto`` never imports ``repro.core`` —
  the modules that *define* a record register its wire form.

* **Frame streams** — a spill file is ``AGLS | version | codec-id`` followed
  by ``varint(len(key)) key varint(len(payload)) payload crc32`` frames.
  The key is stored as its canonical shuffle encoding
  (``repro.mapreduce.shuffle.key_bytes``), so reduce-side merge can order
  records without decoding payloads, and :func:`iter_frames` reads through a
  bounded buffer — peak memory is one frame, not one partition.  The
  trailing CRC32 covers key *and* payload (a flipped key byte would silently
  regroup records) and is verified on every read, so a corrupted or
  truncated run surfaces as :class:`FrameCorruptionError` during the k-way
  merge instead of mis-grouped reducer input — the runtime treats it as
  retryable and re-executes the reading attempt.

Round-trip fidelity is the contract: ``decode(encode(x))`` must reproduce
``x`` exactly (dtypes, dict insertion order inside records, float bits), so
a job's output is byte-identical whether its shuffle spilled pickled objects
or binary records — tests assert this for the full pipelines.
"""

from __future__ import annotations

import struct
import zlib
from collections.abc import Callable
from typing import NamedTuple

import numpy as np

from repro.proto.varint import decode_signed, decode_unsigned, encode_signed, encode_unsigned

__all__ = [
    "FrameCorruptionError",
    "STREAM_MAGIC",
    "decode_edge_fields",
    "decode_value",
    "encode_edge_fields",
    "encode_list_payload",
    "encode_value",
    "iter_frames",
    "read_frame",
    "read_stream_header",
    "register_record",
    "write_frame",
    "write_stream_header",
]

# ---------------------------------------------------------------- value tags
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_ARRAY = 0x09

_FIRST_RECORD_TAG = 0x20
"""Tags below this are reserved for the generic values above; registered
record types (GraphFlat: 0x20-0x2F, GraphInfer: 0x30-0x3F) live above it."""

_F8 = struct.Struct("<d")


class FrameCorruptionError(ValueError):
    """A spill frame or stream header failed to decode."""


class _RecordCodec(NamedTuple):
    tag: int
    cls: type
    encode: Callable  # (obj, out: bytearray) -> None
    decode: Callable  # (buf: memoryview, offset: int) -> (obj, int)


_RECORDS_BY_TAG: dict[int, _RecordCodec] = {}
_RECORDS_BY_CLS: dict[type, _RecordCodec] = {}


def register_record(tag: int, cls: type, encode: Callable, decode: Callable) -> None:
    """Register a wire form for ``cls`` under ``tag`` (idempotent per class).

    ``encode(obj, out)`` appends the record body to the ``out`` bytearray
    (nest values via :func:`encode_value`); ``decode(buf, offset)`` returns
    ``(obj, next_offset)``.  Registration lives next to the class definition,
    so any process that can *construct* the record (e.g. a worker that
    unpickled a job whose operators emit it) can also decode it.
    """
    if tag < _FIRST_RECORD_TAG or tag > 0xFF:
        raise ValueError(f"record tag must be in [{_FIRST_RECORD_TAG:#x}, 0xff], got {tag:#x}")
    existing = _RECORDS_BY_TAG.get(tag)
    if existing is not None and existing.cls is not cls:
        raise ValueError(
            f"record tag {tag:#x} already registered for {existing.cls.__name__}"
        )
    codec = _RecordCodec(tag, cls, encode, decode)
    _RECORDS_BY_TAG[tag] = codec
    _RECORDS_BY_CLS[cls] = codec


# ------------------------------------------------------------- value encoding
def _encode(value, out: bytearray) -> None:
    record = _RECORDS_BY_CLS.get(type(value))
    if record is not None:
        out.append(record.tag)
        record.encode(value, out)
    elif value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        # ZigZag varints are 64-bit on the wire; reject out-of-range ints at
        # encode time rather than letting the reduce side hit a misleading
        # "corrupt stream" error long after the spill write succeeded.
        if not -(1 << 63) <= value < (1 << 63):
            raise TypeError(
                f"int {value} exceeds the binary codec's 64-bit range; "
                "use the 'pickle' shuffle codec"
            )
        out.append(_T_INT)
        out += encode_signed(value)
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _F8.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += encode_unsigned(len(raw))
        out += raw
    elif type(value) is bytes:
        out.append(_T_BYTES)
        out += encode_unsigned(len(value))
        out += value
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        out += encode_unsigned(len(value))
        for item in value:
            _encode(item, out)
    elif type(value) is list:
        out.append(_T_LIST)
        out += encode_unsigned(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, np.ndarray):
        _encode_array(value, out)
    else:
        raise TypeError(
            f"shuffle value of type {type(value).__name__} has no binary wire "
            "form; use the 'pickle' shuffle codec or register_record() one"
        )


def _encode_array(arr: np.ndarray, out: bytearray) -> None:
    if arr.dtype.hasobject:
        raise TypeError("object-dtype arrays cannot be binary-encoded")
    # The dtype string records the byte order ('<f4', '>f8', '|b1'), and
    # tobytes() emits raw bytes in that same order — so arrays round-trip
    # dtype-exactly, big-endian included, matching the pickle codec.
    dtype_str = arr.dtype.str.encode("ascii")
    out.append(_T_ARRAY)
    out += encode_unsigned(len(dtype_str))
    out += dtype_str
    out += encode_unsigned(arr.ndim)
    for dim in arr.shape:
        out += encode_unsigned(dim)
    out += np.ascontiguousarray(arr).tobytes()


def encode_value(value) -> bytes:
    """Encode one shuffle value to its binary wire form."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def encode_list_payload(items: list[bytes]) -> bytes:
    """Assemble a list frame from *already encoded* item bodies.

    Byte-identical to ``encode_value(list_of_values)`` when each entry of
    ``items`` is ``encode_value(value)`` — this is what lets a spill writer
    buffer per-record encodings (exact byte accounting, map-side combine on
    encoded records) and still flush the same frames an eager
    ``encode_value`` would have produced.
    """
    out = bytearray()
    out.append(_T_LIST)
    out += encode_unsigned(len(items))
    for item in items:
        out += item
    return bytes(out)


def _decode(buf: memoryview, offset: int):
    tag = buf[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        return decode_signed(buf, offset)
    if tag == _T_FLOAT:
        return _F8.unpack_from(buf, offset)[0], offset + 8
    if tag == _T_STR:
        length, offset = decode_unsigned(buf, offset)
        if offset + length > len(buf):
            raise FrameCorruptionError("truncated string block")
        return str(buf[offset : offset + length], "utf-8"), offset + length
    if tag == _T_BYTES:
        length, offset = decode_unsigned(buf, offset)
        if offset + length > len(buf):
            raise FrameCorruptionError("truncated bytes block")
        return bytes(buf[offset : offset + length]), offset + length
    if tag == _T_TUPLE:
        count, offset = decode_unsigned(buf, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(buf, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _T_LIST:
        count, offset = decode_unsigned(buf, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(buf, offset)
            items.append(item)
        return items, offset
    if tag == _T_ARRAY:
        return _decode_array(buf, offset)
    record = _RECORDS_BY_TAG.get(tag)
    if record is not None:
        return record.decode(buf, offset)
    raise FrameCorruptionError(f"unknown value tag {tag:#x} at offset {offset - 1}")


def _decode_array(buf: memoryview, offset: int):
    dlen, offset = decode_unsigned(buf, offset)
    dtype = np.dtype(str(buf[offset : offset + dlen], "ascii"))
    offset += dlen
    ndim, offset = decode_unsigned(buf, offset)
    shape = []
    for _ in range(ndim):
        dim, offset = decode_unsigned(buf, offset)
        shape.append(dim)
    count = int(np.prod(shape)) if shape else 1
    nbytes = count * dtype.itemsize
    if offset + nbytes > len(buf):
        raise FrameCorruptionError("truncated array block")
    arr = np.frombuffer(buf[offset : offset + nbytes], dtype=dtype).reshape(shape).copy()
    return arr, offset + nbytes


def decode_value(data: bytes | memoryview, offset: int = 0):
    """Inverse of :func:`encode_value`; returns ``(value, next_offset)``."""
    return _decode(memoryview(data), offset)


def encode_edge_fields(node_id: int, weight: float, edge_feat, out: bytearray) -> None:
    """The ``(endpoint id, weight, edge feature)`` triple every in/out-edge
    record starts with — one shared wire shape for GraphFlat's
    ``InEdgeInfo``/``OutEdgeInfo`` and GraphInfer's embedding records, so
    the encodings cannot drift apart."""
    out += encode_signed(node_id)
    out += _F8.pack(weight)
    _encode(edge_feat, out)


def decode_edge_fields(buf: memoryview, offset: int):
    """Inverse of :func:`encode_edge_fields`; returns
    ``(node_id, weight, edge_feat, next_offset)``."""
    node_id, offset = decode_signed(buf, offset)
    weight = _F8.unpack_from(buf, offset)[0]
    offset += 8
    edge_feat, offset = _decode(buf, offset)
    return node_id, weight, edge_feat, offset


# ------------------------------------------------------------- frame streams
STREAM_MAGIC = b"AGLS"
_STREAM_VERSION = 2  # v2: per-frame CRC32 trailer over key + payload
_CRC = struct.Struct("<I")


def write_stream_header(fh, codec_id: int) -> int:
    """Write the spill-file header; returns bytes written."""
    header = STREAM_MAGIC + bytes([_STREAM_VERSION, codec_id])
    fh.write(header)
    return len(header)


def read_stream_header(fh) -> int:
    """Validate the header of an open spill file; returns the codec id."""
    header = fh.read(6)
    if len(header) != 6 or header[:4] != STREAM_MAGIC:
        raise FrameCorruptionError("bad spill stream magic")
    if header[4] != _STREAM_VERSION:
        raise FrameCorruptionError(f"unsupported spill stream version {header[4]}")
    return header[5]


def write_frame(fh, key: bytes, payload: bytes) -> int:
    """Append one ``key``/``payload`` frame (CRC32 trailer included);
    returns bytes written."""
    head = encode_unsigned(len(key)) + key + encode_unsigned(len(payload))
    fh.write(head)
    fh.write(payload)
    crc = zlib.crc32(payload, zlib.crc32(key))
    fh.write(_CRC.pack(crc))
    return len(head) + len(payload) + _CRC.size


def _read_uvarint(fh) -> int | None:
    """Streamed varint read; ``None`` on clean EOF (before the first byte)."""
    result = 0
    shift = 0
    while True:
        byte = fh.read(1)
        if not byte:
            if shift == 0:
                return None
            raise FrameCorruptionError("truncated varint in frame stream")
        value = byte[0]
        result |= (value & 0x7F) << shift
        if not value & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise FrameCorruptionError("frame varint longer than 64 bits")


def read_frame(fh) -> tuple[bytes, bytes] | None:
    """Read one ``(key, payload)`` frame from an open binary stream, or
    ``None`` on clean EOF (before the first byte of the frame).

    This is the single-frame primitive shared by spill files and the TCP
    transport's wire protocol: the CRC32 trailer is verified before the
    frame is returned, so a flipped bit anywhere in key or payload — on
    disk or on the wire — raises :class:`FrameCorruptionError` instead of
    delivering bad input."""
    klen = _read_uvarint(fh)
    if klen is None:
        return None
    key = fh.read(klen)
    if len(key) != klen:
        raise FrameCorruptionError("truncated frame key")
    plen = _read_uvarint(fh)
    if plen is None:
        raise FrameCorruptionError("frame missing payload length")
    payload = fh.read(plen)
    if len(payload) != plen:
        raise FrameCorruptionError("truncated frame payload")
    trailer = fh.read(_CRC.size)
    if len(trailer) != _CRC.size:
        raise FrameCorruptionError("truncated frame CRC")
    expected = _CRC.unpack(trailer)[0]
    actual = zlib.crc32(payload, zlib.crc32(key))
    if actual != expected:
        raise FrameCorruptionError(
            f"frame CRC mismatch (stored {expected:#010x}, "
            f"computed {actual:#010x}) — corrupted frame"
        )
    return key, payload


def iter_frames(fh):
    """Yield ``(key_bytes, payload)`` frames from an open binary file.

    Reads one frame at a time through the file object's buffer — memory is
    bounded by the largest single record, never by the file size.  Every
    frame's CRC32 trailer is verified before the frame is yielded, so a
    flipped bit anywhere in key or payload (or a truncated tail) raises
    :class:`FrameCorruptionError` instead of feeding the reducer bad input.
    """
    while True:
        frame = read_frame(fh)
        if frame is None:
            return
        yield frame
