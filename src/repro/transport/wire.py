"""Socket wire protocol shared by every TCP transport in the repo.

One grammar, three planes (shuffle peering, parameter-server pulls,
broadcast fetches): a connection is a bidirectional stream of
length-prefixed frames — exactly the spill-file frame of
:mod:`repro.proto.framing` lifted onto a socket:

    varint(len(kind)) kind varint(len(payload)) payload crc32

The frame *key* carries the message kind (``b"fetch"``, ``b"pull"``, ...)
and the payload is message-specific bytes.  The CRC32 trailer covers kind
and payload and is verified on every read, so a corrupted TCP segment that
slipped past the kernel checksum surfaces as
:class:`~repro.proto.framing.FrameCorruptionError` — which the MapReduce
retry policy already classifies as retryable.

:class:`Conn` wraps a connected socket in buffered binary file objects and
counts bytes both ways; the counters feed ``RunStats.transport_bytes_*``
and the PS client's pull accounting.
"""

from __future__ import annotations

import socket

from repro.proto.framing import read_frame, write_frame

__all__ = ["Conn", "DEFAULT_TIMEOUT_S", "connect"]

DEFAULT_TIMEOUT_S = 30.0
"""Per-operation socket timeout: a wedged peer surfaces as
``TimeoutError`` (retryable) instead of blocking a task forever."""


class Conn:
    """A connected socket speaking the frame grammar, with byte counters."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._rf = sock.makefile("rb")
        self._wf = sock.makefile("wb")
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, kind: bytes, payload: bytes = b"") -> None:
        self.bytes_sent += write_frame(self._wf, kind, payload)
        self._wf.flush()

    def recv(self) -> tuple[bytes, bytes] | None:
        """One ``(kind, payload)`` frame, or ``None`` on clean EOF."""
        frame = read_frame(self._rf)
        if frame is not None:
            # key + payload + ~2 length varints + 4-byte CRC (close enough
            # for accounting; exact framing bytes are not worth a re-encode)
            self.bytes_received += len(frame[0]) + len(frame[1]) + 6
        return frame

    def request(self, kind: bytes, payload: bytes = b"") -> tuple[bytes, bytes]:
        """Send one frame and wait for one response frame."""
        self.send(kind, payload)
        reply = self.recv()
        if reply is None:
            raise ConnectionResetError(
                f"peer closed the connection mid-request ({kind!r})"
            )
        return reply

    def close(self) -> None:
        for closer in (self._wf.close, self._rf.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "Conn":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(host: str, port: int, timeout_s: float = DEFAULT_TIMEOUT_S) -> Conn:
    """Open a framed connection to ``host:port``."""
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.settimeout(timeout_s)
    return Conn(sock)
