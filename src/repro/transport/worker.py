"""Remote trainer workers: the ``repro worker --join`` control plane.

The coordinator's :class:`~repro.ps.distributed.DistributedTrainer` (with
``remote_workers`` set) opens a :class:`WorkerHub`; worker processes —
possibly on other hosts — dial its control port, are assigned worker ids,
fetch their :class:`TrainSpec` payloads over the broadcast plane
(:mod:`repro.transport.broadcast` — one TCP fetch per host, re-published
into local shared memory), and then train their shards against the TCP
parameter server directly.  The control plane carries only small
coordination frames:

    worker -> hub   ``join``  (capacity: how many worker ids to take)
    hub -> worker   ``assign`` (worker ids + broadcast endpoint) / ``full``
    worker -> hub   ``epoch``  (per-worker losses; then block)
    hub -> worker   ``continue``  (parent evaluated; next epoch may start)
    worker -> hub   ``done``   (per-worker client stats; then hang up)

Per-epoch synchronisation mirrors the thread backend exactly: every worker
reports its epoch loss, the parent evaluates the server parameters, and
only then does the next epoch begin — which is why BSP trajectories stay
bit-identical to local training at a fixed seed.

Control payloads are pickled (model factories and columnar slices cross
the wire), so the hub must only be exposed to trusted cluster peers —
the same trust model as every other coordinator port.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass

from repro.proto.framing import FrameCorruptionError
from repro.transport.broadcast import BroadcastServer, fetch_broadcast
from repro.transport.wire import Conn, connect

__all__ = ["TrainSpec", "WorkerHub", "run_worker"]

_JOIN_RETRY_S = 0.2


@dataclass
class TrainSpec:
    """Everything one remote worker needs to train its shard.

    ``shard`` is a picklable columnar slice — shard *paths* plus row
    locators, so the dataset itself must live on a filesystem the joining
    host can reach (the shared-dir shuffle transport's ``spill_dir``
    contract, applied to training data)."""

    worker_id: int
    model_factory: object
    config: object
    shard: object
    ps_host: str
    ps_port: int


class WorkerHub:
    """Coordinator-side control plane for joining trainer workers."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        import socket

        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self.broadcast = BroadcastServer(host)
        self._lock = threading.Lock()
        self._open = threading.Event()  # start_training() arms assignment
        self._stop = threading.Event()
        self._total = 0
        self._next_id = 0
        self._conns: list[Conn] = []
        self._events: queue_mod.Queue = queue_mod.Queue()
        # Events from different groups interleave freely (a fast group's
        # final "done" can land while a slower group still owes this
        # epoch's loss) — out-of-order events are filed here and each
        # collect drains the slot it is waiting for.
        self._mailbox: dict[str, list] = {"epoch": [], "done": []}
        self._thread = threading.Thread(
            target=self._accept_loop, name="worker-hub", daemon=True
        )
        self._thread.start()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port

    # ---------------------------------------------------------- trainer side
    def publish_spec(self, worker_id: int, spec: TrainSpec) -> None:
        self.broadcast.publish(f"trainspec:{worker_id}", pickle.dumps(spec))

    def start_training(self, num_workers: int) -> None:
        """Open assignment: joining groups may now claim worker ids."""
        with self._lock:
            self._total = num_workers
        self._open.set()

    def collect_epoch(self, epoch: int) -> dict[int, float]:
        """Block until every worker id reported this epoch's loss."""
        return self._collect("epoch", epoch)

    def collect_done(self) -> dict[int, dict]:
        """Block until every worker id reported its final client stats."""
        return self._collect("done", None)

    def release_epoch(self) -> None:
        """Parent finished evaluating — let every group start its next
        epoch."""
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.send(b"continue")
            except OSError:
                pass  # the group died; collect() will surface the loss

    def close(self) -> None:
        self._stop.set()
        self._open.set()
        self._thread.join(timeout=5.0)
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = list(self._conns), []
        for conn in conns:
            conn.close()
        self.broadcast.close()

    def _collect(self, tag: str, epoch: int | None) -> dict[int, object]:
        from repro.ps.distributed import WorkerError

        got: dict[int, object] = {}
        with self._lock:
            total = self._total
        pending = self._mailbox[tag]
        while len(got) < total:
            if pending:
                kind, ids, payload = "", None, pending.pop()
            else:
                kind, ids, payload = self._events.get()
                if kind == "error":
                    raise WorkerError(f"remote workers {ids} failed:\n{payload}")
                if kind == "lost":
                    raise WorkerError(
                        f"worker group serving ids {ids} disconnected mid-training"
                    )
                if kind != tag:
                    self._mailbox[kind].append(payload)
                    continue
            if tag == "epoch":
                reported, losses = payload
                if reported != epoch:
                    raise WorkerError(
                        f"worker group {ids} reported epoch {reported}, "
                        f"expected {epoch}"
                    )
                got.update(losses)
            else:
                got.update(payload)
        return got

    # ------------------------------------------------------------- internals
    def _accept_loop(self) -> None:
        import socket

        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(sock,), daemon=True
            ).start()

    def _serve_conn(self, sock) -> None:
        # Coordination frames are tiny but arbitrarily spaced (a group sits
        # silent for a whole epoch of training): no socket timeout.
        sock.settimeout(None)
        conn = Conn(sock)
        ids: list[int] = []
        try:
            frame = conn.recv()
            if frame is None or frame[0] != b"join":
                conn.close()
                return
            capacity = max(1, int(pickle.loads(frame[1])))
            self._open.wait()
            if self._stop.is_set():
                conn.close()
                return
            with self._lock:
                remaining = self._total - self._next_id
                take = min(capacity, remaining)
                ids = list(range(self._next_id, self._next_id + take))
                self._next_id += take
                if ids:
                    self._conns.append(conn)
            if not ids:
                conn.send(b"full")
                conn.close()
                return
            conn.send(
                b"assign",
                pickle.dumps({"worker_ids": ids, "broadcast": self.broadcast.endpoint}),
            )
            while not self._stop.is_set():
                frame = conn.recv()
                if frame is None:
                    self._events.put(("lost", ids, None))
                    return
                kind, payload = frame
                if kind == b"epoch":
                    self._events.put(("epoch", ids, pickle.loads(payload)))
                elif kind == b"done":
                    self._events.put(("done", ids, pickle.loads(payload)))
                    return
                elif kind == b"error":
                    self._events.put(("error", ids, payload.decode()))
                    return
                else:
                    self._events.put(("error", ids, f"unknown frame {kind!r}"))
                    return
        except (OSError, FrameCorruptionError):
            if ids and not self._stop.is_set():
                self._events.put(("lost", ids, None))


def _fetch_spec(host: str, port: int, worker_id: int) -> TrainSpec:
    """Fetch one train spec via the broadcast plane: one TCP fetch, one
    local shm re-publish (the documented cross-host broadcast fallback),
    then attach-by-locator exactly like an intra-host reader."""
    from repro.ps.shm import attach_shared_memory

    bcast = fetch_broadcast(host, port, f"trainspec:{worker_id}")
    try:
        seg = attach_shared_memory(bcast.name)
        try:
            data = bytes(seg.buf[: bcast.nbytes])
        finally:
            seg.close()
    finally:
        bcast.close()
    return pickle.loads(data)


def run_worker(
    host: str,
    port: int,
    capacity: int = 1,
    join_timeout_s: float = 60.0,
) -> dict[int, dict]:
    """Join a coordinator's worker hub and train the assigned shards.

    Dials ``host:port`` (retrying until the hub is up, bounded by
    ``join_timeout_s``), claims up to ``capacity`` worker ids, fetches
    their train specs over the broadcast plane and runs one trainer thread
    per id against the TCP parameter server.  Returns per-worker client
    stats ({} if the hub was already fully subscribed)."""
    from repro.core.trainer.trainer import GraphTrainer
    from repro.ps.tcp import TcpPSClient

    deadline = time.monotonic() + join_timeout_s
    while True:
        try:
            conn = connect(host, port)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(_JOIN_RETRY_S)
    clients: dict[int, TcpPSClient] = {}
    try:
        # The hub replies to ``join`` only once the trainer opens
        # assignment, and coordination frames then arrive one whole
        # training epoch apart: no socket timeout on the control channel.
        conn._sock.settimeout(None)
        kind, payload = conn.request(b"join", pickle.dumps(capacity))
        if kind == b"full":
            return {}
        if kind != b"assign":
            raise ConnectionResetError(f"hub join failed: {kind!r}")
        assignment = pickle.loads(payload)
        ids = assignment["worker_ids"]
        bhost, bport = assignment["broadcast"]
        specs = {w: _fetch_spec(bhost, bport, w) for w in ids}
        clients = {
            w: TcpPSClient(spec.ps_host, spec.ps_port, w)
            for w, spec in specs.items()
        }
        trainers = {
            w: GraphTrainer(spec.model_factory(), spec.config, ps_client=clients[w])
            for w, spec in specs.items()
        }
        epochs = specs[ids[0]].config.epochs
        for epoch in range(epochs):
            losses: dict[int, float] = {}
            errors: list[str] = []
            error_lock = threading.Lock()

            def run_one(w: int) -> None:
                try:
                    losses[w] = trainers[w].train_epoch(specs[w].shard)
                    clients[w].finish_epoch()
                except BaseException:
                    with error_lock:
                        errors.append(f"worker {w}:\n{traceback.format_exc()}")

            threads = [
                threading.Thread(target=run_one, args=(w,), name=f"agl-remote-{w}")
                for w in ids
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                text = "\n".join(errors)
                conn.send(b"error", text.encode())
                raise RuntimeError(f"remote workers failed:\n{text}")
            conn.send(b"epoch", pickle.dumps((epoch, losses)))
            if epoch + 1 < epochs:
                frame = conn.recv()
                if frame is None or frame[0] != b"continue":
                    raise ConnectionResetError("hub hung up between epochs")
        stats = {w: clients[w].stats() for w in ids}
        conn.send(b"done", pickle.dumps(stats))
        return stats
    finally:
        for client in clients.values():
            client.close()
        conn.close()
