"""Cluster topology: the host roster every TCP transport binds/dials from.

A :class:`ClusterSpec` is parsed from the CLI's ``--hosts`` knob
(``"host:port,host:port,..."``).  The first entry is the *coordinator* —
the process that runs the pipeline parent, the parameter-server group, and
the worker hub; the remaining entries are peers expected to join with
``repro worker --join <coordinator>``.

Each host's base port anchors a small fixed port plan, so one ``--hosts``
roster configures every plane:

    base + 0   worker-hub control (``repro worker --join`` dials this)
    base + 1   parameter-server pulls/pushes (``TcpPSServer``)
    base + 2   shuffle peering (``ShufflePeerServer``)
    base + 3   broadcast fetches (``BroadcastServer``)

Port 0 means "ephemeral": the server binds any free port and the bound
address is what gets advertised (the single-box loopback tests run this
way, so they never collide).
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass

__all__ = ["ClusterSpec", "HostSpec", "host_tag"]


def host_tag() -> str:
    """Filesystem-safe token identifying this host — embedded in shared
    spill-session directory names so the dead-session sweep can tell its
    own sessions from a remote host's (pids are only meaningful locally).
    ``REPRO_HOST_TAG`` overrides for tests that emulate two hosts."""
    name = os.environ.get("REPRO_HOST_TAG") or socket.gethostname() or "localhost"
    safe = "".join(c for c in name if c.isalnum())
    return (safe or "localhost")[:32]


@dataclass(frozen=True)
class HostSpec:
    """One host in the roster: address + base port of its port plan."""

    host: str
    port: int

    def __post_init__(self):
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 <= self.port <= 65535 - 3:
            raise ValueError(f"base port must be in [0, 65532], got {self.port}")

    @property
    def control_port(self) -> int:
        return self.port

    @property
    def ps_port(self) -> int:
        return 0 if self.port == 0 else self.port + 1

    @property
    def shuffle_port(self) -> int:
        return 0 if self.port == 0 else self.port + 2

    @property
    def broadcast_port(self) -> int:
        return 0 if self.port == 0 else self.port + 3

    @classmethod
    def parse(cls, text: str) -> "HostSpec":
        host, sep, port = text.strip().rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"host spec {text!r} must be 'host:port' (e.g. 127.0.0.1:7077)"
            )
        try:
            return cls(host, int(port))
        except ValueError as exc:
            raise ValueError(f"bad port in host spec {text!r}: {exc}") from exc


@dataclass(frozen=True)
class ClusterSpec:
    """The host roster; ``hosts[0]`` is the coordinator."""

    hosts: tuple[HostSpec, ...]

    def __post_init__(self):
        if not self.hosts:
            raise ValueError("cluster needs at least one host")

    @property
    def coordinator(self) -> HostSpec:
        return self.hosts[0]

    @classmethod
    def parse(cls, text: str) -> "ClusterSpec":
        entries = [e for e in text.split(",") if e.strip()]
        if not entries:
            raise ValueError("--hosts must list at least one host:port")
        return cls(tuple(HostSpec.parse(e) for e in entries))

    @classmethod
    def loopback(cls) -> "ClusterSpec":
        """Single-host roster on ephemeral loopback ports — the default
        whenever a TCP transport is requested without ``--hosts``."""
        return cls((HostSpec("127.0.0.1", 0),))
