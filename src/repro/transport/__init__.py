"""Multi-host dataflow: pluggable transports for shuffle, parameter-server
traffic and broadcasts.

* :mod:`repro.transport.wire` — the CRC-trailed frame grammar lifted from
  spill files onto sockets (byte-counting connections).
* :mod:`repro.transport.cluster` — host roster + port plan (``--hosts``).
* :mod:`repro.transport.shuffle` — ``local`` / ``tcp`` / ``shared-dir``
  shuffle transports behind one :class:`ShuffleTransport` seam.
* :mod:`repro.transport.broadcast` — one-shot TCP fetch + local shm
  re-publish for cross-host broadcasts.
* :mod:`repro.transport.worker` — the ``repro worker --join`` control
  plane for remote trainer workers.
"""

from repro.transport.broadcast import BroadcastServer, fetch_broadcast, fetch_payload
from repro.transport.cluster import ClusterSpec, HostSpec, host_tag
from repro.transport.shuffle import (
    SHUFFLE_TRANSPORTS,
    LocalShuffleTransport,
    SharedDirShuffleTransport,
    ShufflePeerServer,
    TcpFetchSource,
    TcpShuffleTransport,
    make_shuffle_transport,
)
from repro.transport.wire import Conn, connect

__all__ = [
    "SHUFFLE_TRANSPORTS",
    "BroadcastServer",
    "ClusterSpec",
    "Conn",
    "HostSpec",
    "LocalShuffleTransport",
    "SharedDirShuffleTransport",
    "ShufflePeerServer",
    "TcpFetchSource",
    "TcpShuffleTransport",
    "connect",
    "fetch_broadcast",
    "fetch_payload",
    "host_tag",
    "make_shuffle_transport",
]
