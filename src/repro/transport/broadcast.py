"""Broadcast over TCP: one-shot fetch + local shared-memory re-publish.

``SlabBroadcast``/``BytesBroadcast`` (:mod:`repro.ps.shm`) are intra-host:
publish once into /dev/shm, ship locators.  Across hosts the locator is
meaningless, so the TCP fallback is *fetch once per host, then re-publish
locally*: a :class:`BroadcastServer` on the coordinator serves named
immutable payloads over the frame wire protocol, and
:func:`fetch_broadcast` pulls a payload exactly once and republishes it as
a local :class:`~repro.ps.shm.BytesBroadcast` — after which every process
on the fetching host attaches the local slab as usual.  Payloads are
immutable by contract (broadcasts always were), so there is no coherence
protocol: a name is published once and fetched whole.
"""

from __future__ import annotations

import threading

from repro.proto.framing import FrameCorruptionError
from repro.transport.wire import Conn, connect

__all__ = ["BroadcastServer", "fetch_broadcast", "fetch_payload"]


class BroadcastServer:
    """Serves named immutable byte payloads to joining hosts."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        import socket

        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._payloads: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.bytes_sent = 0
        self._thread = threading.Thread(
            target=self._accept_loop, name="broadcast-server", daemon=True
        )
        self._thread.start()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port

    def publish(self, name: str, payload: bytes) -> None:
        with self._lock:
            existing = self._payloads.get(name)
            if existing is not None and existing != payload:
                raise ValueError(f"broadcast {name!r} already published")
            self._payloads[name] = bytes(payload)

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            self._listener.close()
        except OSError:
            pass

    def _accept_loop(self) -> None:
        import socket

        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(sock,), daemon=True
            ).start()

    def _serve_conn(self, sock) -> None:
        sock.settimeout(30.0)
        conn = Conn(sock)
        try:
            while not self._stop.is_set():
                frame = conn.recv()
                if frame is None:
                    return
                kind, payload = frame
                if kind != b"get":
                    conn.send(b"error", f"unknown request {kind!r}".encode())
                    return
                name = payload.decode()
                with self._lock:
                    data = self._payloads.get(name)
                if data is None:
                    conn.send(b"missing", name.encode())
                else:
                    conn.send(b"payload", data)
        except (OSError, FrameCorruptionError):
            pass
        finally:
            with self._lock:
                self.bytes_sent += conn.bytes_sent
            conn.close()


def fetch_payload(host: str, port: int, name: str) -> bytes:
    """One-shot fetch of a named broadcast payload (CRC-verified frame)."""
    with connect(host, port) as conn:
        kind, payload = conn.request(b"get", name.encode())
    if kind == b"payload":
        return payload
    if kind == b"missing":
        raise KeyError(f"broadcast {name!r} not published at {host}:{port}")
    raise ConnectionResetError(f"broadcast fetch failed: {kind!r}")


def fetch_broadcast(host: str, port: int, name: str):
    """Fetch ``name`` once and re-publish it into *local* shared memory.

    Returns a :class:`~repro.ps.shm.BytesBroadcast` — the per-host slab
    that local worker processes attach by locator, exactly as if the
    payload had been published on this host to begin with.  The caller
    owns the returned broadcast (``close()`` unlinks the local slab)."""
    from repro.ps.shm import BytesBroadcast

    return BytesBroadcast(fetch_payload(host, port, name))
