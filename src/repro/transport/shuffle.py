"""Pluggable shuffle transports: how reduce tasks reach map-side runs.

The spill layer (:mod:`repro.mapreduce.spill`) fixes *what* a shuffle looks
like on disk — key-sorted AGLS run files per ``(map task, partition)``.
A :class:`ShuffleTransport` decides *where those bytes live relative to the
reducer* and how they get to it:

* ``local`` — the intra-host fast path: reducers open the run files
  directly (same process tree, same filesystem).  Byte-identical to the
  historical behaviour by construction — it *is* the historical behaviour.
* ``tcp`` — shuffle peering: map tasks still spill locally, and a
  :class:`ShufflePeerServer` on the writer's host serves the session's run
  files over the frame wire protocol (:mod:`repro.transport.wire`).  A
  reduce task fetches its partition's runs — *file names preserved* — into
  a private staging directory and runs the standard k-way merge over them.
  CRC-32 travels end-to-end twice over: each wire frame carries its own
  trailer, and the payload bytes are an AGLS spill file whose per-frame
  CRCs are re-verified during the merge.  A flipped bit on the wire or a
  reset connection fails the attempt loudly; the retry policy re-fetches.
* ``shared-dir`` — the DFS-mediated transport (lithops-style, SNIPPETS.md
  Snippet 3): map-side runs are *pushed at write time* into per-reduce-
  partition peer directories (``p00007/``) under the shared ``spill_dir``
  mount, keyed by the same ``Partitioner`` plan that names the partition.
  Reducers on any host merge straight out of their partition's directory.

All three produce byte-identical job output: the run files are the same
bytes in the same merge order; only the path they travel differs.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from dataclasses import dataclass, replace
from pathlib import Path

from repro.mapreduce.fault import take_conn_fault
from repro.mapreduce.spill import SpillLayout
from repro.proto.framing import FrameCorruptionError, decode_value, encode_value
from repro.transport.cluster import ClusterSpec
from repro.transport.wire import Conn, connect

__all__ = [
    "SHUFFLE_TRANSPORTS",
    "LocalShuffleTransport",
    "SharedDirShuffleTransport",
    "ShufflePeerServer",
    "TcpFetchSource",
    "TcpShuffleTransport",
    "make_shuffle_transport",
]

SHUFFLE_TRANSPORTS = ("local", "tcp", "shared-dir")


# ------------------------------------------------------------------ protocol
class LocalShuffleTransport:
    """Pass-through: reducers read run files straight off the filesystem."""

    name = "local"
    partition_subdirs = False

    def register_root(self, root: str) -> None:  # pragma: no cover - trivial
        pass

    def source(self, layout: SpillLayout, partition: int, num_map_tasks: int):
        # Deferred import: runtime imports this module, not vice versa.
        from repro.mapreduce.runtime import _SpillSource

        return _SpillSource(layout, partition, num_map_tasks)

    def account(self, stats) -> None:
        pass

    def close(self) -> None:
        pass


class SharedDirShuffleTransport(LocalShuffleTransport):
    """Map-side push into per-partition peer directories under a shared
    (DFS-mounted) ``spill_dir``.  Requires the runtime to have one; reads
    are plain local merges of the partition's own directory."""

    name = "shared-dir"
    partition_subdirs = True

    def account(self, stats) -> None:
        # Every spilled byte crossed the shared mount twice: pushed by the
        # writer, read back by the owning reducer.
        stats.transport_bytes_sent += stats.shuffle_bytes_written
        stats.transport_bytes_received += stats.shuffle_bytes_written


# ----------------------------------------------------------------- TCP peer
class ShufflePeerServer:
    """Serves a session's spill run files over the frame wire protocol.

    One listening thread, one handler thread per fetcher connection.  Only
    paths under explicitly registered roots are readable, and request
    patterns may not traverse directories — the server exposes shuffle
    runs, not the filesystem.

    Protocol (all frames CRC-trailed): request ``fetch`` with payload
    ``(root, pattern)``; response is a stream of ``run`` frames (key =
    ``run:<name>``, payload = the file bytes) followed by one ``done``
    frame whose payload is the sorted name list (the fetcher cross-checks
    it received everything).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        import socket

        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._roots: set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.bytes_sent = 0
        self.bytes_received = 0
        self._thread = threading.Thread(
            target=self._accept_loop, name="shuffle-peer", daemon=True
        )
        self._thread.start()

    def register_root(self, root: str) -> None:
        with self._lock:
            self._roots.add(str(Path(root).resolve()))

    def take_stats(self) -> tuple[int, int]:
        with self._lock:
            sent, received = self.bytes_sent, self.bytes_received
            self.bytes_sent = 0
            self.bytes_received = 0
        return sent, received

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            self._listener.close()
        except OSError:
            pass

    # ------------------------------------------------------------- internals
    def _accept_loop(self) -> None:
        import socket

        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(sock,), daemon=True
            ).start()

    def _serve_conn(self, sock) -> None:
        sock.settimeout(30.0)
        conn = Conn(sock)
        try:
            while not self._stop.is_set():
                frame = conn.recv()
                if frame is None:
                    return
                kind, payload = frame
                if kind != b"fetch":
                    conn.send(b"error", f"unknown request {kind!r}".encode())
                    return
                self._handle_fetch(conn, payload)
        except (OSError, FrameCorruptionError):
            pass  # fetcher died or garbled a request; its retry reconnects
        finally:
            with self._lock:
                self.bytes_sent += conn.bytes_sent
                self.bytes_received += conn.bytes_received
            conn.close()

    def _handle_fetch(self, conn: Conn, payload: bytes) -> None:
        (root, pattern), _ = decode_value(payload)
        resolved = str(Path(root).resolve())
        with self._lock:
            allowed = resolved in self._roots or any(
                resolved.startswith(r + os.sep) for r in self._roots
            )
        if not allowed or "/" in pattern or ".." in pattern:
            conn.send(b"error", f"root {root!r} not served".encode())
            return
        names = sorted(p.name for p in Path(resolved).glob(pattern) if p.is_file())
        for name in names:
            conn.send(b"run:" + name.encode(), (Path(resolved) / name).read_bytes())
        conn.send(b"done", encode_value(names))


@dataclass(frozen=True)
class TcpFetchSource:
    """Picklable reduce-side source: fetch one partition's run files from a
    peer server into a private staging directory, then run the standard
    streamed k-way merge over them.  Names are preserved, so merge order —
    task-major, then run order — is exactly the local transport's, and the
    output is byte-identical."""

    layout: SpillLayout
    host: str
    port: int
    partition: int
    num_map_tasks: int

    def groups(self):
        staging = tempfile.mkdtemp(prefix="mrfetch.")
        try:
            self._fetch_runs(staging)
            local = replace(self.layout, root=staging, partition_subdirs=False)
            yield from local.iter_groups(self.partition, self.num_map_tasks)
        finally:
            shutil.rmtree(staging, ignore_errors=True)

    def _fetch_runs(self, staging: str) -> None:
        # An armed conn-reset fault (FaultPlan) injures this attempt's
        # *connection*, never the server's files: the fetch dies mid-stream
        # with ConnectionResetError (retryable) and the retry re-fetches
        # the intact runs — the network twin of corrupt-run/truncate-run.
        fault = take_conn_fault()
        ext = self.layout.run_path(0, 0, 0).suffix.lstrip(".")
        prefix = self.layout.job_name
        if self.layout.partition_tag:
            prefix = f"{prefix}.{self.layout.partition_tag}"
        pattern = f"{prefix}.m*.p{self.partition:05d}.r*.{ext}"
        with connect(self.host, self.port) as conn:
            conn.send(b"fetch", encode_value((self.layout.root, pattern)))
            received: list[str] = []
            while True:
                frame = conn.recv()
                if frame is None:
                    raise ConnectionResetError(
                        "shuffle peer closed the connection mid-fetch"
                    )
                kind, payload = frame
                if kind.startswith(b"run:"):
                    name = kind[4:].decode()
                    if "/" in name or ".." in name:
                        raise FrameCorruptionError(f"unsafe run name {name!r}")
                    (Path(staging) / name).write_bytes(payload)
                    received.append(name)
                    if fault == "conn-reset":
                        raise ConnectionResetError(
                            "injected connection reset mid-shuffle-fetch"
                        )
                elif kind == b"done":
                    names, _ = decode_value(payload)
                    if sorted(received) != sorted(names):
                        raise ConnectionResetError(
                            "shuffle fetch incomplete: "
                            f"got {len(received)} of {len(names)} runs"
                        )
                    if fault == "conn-reset" and not received:
                        # Empty partition: still exercise the injected fault
                        # so the accounting matches the plan's counters.
                        raise ConnectionResetError(
                            "injected connection reset mid-shuffle-fetch"
                        )
                    return
                elif kind == b"error":
                    raise ConnectionResetError(
                        f"shuffle peer rejected fetch: {payload.decode()}"
                    )
                else:
                    raise FrameCorruptionError(f"unknown shuffle frame {kind!r}")


class TcpShuffleTransport:
    """Shuffle peering: spill locally, serve the session directory, fetch
    partitions over TCP."""

    name = "tcp"
    partition_subdirs = False

    def __init__(self, cluster: ClusterSpec | None = None):
        spec = (cluster or ClusterSpec.loopback()).coordinator
        # Bind loopback unless a routable roster says otherwise: the peer
        # server exposes spill bytes and should not listen wide by default.
        host = spec.host if cluster is not None else "127.0.0.1"
        self._server = ShufflePeerServer(host, spec.shuffle_port)

    @property
    def endpoint(self) -> tuple[str, int]:
        return self._server.host, self._server.port

    def register_root(self, root: str) -> None:
        self._server.register_root(root)

    def source(self, layout: SpillLayout, partition: int, num_map_tasks: int):
        return TcpFetchSource(
            layout, self._server.host, self._server.port, partition, num_map_tasks
        )

    def account(self, stats) -> None:
        sent, received = self._server.take_stats()
        stats.transport_bytes_sent += sent
        stats.transport_bytes_received += received

    def close(self) -> None:
        self._server.close()


def make_shuffle_transport(name: str, cluster: ClusterSpec | None = None):
    """Factory keyed by the runtime's ``shuffle_transport`` knob."""
    if name == "local":
        return LocalShuffleTransport()
    if name == "shared-dir":
        return SharedDirShuffleTransport()
    if name == "tcp":
        return TcpShuffleTransport(cluster)
    raise ValueError(
        f"unknown shuffle transport {name!r}; known: {SHUFFLE_TRANSPORTS}"
    )
