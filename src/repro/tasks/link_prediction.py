"""Link prediction — score whether an edge ``(u, v)`` exists.

GiGL-style (PAPERS.md) flagship workload: positives are observed edges,
negatives are seeded corrupt-destination samples drawn at the *parent*
(before any MapReduce round runs), so task retries, speculation and
backend choice cannot change the target table.  The readout is the
parameter-free dot product ``<h_u, h_v>`` over the two endpoint
embeddings, trained with binary cross-entropy on the single logit —
the model's dense head is bypassed entirely, which is what lets
GraphInfer score an edge from the endpoint embeddings alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tasks.base import EdgeTargets, Task, register_task

__all__ = ["LinkPrediction"]


@dataclass(frozen=True)
class LinkPrediction(Task):
    name = "link_prediction"
    edge_level = True

    def build_edge_targets(self, nodes, edges, *, seed=0, max_targets=None, negative_ratio=1):
        # Lazy import: the sampler lives with the other GraphFlat sampling
        # strategies (ISSUE layering); importing it at call time keeps
        # ``repro.tasks`` free of ``repro.core`` imports at module load.
        from repro.core.graphflat.sampling import sample_negative_edges

        if negative_ratio < 1:
            raise ValueError("negative_ratio must be >= 1")
        src = np.asarray(edges.src, dtype=np.int64)
        dst = np.asarray(edges.dst, dtype=np.int64)
        keep = src != dst  # a self-loop has no distinct (src, dst) pair to score
        pos_src, pos_dst = src[keep], dst[keep]
        if len(pos_src) == 0:
            raise ValueError("link prediction needs at least one non-loop edge")
        if max_targets is not None and max_targets < len(pos_src):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(seed, 0x504F5345))
            )
            pick = rng.choice(len(pos_src), size=max_targets, replace=False)
            pick.sort()  # keep canonical (src, dst) order — placement-independent
            pos_src, pos_dst = pos_src[pick], pos_dst[pick]
        neg_src, neg_dst = sample_negative_edges(
            pos_src,
            pos_dst,
            nodes.ids,
            negative_ratio * len(pos_src),
            seed,
            forbid_src=src,
            forbid_dst=dst,
        )
        labels = np.concatenate(
            [
                np.ones(len(pos_src), dtype=np.int64),
                np.zeros(len(neg_src), dtype=np.int64),
            ]
        )
        return EdgeTargets(
            np.concatenate([pos_src, neg_src]),
            np.concatenate([pos_dst, neg_dst]),
            labels,
        )

    def readout(self, h_targets, pair_index, head):
        from repro.nn import ops

        h_src = ops.gather_rows(h_targets, pair_index[:, 0])
        h_dst = ops.gather_rows(h_targets, pair_index[:, 1])
        return (h_src * h_dst).sum(axis=1)

    def loss(self, logits, labels):
        from repro.nn import bce_with_logits_loss

        return bce_with_logits_loss(logits, np.asarray(labels, dtype=np.float32))

    @property
    def default_metric(self) -> str:
        return "auc"

    def infer_scores(self, h_src, h_dst, head_weight, head_bias):
        return np.asarray([np.dot(h_src, h_dst)], dtype=np.float32)


register_task(LinkPrediction())
