"""Task plugins: what the pipelines dispatch through instead of assuming
node-level targets.  Importing the package registers the built-in tasks."""

from repro.tasks.base import (
    EDGE_TASKS,
    EdgeTargets,
    Task,
    TASK_REGISTRY,
    make_task,
    register_task,
)
from repro.tasks.edge_classification import EdgeClassification
from repro.tasks.link_prediction import LinkPrediction
from repro.tasks.node_classification import NodeClassification

__all__ = [
    "EDGE_TASKS",
    "EdgeClassification",
    "EdgeTargets",
    "LinkPrediction",
    "NodeClassification",
    "Task",
    "TASK_REGISTRY",
    "make_task",
    "register_task",
]
