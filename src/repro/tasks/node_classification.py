"""Node classification — the paper's original workload, as a task plugin.

This task is intentionally hollow: the node-level code paths in GraphFlat,
GraphTrainer and GraphInfer predate the task layer and are kept verbatim
(their output is byte-identical to the pre-refactor pipeline — tested), so
the plugin only has to *identify* the default.  The readout/loss hooks stay
unimplemented on purpose: the trainer's multiclass/multilabel/binary
dispatch owns them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tasks.base import Task, register_task

__all__ = ["NodeClassification"]


@dataclass(frozen=True)
class NodeClassification(Task):
    name = "node_classification"
    edge_level = False

    @property
    def default_metric(self) -> str:
        return "accuracy"


register_task(NodeClassification())
