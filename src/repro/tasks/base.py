"""The ``Task`` plugin layer — what the pipelines dispatch through.

AGL's pipelines (§3.2-§3.4) are written for homogeneous node
classification, but the system framing ("industrial-purpose") covers the
whole task zoo: link prediction, edge classification, typed graphs.  A
:class:`Task` object encapsulates everything task-specific so GraphFlat,
GraphTrainer and GraphInfer stay task-agnostic:

* **target extraction** — node-level tasks take the labeled node set;
  edge-level tasks build an :class:`EdgeTargets` table (for link
  prediction including seeded negative edges), and GraphFlat materialises
  the k-hop neighborhood of *both* endpoints per target edge.
* **readout + loss** — node-level tasks keep the model's classification
  head on target rows; edge-level tasks score an endpoint *pair*
  (Hadamard-product readout: parameter-free dot product for link
  prediction, the dense head over ``h_src * h_dst`` for edge
  classification).
* **inference scoring** — the numpy-only form of the same readout, used by
  GraphInfer's final reduce where no autograd is needed.

Tasks are frozen dataclasses (picklable — they ride inside MapReduce
operators under the ``processes`` backend) and must stay deterministic:
``build_edge_targets`` is parent-side and seeded, so task re-execution,
speculation and backend choice cannot change the target table.

Layering: this package imports only ``repro.graph`` / ``repro.nn``
primitives; the pipelines under ``repro.core`` import *us*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EDGE_TASKS",
    "EdgeTargets",
    "Task",
    "TASK_REGISTRY",
    "make_task",
    "register_task",
]

EDGE_TASKS = ("link_prediction", "edge_classification")
"""Task names whose targets are node *pairs*, not single nodes."""


@dataclass(frozen=True)
class EdgeTargets:
    """The target-edge table an edge-level task trains/infers over.

    ``src``/``dst`` are global node ids; ``labels`` is an aligned int64
    vector (0/1 for link prediction — positives first, then sampled
    negatives — or class ids for edge classification).  The row index is
    the *sample id*: it keys the emitted GraphFeature, the columnar shard
    row, and the prediction record, exactly as the node id does for node
    classification.
    """

    src: np.ndarray
    dst: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "src", np.asarray(self.src, dtype=np.int64))
        object.__setattr__(self, "dst", np.asarray(self.dst, dtype=np.int64))
        object.__setattr__(self, "labels", np.asarray(self.labels, dtype=np.int64))
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("EdgeTargets src/dst must be aligned 1-D arrays")
        if self.labels.shape != self.src.shape:
            raise ValueError("EdgeTargets labels must align with src/dst")

    def __len__(self) -> int:
        return len(self.src)

    @property
    def endpoint_ids(self) -> np.ndarray:
        """Sorted unique node ids appearing as either endpoint."""
        return np.unique(np.concatenate([self.src, self.dst]))


@dataclass(frozen=True)
class Task:
    """Base task: node-level semantics; subclasses override the hooks."""

    name = "abstract"
    edge_level = False

    # ------------------------------------------------------------- GraphFlat
    def build_edge_targets(
        self,
        nodes,
        edges,
        *,
        seed: int = 0,
        max_targets: int | None = None,
        negative_ratio: int = 1,
    ) -> EdgeTargets:
        """Target-edge table for edge-level tasks (edge tasks override)."""
        raise NotImplementedError(f"task {self.name!r} has no edge targets")

    # --------------------------------------------------------- trainer hooks
    def readout(self, h_targets, pair_index: np.ndarray, head):
        """Differentiable logits for a batch.

        ``h_targets`` is the ``(T, d)`` tensor of embeddings for the
        batch's merged (sorted, deduped) target node ids; ``pair_index``
        is the ``(B, 2)`` row-index table mapping each sample's
        ``(src, dst)`` into it; ``head`` is the model's dense head.
        """
        raise NotImplementedError

    def loss(self, logits, labels: np.ndarray):
        """Differentiable training loss for :meth:`readout` logits."""
        raise NotImplementedError

    def scores(self, logits: np.ndarray) -> np.ndarray:
        """Per-sample score the evaluation metric consumes."""
        return logits

    @property
    def default_metric(self) -> str:
        return "accuracy"

    # ----------------------------------------------------------- infer hooks
    def infer_scores(
        self,
        h_src: np.ndarray,
        h_dst: np.ndarray,
        head_weight: np.ndarray | None,
        head_bias: np.ndarray | None,
    ) -> np.ndarray:
        """Numpy-only scores for one target edge (GraphInfer's final
        reduce); must match :meth:`readout` on the same embeddings."""
        raise NotImplementedError


TASK_REGISTRY: dict[str, Task] = {}


def register_task(task: Task) -> Task:
    """Register a task instance under ``task.name`` (idempotent per name)."""
    existing = TASK_REGISTRY.get(task.name)
    if existing is not None and type(existing) is not type(task):
        raise ValueError(f"task {task.name!r} already registered")
    TASK_REGISTRY[task.name] = task
    return task


def make_task(name: str) -> Task:
    if name not in TASK_REGISTRY:
        raise KeyError(f"unknown task {name!r}; known: {sorted(TASK_REGISTRY)}")
    return TASK_REGISTRY[name]
