"""Edge classification — predict a class for a labeled edge ``(u, v)``.

GraphStorm-style (PAPERS.md) edge prediction: the target table is the set
of labeled rows of the edge table (``EdgeTable.labels``; ``-1`` means
unlabeled), and the readout feeds the Hadamard product of the endpoint
embeddings through the model's dense head — so ``num_classes`` and the
head shape mean exactly what they do for node classification, and
GraphInfer can score an edge from the endpoint embeddings plus the
segmented head slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tasks.base import EdgeTargets, Task, register_task

__all__ = ["EdgeClassification"]


@dataclass(frozen=True)
class EdgeClassification(Task):
    name = "edge_classification"
    edge_level = True

    def build_edge_targets(self, nodes, edges, *, seed=0, max_targets=None, negative_ratio=1):
        if edges.labels is None:
            raise ValueError(
                "edge classification needs a labeled edge table (EdgeTable.labels)"
            )
        src = np.asarray(edges.src, dtype=np.int64)
        dst = np.asarray(edges.dst, dtype=np.int64)
        labels = np.asarray(edges.labels, dtype=np.int64)
        keep = (labels >= 0) & (src != dst)
        src, dst, labels = src[keep], dst[keep], labels[keep]
        if len(src) == 0:
            raise ValueError("edge classification needs at least one labeled non-loop edge")
        if max_targets is not None and max_targets < len(src):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(seed, 0x45434C53))
            )
            pick = rng.choice(len(src), size=max_targets, replace=False)
            pick.sort()
            src, dst, labels = src[pick], dst[pick], labels[pick]
        return EdgeTargets(src, dst, labels)

    def readout(self, h_targets, pair_index, head):
        from repro.nn import ops

        h_src = ops.gather_rows(h_targets, pair_index[:, 0])
        h_dst = ops.gather_rows(h_targets, pair_index[:, 1])
        return head(h_src * h_dst)

    def loss(self, logits, labels):
        from repro.nn import softmax_cross_entropy

        return softmax_cross_entropy(logits, np.asarray(labels, dtype=np.int64))

    @property
    def default_metric(self) -> str:
        return "accuracy"

    def infer_scores(self, h_src, h_dst, head_weight, head_bias):
        scores = (h_src * h_dst) @ head_weight
        if head_bias is not None:
            scores = scores + head_bias
        return scores.astype(np.float32)


register_task(EdgeClassification())
