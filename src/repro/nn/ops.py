"""Differentiable operators: activations, softmax, dropout, and the
graph-segment ops (gather / segment-sum / segment-max / segment-softmax)
that GNN aggregation is built from.

The *segment* ops are the performance-critical path of the whole system:
"aggregate information for each node along its edges in the sparse adjacent
matrix" (§3.3.2).  ``segment_sum`` therefore accepts a pluggable forward
``backend`` so GraphTrainer's **edge-partitioning** strategy (destination-
sorted segment reduction, optionally multi-threaded) can replace the generic
unbuffered scatter-add without touching any model code.  Backward passes are
backend-independent (the gradient of a segment sum is a gather).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, unbroadcast

__all__ = [
    "exp",
    "log",
    "sqrt",
    "clip",
    "relu",
    "leaky_relu",
    "elu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "slice_cols",
    "concat",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "scatter_add_backend",
]


# --------------------------------------------------------------- elementwise
def exp(x: Tensor) -> Tensor:
    out_data = np.exp(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    out_data = np.log(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(out_data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    out_data = np.sqrt(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * 0.5 / out_data)

    return Tensor._make(out_data, (x,), backward)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    out_data = np.clip(x.data, low, high)
    pass_through = ((x.data > low) & (x.data < high)).astype(np.float32)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * pass_through)

    return Tensor._make(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    mask = (x.data > 0).astype(np.float32)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    scale = np.where(x.data > 0, np.float32(1.0), np.float32(negative_slope))

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * scale)

    return Tensor._make(x.data * scale, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    neg = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(x.data > 0, x.data, neg).astype(np.float32)
    deriv = np.where(x.data > 0, np.float32(1.0), (neg + alpha).astype(np.float32))

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data.astype(np.float32), (x,), backward)


def tanh(x: Tensor) -> Tensor:
    out_data = np.tanh(x.data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (x,), backward)


# ------------------------------------------------------------------ softmax
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad):
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data.astype(np.float32), (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z

    def backward(grad):
        if x.requires_grad:
            soft = np.exp(out_data)
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data.astype(np.float32), (x,), backward)


# ------------------------------------------------------------------ dropout
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or ``p == 0``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = (rng.random(x.data.shape) >= p).astype(np.float32) / np.float32(1.0 - p)
    return x * Tensor(keep)


def slice_cols(x: Tensor, low: int, high: int) -> Tensor:
    """Column slice ``x[:, low:high]``; grad zero-pads the complement.

    Used by models that pack several per-node states into one matrix (e.g.
    GeniePath's ``[h || C]`` LSTM state, which must ride through GraphInfer
    as a single embedding vector)."""
    if x.data.ndim != 2:
        raise ValueError("slice_cols expects a 2-D tensor")
    if not 0 <= low <= high <= x.data.shape[1]:
        raise ValueError(f"bad column range [{low}, {high}) for {x.data.shape}")
    out_data = x.data[:, low:high].copy()

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            gx[:, low:high] = grad
            x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


# ------------------------------------------------------------------- concat
def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    if not tensors:
        raise ValueError("concat of zero tensors")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(lo, hi)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


# -------------------------------------------------------------- graph ops --
def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``x[indices]`` (axis 0); grad scatters back with ``add.at``."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = x.data[indices]

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(x.data)
            np.add.at(gx, indices, grad)
            x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def scatter_add_backend(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Reference segment-sum forward: unbuffered ``np.add.at`` scatter.

    This is the *unoptimized* aggregator AGL_base uses in Table 4; the
    edge-partitioned aggregator in ``repro.core.trainer.partition`` is the
    optimized drop-in.
    """
    out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    np.add.at(out, segment_ids, values)
    return out


def segment_sum(
    values: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    backend=None,
) -> Tensor:
    """Sum ``values`` rows into ``num_segments`` buckets by ``segment_ids``.

    ``backend(values_np, segment_ids, num_segments) -> np.ndarray`` computes
    the forward; the backward is always ``grad[segment_ids]`` (a gather), so
    swapping backends cannot change training semantics — only speed.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or len(segment_ids) != values.data.shape[0]:
        raise ValueError("segment_ids must be 1-D and aligned with values rows")
    if len(segment_ids) and (segment_ids.min() < 0 or segment_ids.max() >= num_segments):
        raise ValueError("segment id out of range")
    forward = backend if backend is not None else scatter_add_backend
    out_data = forward(values.data, segment_ids, num_segments)

    def backward(grad):
        if values.requires_grad:
            values._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (values,), backward)


def segment_mean(
    values: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    backend=None,
) -> Tensor:
    """Segment average; empty segments yield zeros (count clamped to 1)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float32)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (values.data.ndim - 1))
    total = segment_sum(values, segment_ids, num_segments, backend=backend)
    return total * Tensor(1.0 / counts)


def segment_max(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Per-segment elementwise max (GraphSAGE max-pooling aggregator).

    Empty segments produce zeros.  Gradient is routed to the max-achieving
    rows; exact ties split the gradient equally (ties have measure zero for
    continuous activations, so this choice is invisible in practice).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    tail = values.data.shape[1:]
    out_data = np.full((num_segments,) + tail, -np.inf, dtype=np.float32)
    np.maximum.at(out_data, segment_ids, values.data)
    empty = ~np.isin(np.arange(num_segments), segment_ids)
    if empty.any():
        out_data[empty] = 0.0

    def backward(grad):
        if not values.requires_grad:
            return
        winners = (values.data == out_data[segment_ids]).astype(np.float32)
        # Split gradient across ties so total gradient mass is preserved.
        tie_count = scatter_add_backend(winners, segment_ids, num_segments)
        tie_count = np.maximum(tie_count, 1.0)
        values._accumulate(grad[segment_ids] * winners / tie_count[segment_ids])

    return Tensor._make(out_data, (values,), backward)


def segment_softmax(
    scores: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    backend=None,
) -> Tensor:
    """Softmax over each segment (GAT attention normalisation, per head).

    ``scores`` has shape ``(num_edges, ...)``; softmax is taken across the
    rows sharing a segment id, independently per trailing position.  Built
    by composing differentiable segment primitives, so the backward pass
    needs no bespoke math.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Stabilise: subtract the per-segment running max (constant wrt autograd —
    # the classic softmax shift-invariance trick).
    tail = scores.data.shape[1:]
    seg_max = np.full((num_segments,) + tail, -np.inf, dtype=np.float32)
    np.maximum.at(seg_max, segment_ids, scores.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - Tensor(seg_max[segment_ids])
    exp_scores = exp(shifted)
    denom = segment_sum(exp_scores, segment_ids, num_segments, backend=backend)
    denom_edges = gather_rows(denom, segment_ids)
    return exp_scores / denom_edges
