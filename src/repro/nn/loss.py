"""Loss functions for the paper's three tasks.

* ``softmax_cross_entropy`` — single-label node classification (Cora, UUG);
* ``bce_with_logits_loss`` — multi-label classification (PPI's 121 labels);
* ``l2_regularization`` — weight decay as an explicit loss term (the Cora
  GCN/GAT recipes use L2 on the first layer).
"""

from __future__ import annotations

import numpy as np

from repro.nn import ops
from repro.nn.tensor import Tensor

__all__ = ["softmax_cross_entropy", "bce_with_logits_loss", "l2_regularization"]


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits (n, c)`` and int ``labels (n,)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (n, classes), got {logits.shape}")
    n, c = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match {n} logit rows")
    if len(labels) and (labels.min() < 0 or labels.max() >= c):
        raise ValueError("label id out of range")
    log_probs = ops.log_softmax(logits, axis=-1)
    onehot = np.zeros((n, c), dtype=np.float32)
    onehot[np.arange(n), labels] = 1.0
    picked = (log_probs * Tensor(onehot)).sum()
    return -picked * (1.0 / max(n, 1))


def bce_with_logits_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically-stable mean binary cross-entropy over all entries.

    Uses the identity ``BCE(x, t) = max(x, 0) - x t + log(1 + exp(-|x|))``
    composed from differentiable primitives (|x| = relu(x) + relu(-x)).
    """
    targets = np.asarray(targets, dtype=np.float32)
    if targets.shape != logits.shape:
        raise ValueError(f"targets shape {targets.shape} != logits shape {logits.shape}")
    t = Tensor(targets)
    abs_x = ops.relu(logits) + ops.relu(-logits)
    softplus_neg_abs = ops.log(ops.exp(-abs_x) + Tensor(np.float32(1.0)))
    per_entry = ops.relu(logits) - logits * t + softplus_neg_abs
    return per_entry.mean()


def l2_regularization(params: list[Tensor], weight: float) -> Tensor:
    """``weight * sum_i ||p_i||^2`` as a differentiable loss term."""
    if not params:
        raise ValueError("no parameters to regularise")
    total = (params[0] ** 2).sum()
    for p in params[1:]:
        total = total + (p**2).sum()
    return total * weight
