"""numpy autograd engine + neural-network toolkit — substrate **S5**.

The paper trains GNNs with TensorFlow-style kernels; offline we rebuild the
minimum viable tensor framework: a reverse-mode automatic-differentiation
``Tensor``, the dense and graph-segment operators GNNs need, ``Module`` /
``Parameter`` containers, initializers, losses and optimizers.  Gradients of
every op are verified against central finite differences in the test suite.
"""

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled
from repro.nn import ops
from repro.nn.module import Module, Parameter, Sequential, StateLayout
from repro.nn.layers import Dense, Dropout
from repro.nn.loss import bce_with_logits_loss, l2_regularization, softmax_cross_entropy
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "Module",
    "Parameter",
    "Sequential",
    "StateLayout",
    "Dense",
    "Dropout",
    "softmax_cross_entropy",
    "bce_with_logits_loss",
    "l2_regularization",
    "Optimizer",
    "SGD",
    "Adam",
    "init",
]
