"""Reverse-mode autodiff ``Tensor`` over numpy arrays.

Minimal but complete: a ``Tensor`` wraps a float32 ``numpy.ndarray``, records
its parents and a backward closure when built by an op, and ``backward()``
runs the reverse topological sweep accumulating ``grad`` on every tensor
with ``requires_grad``.

Design choices (kept deliberately boring):

* float32 everywhere — matches the GNN workloads and halves memory;
* gradients accumulate (``+=``) so shared sub-expressions are handled;
* broadcasting in forward ops is undone in backward by summing the grad over
  the broadcast axes (:func:`unbroadcast`);
* a module-level switch (:func:`no_grad`) disables graph recording for
  inference paths, where AGL's GraphInfer runs millions of forwards.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "unbroadcast"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


@contextmanager
def no_grad():
    """Disable autograd recording inside the block (inference fast path)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Sums over leading extra axes, then over axes where ``shape`` had size 1.
    """
    if grad.shape == shape:
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an autograd tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        # Leaf tensors keep the requested flag even under no_grad(); only op
        # *recording* (see _make) is gated by the switch, mirroring PyTorch.
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward_fn = None
        self.name = name

    # -------------------------------------------------------- construction
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward_fn) -> "Tensor":
        """Internal: result tensor of an op, wired into the tape."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward_fn = backward_fn
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    # ------------------------------------------------------------ backward
    def backward(self, grad=None) -> None:
        """Reverse sweep from this tensor.

        ``grad`` defaults to ones (use a scalar loss).  Raises if called on a
        tensor that does not require grad — a silent no-op here usually means
        a training bug.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float32)
            if grad.shape != self.data.shape:
                raise ValueError(f"grad shape {grad.shape} != data shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
                # Free intermediate grads eagerly: only leaves keep them.
                if node._parents:
                    node.grad = None

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # ------------------------------------------------------------- helpers
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{tag})"

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    # ----------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._coerce(other)
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError(
                f"matmul expects 2-D operands, got {self.data.shape} @ {other.data.shape}"
            )
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).astype(np.float32))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        denom = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    # --------------------------------------------------------------- shapes
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        if self.data.ndim != 2:
            raise ValueError("transpose() supports 2-D tensors")
        out_data = self.data.T.copy()

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()
