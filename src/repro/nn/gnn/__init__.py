"""GNN layers and models (GCN, GraphSAGE, GAT) — substrate **S6**.

Every layer implements the paper's Equation 1 twice, against the same
parameters:

* ``forward(h, block)`` — the batched matrix form used by GraphTrainer
  (Equation 2/3), built on the autograd segment ops;
* ``infer_node(self_h, neigh_h, neigh_weight, edge_feat)`` — the per-node
  message-passing form used by GraphInfer's reducers (§3.4), plain numpy.

An integration test asserts the two forms agree to float tolerance, which is
the paper's "unbiased inference" property.
"""

from repro.nn.gnn.block import BatchInputs, EdgeBlock
from repro.nn.gnn.base import GNNLayer, GNNModel
from repro.nn.gnn.gcn import GCNLayer, GCNModel
from repro.nn.gnn.sage import GraphSAGELayer, GraphSAGEModel
from repro.nn.gnn.gat import GATLayer, GATModel
from repro.nn.gnn.geniepath import GeniePathLayer, GeniePathModel
from repro.nn.gnn.registry import build_layer, build_model, MODEL_REGISTRY

__all__ = [
    "EdgeBlock",
    "BatchInputs",
    "GNNLayer",
    "GNNModel",
    "GCNLayer",
    "GCNModel",
    "GraphSAGELayer",
    "GraphSAGEModel",
    "GATLayer",
    "GATModel",
    "GeniePathLayer",
    "GeniePathModel",
    "build_layer",
    "build_model",
    "MODEL_REGISTRY",
]
