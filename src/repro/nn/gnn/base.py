"""Abstract bases: ``GNNLayer`` (Equation 1) and ``GNNModel`` (stacked
layers + prediction head), plus the serialisable layer-slice protocol that
GraphInfer's hierarchical model segmentation uses (§3.4).
"""

from __future__ import annotations

import numpy as np

from repro.nn import ops
from repro.nn.gnn.block import BatchInputs, EdgeBlock
from repro.nn.layers import Dense, Dropout
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor

__all__ = ["GNNLayer", "GNNModel"]


class GNNLayer(Module):
    """One message-passing layer φ^(k) of Equation 1.

    Subclasses must implement the *pair* of computations and keep them
    mathematically identical:

    * :meth:`forward` — batched: ``H^(k+1) = Φ^(k)(H^(k), A_B, E_B; W)``;
    * :meth:`infer_node` — per-node: ``h^(k+1)_v = φ^(k)(h_v, {h_u}, {e_vu})``
      in plain numpy (GraphInfer runs it inside MapReduce reducers with no
      autograd available).

    ``slice_config()`` must return constructor kwargs sufficient for
    :func:`repro.nn.gnn.registry.build_layer` to rebuild the layer, which
    together with ``state_dict()`` forms a model slice.
    """

    kind: str = "abstract"

    def forward(self, h: Tensor, block: EdgeBlock) -> Tensor:  # pragma: no cover
        raise NotImplementedError

    def infer_node(
        self,
        self_h: np.ndarray,
        neigh_h: np.ndarray,
        neigh_weight: np.ndarray,
        edge_feat: np.ndarray | None = None,
    ) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def slice_config(self) -> dict:  # pragma: no cover
        raise NotImplementedError

    @property
    def output_dim(self) -> int:  # pragma: no cover
        raise NotImplementedError


class GNNModel(Module):
    """K GNN layers + dropout + a dense prediction head.

    The forward pass follows the demo of Figure 6: vectorized subgraph in,
    per-layer (optionally pruned) adjacency, look-up of target rows, then the
    prediction head over target embeddings only (graph pruning already
    guarantees non-target rows beyond the receptive field are never read).
    """

    def __init__(
        self,
        layers: list[GNNLayer],
        num_classes: int,
        dropout: float = 0.0,
        seed: int | None = None,
    ):
        super().__init__()
        if not layers:
            raise ValueError("GNNModel needs at least one layer")
        self.layers = ModuleList(list(layers))
        self.num_layers = len(layers)
        self.num_classes = num_classes
        self.dropout = Dropout(dropout, seed=None if seed is None else seed + 7919)
        self.head = Dense(
            layers[-1].output_dim,
            num_classes,
            activation=None,
            seed=None if seed is None else seed + 104729,
        )

    # ---------------------------------------------------------------- train
    def embed(self, batch: BatchInputs) -> Tensor:
        """All-node embeddings ``H^(K)`` for the batch subgraph."""
        h = Tensor(batch.x)
        for k, layer in enumerate(self.layers):
            h = self.dropout(h)
            h = layer(h, batch.block_for_layer(k))
        return h

    def forward(self, batch: BatchInputs) -> Tensor:
        """Logits for the batch's **target** nodes only."""
        h = self.embed(batch)
        target_h = ops.gather_rows(h, batch.target_index)
        return self.head(target_h)

    # ---------------------------------------------------------------- infer
    def layer_slices(self) -> list[tuple[str, dict, dict[str, np.ndarray]]]:
        """Hierarchical model segmentation (§3.4): K+1 serialisable slices.

        Slice k (< K) is ``(kind, config, state)`` of GNN layer k; slice K is
        the prediction head.  Everything is plain dict/ndarray so a slice can
        be shipped to a reducer without this framework on the wire.
        """
        slices = [
            (layer.kind, layer.slice_config(), layer.state_dict()) for layer in self.layers
        ]
        head_config = {
            "in_dim": self.head.in_dim,
            "out_dim": self.head.out_dim,
            "activation": self.head.activation,
        }
        slices.append(("dense_head", head_config, self.head.state_dict()))
        return slices

    def predict_head(self, h: np.ndarray) -> np.ndarray:
        """Apply the prediction head to raw embeddings (numpy, no autograd)."""
        out = h @ self.head.weight.data
        if self.head.bias is not None:
            out = out + self.head.bias.data
        return out
