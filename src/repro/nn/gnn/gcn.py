"""Graph Convolutional Network (Kipf & Welling 2016) layer and model.

Normalisation note: the textbook GCN uses the *symmetric* norm
``D^-1/2 (A+I) D^-1/2``, whose coefficients need the **global** degrees of
both endpoints.  Inside a k-hop neighborhood the in-edges of every node whose
embedding matters are complete (Theorem 1), but a *source* node at the
neighborhood boundary has incomplete degree information — so, like AGL, we
use the random-walk (mean) normalisation with self-loop

    h'_v = act( ( (h_v + Σ_u w_vu · m_u) / (deg_w(v) + 1) ) W + b ),

whose coefficients depend only on v's own in-edges.  This keeps the batched
training forward and the per-node inference slice *exactly* equal, which is
what GraphInfer's correctness rests on.  ``m_u = h_u`` plus an optional
edge-feature term ``e_vu W_e`` when the graph has edge features.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.gnn.base import GNNLayer, GNNModel
from repro.nn.gnn.block import EdgeBlock
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

__all__ = ["GCNLayer", "GCNModel"]


class GCNLayer(GNNLayer):
    kind = "gcn"

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str | None = "relu",
        edge_dim: int = 0,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        rng = new_rng(seed)
        self.in_dim = in_dim
        self.out_dim_ = out_dim
        self.activation = activation
        self.edge_dim = edge_dim
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng))
        self.bias = Parameter(init.zeros(out_dim))
        if edge_dim:
            self.edge_weight_mat = Parameter(init.xavier_uniform((edge_dim, in_dim), rng))

    @property
    def output_dim(self) -> int:
        return self.out_dim_

    def slice_config(self) -> dict:
        return {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim_,
            "activation": self.activation,
            "edge_dim": self.edge_dim,
        }

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation is None:
            return x
        if self.activation == "relu":
            return ops.relu(x)
        if self.activation == "elu":
            return ops.elu(x)
        if self.activation == "tanh":
            return ops.tanh(x)
        raise ValueError(f"unsupported activation {self.activation!r}")

    # ---------------------------------------------------------------- batch
    def forward(self, h: Tensor, block: EdgeBlock) -> Tensor:
        denom = block.in_degree_weights() + 1.0  # (n,) constant wrt autograd
        coeff = (block.weight / denom[block.dst]).astype(np.float32)  # (m,)

        messages = ops.gather_rows(h, block.src)
        if self.edge_dim and block.edge_feat is not None:
            messages = messages + Tensor(block.edge_feat) @ self.edge_weight_mat
        messages = messages * Tensor(coeff[:, None])
        agg = ops.segment_sum(messages, block.dst, block.num_nodes, backend=block.aggregator)
        combined = agg + h * Tensor((1.0 / denom)[:, None])
        return self._activate(combined @ self.weight + self.bias)

    # ------------------------------------------------------------- per-node
    def infer_node(
        self,
        self_h: np.ndarray,
        neigh_h: np.ndarray,
        neigh_weight: np.ndarray,
        edge_feat: np.ndarray | None = None,
    ) -> np.ndarray:
        denom = float(neigh_weight.sum()) + 1.0
        total = self_h.astype(np.float32).copy()
        if len(neigh_h):
            messages = neigh_h
            if self.edge_dim and edge_feat is not None:
                messages = messages + edge_feat @ self.edge_weight_mat.data
            total += (messages * neigh_weight[:, None]).sum(axis=0)
        combined = total / denom
        out = combined @ self.weight.data + self.bias.data
        if self.activation == "relu":
            return np.maximum(out, 0.0)
        if self.activation == "elu":
            return np.where(out > 0, out, np.exp(np.minimum(out, 0.0)) - 1.0).astype(np.float32)
        if self.activation == "tanh":
            return np.tanh(out)
        return out


class GCNModel(GNNModel):
    """Stacked GCN layers + dense head (the Figure 6 demo model)."""

    name = "gcn"

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.0,
        edge_dim: int = 0,
        seed: int | None = 0,
    ):
        dims = [in_dim] + [hidden_dim] * num_layers
        layers = [
            GCNLayer(
                dims[k],
                dims[k + 1],
                activation="relu",
                edge_dim=edge_dim,
                seed=None if seed is None else seed + k,
            )
            for k in range(num_layers)
        ]
        super().__init__(layers, num_classes, dropout=dropout, seed=seed)
        self.config = {
            "in_dim": in_dim,
            "hidden_dim": hidden_dim,
            "num_classes": num_classes,
            "num_layers": num_layers,
            "dropout": dropout,
            "edge_dim": edge_dim,
        }
