"""GeniePath (Liu et al., AAAI 2019) — adaptive receptive paths.

Ant Financial's own GNN, cited by the AGL paper ([12]) and deployed on the
same infrastructure, so it is the natural "ecosystem" model to run through
GraphFlat / GraphTrainer / GraphInfer.  Each layer combines

* **adaptive breadth** — an attention aggregation over in-edge neighbors,
  ``tmp_v = tanh( (Σ_u α_vu · h_u) W_t )`` with
  ``α_vu = softmax_u( v_a · tanh(h_v W_d + h_u W_s) )``;
* **adaptive depth** — an LSTM-style gate deciding how much of the new
  breadth signal enters the node's running memory:
  ``i, f, o = σ(tmp W_{i,f,o})``, ``C' = f ⊙ C + i ⊙ tanh(tmp W_c)``,
  ``h' = o ⊙ tanh(C')``.

The per-node state is ``(h, C)``; to keep the GraphInfer contract (one
embedding vector per node per round) a layer's output is the packed matrix
``[h' || C']``.  The first layer takes raw features and projects them
(``first=True``); the last layer emits ``h'`` alone for the prediction head
(``last=True``).  Batch and per-node forms are equal to float tolerance,
exactly like the other layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.gnn.base import GNNLayer, GNNModel
from repro.nn.gnn.block import EdgeBlock
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

__all__ = ["GeniePathLayer", "GeniePathModel"]


def _sigmoid_np(x: np.ndarray) -> np.ndarray:
    return (1.0 / (1.0 + np.exp(-x))).astype(np.float32)


class GeniePathLayer(GNNLayer):
    kind = "geniepath"

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        first: bool = False,
        last: bool = False,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        rng = new_rng(seed)
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.first = first
        self.last = last
        d = hidden_dim
        if first:
            self.w_x = Parameter(init.xavier_uniform((in_dim, d), rng))
        # breadth (attention)
        self.w_src = Parameter(init.xavier_uniform((d, d), rng))
        self.w_dst = Parameter(init.xavier_uniform((d, d), rng))
        self.v_att = Parameter(init.xavier_uniform((d, 1), rng))
        self.w_t = Parameter(init.xavier_uniform((d, d), rng))
        # depth (LSTM gates)
        self.w_i = Parameter(init.xavier_uniform((d, d), rng))
        self.w_f = Parameter(init.xavier_uniform((d, d), rng))
        self.w_o = Parameter(init.xavier_uniform((d, d), rng))
        self.w_c = Parameter(init.xavier_uniform((d, d), rng))

    @property
    def output_dim(self) -> int:
        return self.hidden_dim if self.last else 2 * self.hidden_dim

    def slice_config(self) -> dict:
        return {
            "in_dim": self.in_dim,
            "hidden_dim": self.hidden_dim,
            "first": self.first,
            "last": self.last,
        }

    # ----------------------------------------------------------- state prep
    def _unpack(self, state: Tensor) -> tuple[Tensor, Tensor]:
        """``state`` -> (h, C): project raw features on the first layer."""
        d = self.hidden_dim
        if self.first:
            h = state @ self.w_x
            c = Tensor(np.zeros((state.shape[0], d), dtype=np.float32))
            return h, c
        return ops.slice_cols(state, 0, d), ops.slice_cols(state, d, 2 * d)

    # ---------------------------------------------------------------- batch
    def forward(self, state: Tensor, block: EdgeBlock) -> Tensor:
        h, c = self._unpack(state)
        n = block.num_nodes

        # adaptive breadth: attention over in-edge neighbors
        src_part = ops.gather_rows(h @ self.w_src, block.src)
        dst_part = ops.gather_rows(h @ self.w_dst, block.dst)
        scores = (ops.tanh(src_part + dst_part) @ self.v_att).reshape(block.num_edges)
        alpha = ops.segment_softmax(scores, block.dst, n, backend=block.aggregator)
        messages = ops.gather_rows(h, block.src) * alpha.reshape(block.num_edges, 1)
        agg = ops.segment_sum(messages, block.dst, n, backend=block.aggregator)
        tmp = ops.tanh(agg @ self.w_t)

        # adaptive depth: LSTM gate over the running memory
        gate_i = ops.sigmoid(tmp @ self.w_i)
        gate_f = ops.sigmoid(tmp @ self.w_f)
        gate_o = ops.sigmoid(tmp @ self.w_o)
        candidate = ops.tanh(tmp @ self.w_c)
        c_next = gate_f * c + gate_i * candidate
        h_next = gate_o * ops.tanh(c_next)
        if self.last:
            return h_next
        return ops.concat([h_next, c_next], axis=1)

    # ------------------------------------------------------------- per-node
    def infer_node(
        self,
        self_h: np.ndarray,
        neigh_h: np.ndarray,
        neigh_weight: np.ndarray,
        edge_feat: np.ndarray | None = None,
    ) -> np.ndarray:
        d = self.hidden_dim
        if self.first:
            h_self = self_h @ self.w_x.data
            c_self = np.zeros(d, dtype=np.float32)
            h_neigh = neigh_h @ self.w_x.data if len(neigh_h) else np.zeros((0, d), np.float32)
        else:
            h_self, c_self = self_h[:d], self_h[d:]
            h_neigh = neigh_h[:, :d] if len(neigh_h) else np.zeros((0, d), np.float32)

        if len(h_neigh):
            scores = np.tanh(
                h_neigh @ self.w_src.data + h_self @ self.w_dst.data
            ) @ self.v_att.data
            scores = scores.reshape(-1)
            scores -= scores.max()
            alpha = np.exp(scores)
            alpha /= alpha.sum()
            agg = (alpha[:, None] * h_neigh).sum(axis=0)
        else:
            agg = np.zeros(d, dtype=np.float32)
        tmp = np.tanh(agg @ self.w_t.data)

        gate_i = _sigmoid_np(tmp @ self.w_i.data)
        gate_f = _sigmoid_np(tmp @ self.w_f.data)
        gate_o = _sigmoid_np(tmp @ self.w_o.data)
        candidate = np.tanh(tmp @ self.w_c.data)
        c_next = gate_f * c_self + gate_i * candidate
        h_next = (gate_o * np.tanh(c_next)).astype(np.float32)
        if self.last:
            return h_next
        return np.concatenate([h_next, c_next.astype(np.float32)])


class GeniePathModel(GNNModel):
    """Input projection + T adaptive-path layers + dense head.

    Dropout defaults to 0: dropping LSTM memory cells between layers is not
    part of the GeniePath recipe.
    """

    name = "geniepath"

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        seed: int | None = 0,
    ):
        layers = [
            GeniePathLayer(
                in_dim if k == 0 else 2 * hidden_dim,
                hidden_dim,
                first=k == 0,
                last=k == num_layers - 1,
                seed=None if seed is None else seed + k,
            )
            for k in range(num_layers)
        ]
        super().__init__(layers, num_classes, dropout=0.0, seed=seed)
        self.config = {
            "in_dim": in_dim,
            "hidden_dim": hidden_dim,
            "num_classes": num_classes,
            "num_layers": num_layers,
        }
