"""Graph Attention Network (Veličković et al. 2018) layer and model.

Multi-head attention over ``{v} ∪ N+_v`` (self-loops are added inside the
layer, via the block's cached self-loop variant).  Per head ``t``:

    z_i   = h_i W_t
    e_vu  = LeakyReLU(a_src·z_u + a_dst·z_v)            (u -> v edges + v -> v)
    α_vu  = softmax over v's in-edges (segment softmax)
    h'_v  = act( Σ_u α_vu z_u )

Hidden layers concatenate heads; a final attention layer can average them
(``concat_heads=False``).  Attention replaces edge weights, so ``block.
weight`` is unused — matching the paper's UUG experiment where GAT learns
per-neighbor importance that plain weighting cannot (§4.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.gnn.base import GNNLayer, GNNModel
from repro.nn.gnn.block import EdgeBlock
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

__all__ = ["GATLayer", "GATModel"]


class GATLayer(GNNLayer):
    kind = "gat"

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_heads: int = 4,
        concat_heads: bool = True,
        activation: str | None = "elu",
        negative_slope: float = 0.2,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        rng = new_rng(seed)
        self.in_dim = in_dim
        self.out_dim_ = out_dim
        self.num_heads = num_heads
        self.concat_heads = concat_heads
        self.activation = activation
        self.negative_slope = negative_slope
        self.weight = Parameter(init.xavier_uniform((in_dim, num_heads * out_dim), rng))
        self.a_src = Parameter(init.xavier_uniform((num_heads, out_dim), rng))
        self.a_dst = Parameter(init.xavier_uniform((num_heads, out_dim), rng))
        self.bias = Parameter(init.zeros(self.output_dim))

    @property
    def output_dim(self) -> int:
        return self.out_dim_ * (self.num_heads if self.concat_heads else 1)

    def slice_config(self) -> dict:
        return {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim_,
            "num_heads": self.num_heads,
            "concat_heads": self.concat_heads,
            "activation": self.activation,
            "negative_slope": self.negative_slope,
        }

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation is None:
            return x
        if self.activation == "elu":
            return ops.elu(x)
        if self.activation == "relu":
            return ops.relu(x)
        raise ValueError(f"unsupported activation {self.activation!r}")

    # ---------------------------------------------------------------- batch
    def forward(self, h: Tensor, block: EdgeBlock) -> Tensor:
        loop_block = block.with_self_loops()
        n = loop_block.num_nodes
        z = (h @ self.weight).reshape(n, self.num_heads, self.out_dim_)
        s_src = (z * self.a_src).sum(axis=-1)  # (n, heads)
        s_dst = (z * self.a_dst).sum(axis=-1)

        e = ops.leaky_relu(
            ops.gather_rows(s_src, loop_block.src) + ops.gather_rows(s_dst, loop_block.dst),
            self.negative_slope,
        )  # (m', heads)
        alpha = ops.segment_softmax(e, loop_block.dst, n, backend=loop_block.aggregator)
        weighted = ops.gather_rows(z, loop_block.src) * alpha.reshape(
            loop_block.num_edges, self.num_heads, 1
        )
        agg = ops.segment_sum(weighted, loop_block.dst, n, backend=loop_block.aggregator)
        if self.concat_heads:
            out = agg.reshape(n, self.num_heads * self.out_dim_)
        else:
            out = agg.sum(axis=1) * (1.0 / self.num_heads)
        return self._activate(out + self.bias)

    # ------------------------------------------------------------- per-node
    def infer_node(
        self,
        self_h: np.ndarray,
        neigh_h: np.ndarray,
        neigh_weight: np.ndarray,
        edge_feat: np.ndarray | None = None,
    ) -> np.ndarray:
        heads, out_dim = self.num_heads, self.out_dim_
        # Stack self last, matching the self-loop edge added in batch mode.
        if len(neigh_h):
            pool = np.concatenate([neigh_h, self_h[None, :]], axis=0)
        else:
            pool = self_h[None, :]
        z = (pool @ self.weight.data).reshape(len(pool), heads, out_dim)
        z_self = z[-1]  # (heads, out)
        s_src = (z * self.a_src.data).sum(axis=-1)  # (k+1, heads)
        s_dst = (z_self * self.a_dst.data).sum(axis=-1)  # (heads,)
        e = s_src + s_dst[None, :]
        e = np.where(e > 0, e, self.negative_slope * e)
        e -= e.max(axis=0, keepdims=True)
        alpha = np.exp(e)
        alpha /= alpha.sum(axis=0, keepdims=True)
        agg = (z * alpha[:, :, None]).sum(axis=0)  # (heads, out)
        if self.concat_heads:
            out = agg.reshape(heads * out_dim)
        else:
            out = agg.mean(axis=0)
        out = out + self.bias.data
        if self.activation == "elu":
            return np.where(out > 0, out, np.exp(np.minimum(out, 0.0)) - 1.0).astype(np.float32)
        if self.activation == "relu":
            return np.maximum(out, 0.0)
        return out.astype(np.float32)


class GATModel(GNNModel):
    name = "gat"

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        num_heads: int = 4,
        dropout: float = 0.0,
        seed: int | None = 0,
    ):
        layers: list[GATLayer] = []
        dim = in_dim
        for k in range(num_layers):
            last = k == num_layers - 1
            layer = GATLayer(
                dim,
                hidden_dim,
                num_heads=num_heads,
                concat_heads=not last,
                activation="elu",
                seed=None if seed is None else seed + k,
            )
            layers.append(layer)
            dim = layer.output_dim
        super().__init__(layers, num_classes, dropout=dropout, seed=seed)
        self.config = {
            "in_dim": in_dim,
            "hidden_dim": hidden_dim,
            "num_classes": num_classes,
            "num_layers": num_layers,
            "num_heads": num_heads,
            "dropout": dropout,
        }
