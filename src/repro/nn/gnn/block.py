"""``EdgeBlock`` — the vectorized adjacency a GNN layer consumes.

This is the in-model form of the paper's three matrices (§3.3.1): the sparse
adjacency ``A_B`` (as destination-sorted COO plus weights), with ``X_B`` and
``E_B`` carried alongside by :class:`BatchInputs`.  Edges **must** be sorted
by destination: that is the contract that makes edge partitioning (§3.3.2)
conflict-free, and the partitioned aggregation backend relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EdgeBlock", "BatchInputs"]


@dataclass
class EdgeBlock:
    """Destination-sorted sparse adjacency over ``num_nodes`` local nodes.

    ``aggregator`` is an optional segment-sum forward backend (see
    ``repro.nn.ops.segment_sum``); ``None`` selects the generic scatter-add.
    GraphTrainer's edge-partitioning strategy installs its optimized backend
    here — model code never changes.
    """

    src: np.ndarray
    dst: np.ndarray
    num_nodes: int
    weight: np.ndarray | None = None
    edge_feat: np.ndarray | None = None
    aggregator: object | None = None
    _self_loop_cache: "EdgeBlock | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("src/dst must be aligned 1-D arrays")
        if self.weight is None:
            self.weight = np.ones(len(self.src), dtype=np.float32)
        else:
            self.weight = np.asarray(self.weight, dtype=np.float32)
        if len(self.dst) and np.any(np.diff(self.dst) < 0):
            raise ValueError("EdgeBlock edges must be sorted by destination")
        if len(self.src) and (
            self.src.max() >= self.num_nodes or self.dst.max() >= self.num_nodes
        ):
            raise ValueError("edge endpoint out of range")

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def with_self_loops(self) -> "EdgeBlock":
        """Block with ``v -> v`` edges added for every node, re-sorted by
        destination (GAT attends over ``{v} ∪ N+(v)``).  Cached: the result
        is reused across layers/epochs.  Self-loop weight is 1, self-loop
        edge features are zero."""
        if self._self_loop_cache is not None:
            return self._self_loop_cache
        loops = np.arange(self.num_nodes, dtype=np.int64)
        src = np.concatenate([self.src, loops])
        dst = np.concatenate([self.dst, loops])
        weight = np.concatenate([self.weight, np.ones(self.num_nodes, dtype=np.float32)])
        edge_feat = None
        if self.edge_feat is not None:
            edge_feat = np.concatenate(
                [self.edge_feat, np.zeros((self.num_nodes, self.edge_feat.shape[1]), np.float32)]
            )
        order = np.argsort(dst, kind="stable")
        block = EdgeBlock(
            src[order],
            dst[order],
            self.num_nodes,
            weight[order],
            None if edge_feat is None else edge_feat[order],
            self.aggregator,
        )
        # Layout-bound aggregators (edge partitioning) must be rebuilt for
        # the augmented edge list; stateless backends pass through.
        if hasattr(block.aggregator, "rebind"):
            block.aggregator = block.aggregator.rebind(block)
        self._self_loop_cache = block
        return block

    def in_degree_weights(self) -> np.ndarray:
        """Total in-edge weight per destination node (``(num_nodes,)``)."""
        deg = np.zeros(self.num_nodes, dtype=np.float32)
        np.add.at(deg, self.dst, self.weight)
        return deg


@dataclass
class BatchInputs:
    """Everything a model's batched forward needs (§3.3.1's three matrices).

    ``layer_blocks[k]`` is the (possibly pruned, §3.3.2) adjacency used by
    layer ``k``; without pruning all entries alias one block.  ``x`` is
    ``X_B``; per-edge features ``E_B`` ride inside the blocks.
    """

    x: np.ndarray
    target_index: np.ndarray
    layer_blocks: list[EdgeBlock]
    pair_index: np.ndarray | None = None
    """Edge-level tasks: ``(B, 2)`` rows mapping each sample's ``(src,
    dst)`` endpoints into the batch's merged target rows (i.e. indices into
    ``gather_rows(h, target_index)``); ``None`` for node-level batches."""

    def block_for_layer(self, k: int) -> EdgeBlock:
        if not self.layer_blocks:
            raise ValueError("batch has no adjacency blocks")
        if k < 0:
            raise IndexError("layer index must be non-negative")
        # Models deeper than the pruning schedule reuse the last block.
        return self.layer_blocks[min(k, len(self.layer_blocks) - 1)]

    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]
