"""Factories that rebuild layers/models from serialisable descriptions.

GraphInfer ships ``(kind, config, state)`` slices to MapReduce reducers;
:func:`build_layer` reconstructs the layer there.  :func:`build_model` is the
string-keyed entry point the benchmark harness and the Figure 6-style demo
API use (``GraphTrainer -m model_name``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.gnn.base import GNNLayer
from repro.nn.gnn.gat import GATLayer, GATModel
from repro.nn.gnn.gcn import GCNLayer, GCNModel
from repro.nn.gnn.geniepath import GeniePathLayer, GeniePathModel
from repro.nn.gnn.sage import GraphSAGELayer, GraphSAGEModel
from repro.nn.layers import Dense

__all__ = ["LAYER_REGISTRY", "MODEL_REGISTRY", "build_layer", "build_model"]

LAYER_REGISTRY = {
    "gcn": GCNLayer,
    "sage": GraphSAGELayer,
    "gat": GATLayer,
    "geniepath": GeniePathLayer,
    "dense_head": Dense,
}

MODEL_REGISTRY = {
    "gcn": GCNModel,
    "graphsage": GraphSAGEModel,
    "gat": GATModel,
    "geniepath": GeniePathModel,
}


def build_layer(kind: str, config: dict, state: dict[str, np.ndarray] | None = None):
    """Reconstruct a layer (or the dense head) from its slice description."""
    if kind not in LAYER_REGISTRY:
        raise KeyError(f"unknown layer kind {kind!r}; known: {sorted(LAYER_REGISTRY)}")
    layer = LAYER_REGISTRY[kind](**config)
    if state is not None:
        layer.load_state_dict(state)
    return layer


def build_model(name: str, **kwargs):
    """Build a model by registry name (``gcn`` / ``graphsage`` / ``gat``)."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](**kwargs)


def is_gnn_layer(obj) -> bool:
    return isinstance(obj, GNNLayer)
