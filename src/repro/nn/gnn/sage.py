"""GraphSAGE (Hamilton et al. 2017) layer and model.

Combine mode follows the paper's observation (§4.2.1) that AGL/DGL/PyG
propagate the aggregated neighbor information with an **add** operator

    h'_v = act( h_v W_self + AGG({h_u}) W_neigh + b ),

with ``"concat"`` available as the original GraphSAGE flavour.  Aggregators:
``"mean"`` (default), ``"sum"`` and ``"max"`` (elementwise max-pooling).
Edge weights are intentionally ignored — GraphSAGE treats neighbors
uniformly; weighted graphs are the domain of GCN/GAT.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.gnn.base import GNNLayer, GNNModel
from repro.nn.gnn.block import EdgeBlock
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

__all__ = ["GraphSAGELayer", "GraphSAGEModel"]

_AGGREGATORS = ("mean", "sum", "max")
_COMBINES = ("add", "concat")


class GraphSAGELayer(GNNLayer):
    kind = "sage"

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        aggregator: str = "mean",
        combine: str = "add",
        activation: str | None = "relu",
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if aggregator not in _AGGREGATORS:
            raise ValueError(f"aggregator must be one of {_AGGREGATORS}, got {aggregator!r}")
        if combine not in _COMBINES:
            raise ValueError(f"combine must be one of {_COMBINES}, got {combine!r}")
        rng = new_rng(seed)
        self.in_dim = in_dim
        self.out_dim_ = out_dim
        self.aggregator = aggregator
        self.combine = combine
        self.activation = activation
        self.w_self = Parameter(init.xavier_uniform((in_dim, out_dim), rng))
        self.w_neigh = Parameter(init.xavier_uniform((in_dim, out_dim), rng))
        self.bias = Parameter(init.zeros(out_dim))

    @property
    def output_dim(self) -> int:
        return self.out_dim_ * (2 if self.combine == "concat" else 1)

    def slice_config(self) -> dict:
        return {
            "in_dim": self.in_dim,
            "out_dim": self.out_dim_,
            "aggregator": self.aggregator,
            "combine": self.combine,
            "activation": self.activation,
        }

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation is None:
            return x
        if self.activation == "relu":
            return ops.relu(x)
        if self.activation == "elu":
            return ops.elu(x)
        raise ValueError(f"unsupported activation {self.activation!r}")

    def _activate_np(self, x: np.ndarray) -> np.ndarray:
        if self.activation is None:
            return x
        if self.activation == "relu":
            return np.maximum(x, 0.0)
        if self.activation == "elu":
            return np.where(x > 0, x, np.exp(np.minimum(x, 0.0)) - 1.0).astype(np.float32)
        raise ValueError(f"unsupported activation {self.activation!r}")

    # ---------------------------------------------------------------- batch
    def forward(self, h: Tensor, block: EdgeBlock) -> Tensor:
        messages = ops.gather_rows(h, block.src)
        if self.aggregator == "mean":
            agg = ops.segment_mean(messages, block.dst, block.num_nodes, backend=block.aggregator)
        elif self.aggregator == "sum":
            agg = ops.segment_sum(messages, block.dst, block.num_nodes, backend=block.aggregator)
        else:  # max
            agg = ops.segment_max(messages, block.dst, block.num_nodes)
        self_part = h @ self.w_self
        neigh_part = agg @ self.w_neigh
        if self.combine == "add":
            return self._activate(self_part + neigh_part + self.bias)
        return ops.concat(
            [self._activate(self_part + self.bias), self._activate(neigh_part + self.bias)],
            axis=-1,
        )

    # ------------------------------------------------------------- per-node
    def infer_node(
        self,
        self_h: np.ndarray,
        neigh_h: np.ndarray,
        neigh_weight: np.ndarray,
        edge_feat: np.ndarray | None = None,
    ) -> np.ndarray:
        if len(neigh_h) == 0:
            agg = np.zeros(self.in_dim, dtype=np.float32)
        elif self.aggregator == "mean":
            agg = neigh_h.mean(axis=0)
        elif self.aggregator == "sum":
            agg = neigh_h.sum(axis=0)
        else:
            agg = neigh_h.max(axis=0)
        self_part = self_h @ self.w_self.data
        neigh_part = agg @ self.w_neigh.data
        if self.combine == "add":
            return self._activate_np(self_part + neigh_part + self.bias.data)
        return np.concatenate(
            [
                self._activate_np(self_part + self.bias.data),
                self._activate_np(neigh_part + self.bias.data),
            ]
        )


class GraphSAGEModel(GNNModel):
    name = "graphsage"

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        aggregator: str = "mean",
        combine: str = "add",
        dropout: float = 0.0,
        seed: int | None = 0,
    ):
        layers: list[GraphSAGELayer] = []
        dim = in_dim
        for k in range(num_layers):
            layer = GraphSAGELayer(
                dim,
                hidden_dim,
                aggregator=aggregator,
                combine=combine,
                activation="relu",
                seed=None if seed is None else seed + k,
            )
            layers.append(layer)
            dim = layer.output_dim
        super().__init__(layers, num_classes, dropout=dropout, seed=seed)
        self.config = {
            "in_dim": in_dim,
            "hidden_dim": hidden_dim,
            "num_classes": num_classes,
            "num_layers": num_layers,
            "aggregator": aggregator,
            "combine": combine,
            "dropout": dropout,
        }
