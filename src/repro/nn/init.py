"""Weight initializers (Glorot/Xavier, Kaiming/He, constants).

All take an explicit ``numpy.random.Generator`` — reproducible experiments
need seedable initialisation, and the PS workers must be able to agree on
the initial model (worker 0 initialises, others pull).
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "ones", "constant"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer needs at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform: U(-a, a), a = gain * sqrt(6/(fi+fo))."""
    fan_in, fan_out = _fans(tuple(shape))
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(size=shape) * std).astype(np.float32)


def kaiming_uniform(shape, rng: np.random.Generator, negative_slope: float = 0.0) -> np.ndarray:
    """He et al. (2015) uniform, for ReLU-family activations."""
    fan_in, _ = _fans(tuple(shape))
    gain = np.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def constant(shape, value: float) -> np.ndarray:
    return np.full(shape, value, dtype=np.float32)
