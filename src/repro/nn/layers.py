"""Generic dense layers shared by every GNN model and the prediction head."""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng

__all__ = ["Dense", "Dropout"]

_ACTIVATIONS = {
    None: lambda x: x,
    "relu": ops.relu,
    "elu": ops.elu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "leaky_relu": ops.leaky_relu,
}


class Dense(Module):
    """Affine layer ``y = act(x W + b)``.

    ``activation`` is one of ``None | "relu" | "elu" | "tanh" | "sigmoid" |
    "leaky_relu"`` — string-keyed so model configs stay serialisable.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str | None = None,
        use_bias: bool = True,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = new_rng(seed)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.weight = Parameter(init.xavier_uniform((in_dim, out_dim), rng), name="weight")
        self.bias = Parameter(init.zeros(out_dim), name="bias") if use_bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return _ACTIVATIONS[self.activation](out)


class Dropout(Module):
    """Module wrapper over :func:`repro.nn.ops.dropout` with its own RNG."""

    def __init__(self, p: float, seed: int | np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, self._rng, training=self.training)
