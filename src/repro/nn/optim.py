"""Optimizers, factored so the math is shared by two call sites.

The *stateless update rules* (:func:`sgd_update`, :func:`adam_update`)
operate on plain numpy arrays.  They are used by

* the local :class:`Optimizer` subclasses below (standalone training, the
  Table 3/4 experiments), and
* the **server-side** optimizers of ``repro.ps`` — in AGL the model update
  happens on the parameter servers, so the rules must be expressible without
  any autograd objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Parameter

__all__ = ["sgd_update", "adam_update", "AdamState", "Optimizer", "SGD", "Adam"]


def sgd_update(
    value: np.ndarray,
    grad: np.ndarray,
    velocity: np.ndarray | None,
    lr: float,
    momentum: float = 0.0,
    weight_decay: float = 0.0,
) -> np.ndarray | None:
    """In-place SGD step on ``value``; returns the updated velocity buffer."""
    if weight_decay:
        grad = grad + weight_decay * value
    if momentum:
        if velocity is None:
            velocity = np.zeros_like(value)
        velocity *= momentum
        velocity += grad
        value -= lr * velocity
        return velocity
    value -= lr * grad
    return None


@dataclass
class AdamState:
    """Per-parameter Adam moments (lives on the parameter server in AGL)."""

    m: np.ndarray
    v: np.ndarray
    step: int = 0

    @staticmethod
    def like(value: np.ndarray) -> "AdamState":
        return AdamState(np.zeros_like(value), np.zeros_like(value))


def adam_update(
    value: np.ndarray,
    grad: np.ndarray,
    state: AdamState,
    lr: float,
    beta1: float = 0.9,
    beta2: float = 0.999,
    eps: float = 1e-8,
    weight_decay: float = 0.0,
) -> None:
    """In-place Adam step (Kingma & Ba 2015), the paper's optimizer (§4.1.2)."""
    if weight_decay:
        grad = grad + weight_decay * value
    state.step += 1
    state.m *= beta1
    state.m += (1.0 - beta1) * grad
    state.v *= beta2
    state.v += (1.0 - beta2) * grad * grad
    m_hat = state.m / (1.0 - beta1**state.step)
    v_hat = state.v / (1.0 - beta2**state.step)
    value -= lr * m_hat / (np.sqrt(v_hat) + eps)


@dataclass
class Optimizer:
    """Base class: hold parameters, step from their ``.grad`` fields."""

    params: list[Parameter]
    lr: float

    def __post_init__(self):
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if self.lr <= 0:
            raise ValueError(f"learning rate must be positive, got {self.lr}")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class SGD(Optimizer):
    momentum: float = 0.0
    weight_decay: float = 0.0
    _velocity: dict[int, np.ndarray | None] = field(default_factory=dict)

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            vel = self._velocity.get(id(p))
            self._velocity[id(p)] = sgd_update(
                p.data, p.grad, vel, self.lr, self.momentum, self.weight_decay
            )


@dataclass
class Adam(Optimizer):
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0
    _state: dict[int, AdamState] = field(default_factory=dict)

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            state = self._state.get(id(p))
            if state is None:
                state = self._state[id(p)] = AdamState.like(p.data)
            adam_update(
                p.data,
                p.grad,
                state,
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
            )
