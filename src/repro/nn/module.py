"""``Parameter`` / ``Module`` containers and state-dict (de)serialisation.

Modules are the unit GraphInfer's *hierarchical model segmentation* (§3.4)
operates on: a trained K-layer GNN is split into K+1 slices, each slice being
the state-dict of one layer module.  ``state_dict`` / ``load_state_dict``
therefore round-trip through plain ``dict[str, np.ndarray]`` so slices can be
shipped to MapReduce reducers (and to parameter servers) without this
framework on the wire.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "Sequential", "StateLayout"]


@dataclass(frozen=True)
class StateLayout:
    """Fixed mapping of a state dict onto one contiguous float32 slab.

    The shared-memory parameter server keeps the whole model as a single
    flat ``float32`` vector; this layout (sorted parameter names, C-order
    slices) is the contract both sides agree on.  It is plain data —
    picklable, so worker processes can carry it — and every array it hands
    back from :meth:`unflatten` is a *view* into the given slab, which is
    what makes a pull a view refresh instead of a serialization pass.

    The contract is not PS-specific: any state dict — a whole model, one
    GraphInfer model slice, a raw ``named_parameters`` mapping — flattens
    the same way, which is what lets ``repro.ps.shm.SlabBroadcast`` pack
    several heterogeneous state dicts into one slab back to back.
    :meth:`flatten` accepts plain arrays or ``Parameter``/``Tensor``
    values, and ``out`` may be any float32 view of the right length (e.g.
    a sub-range of a larger slab).
    """

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    offsets: tuple[int, ...]
    total_size: int

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "StateLayout":
        names = tuple(sorted(state))
        shapes, offsets, offset = [], [], 0
        for name in names:
            # accept raw arrays or Parameter/Tensor objects (``.data`` holds
            # the ndarray)
            shape = tuple(np.shape(getattr(state[name], "data", state[name])))
            shapes.append(shape)
            offsets.append(offset)
            offset += int(np.prod(shape, dtype=np.int64)) if shape else 1
        return cls(names, tuple(shapes), tuple(offsets), offset)

    @classmethod
    def from_module(cls, module: "Module") -> "StateLayout":
        return cls.from_state(dict(module.named_parameters()))

    def _slot(self, i: int) -> slice:
        shape = self.shapes[i]
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return slice(self.offsets[i], self.offsets[i] + size)

    def flatten(self, state: dict[str, np.ndarray], out: np.ndarray | None = None) -> np.ndarray:
        """Pack ``state`` into ``out`` (or a fresh ``float32`` vector)."""
        if out is None:
            out = np.empty(self.total_size, dtype=np.float32)
        if out.shape != (self.total_size,) or out.dtype != np.float32:
            raise ValueError(
                f"slab must be float32[{self.total_size}], got {out.dtype}{out.shape}"
            )
        missing = set(self.names) - state.keys()
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for i, name in enumerate(self.names):
            raw = state[name]
            value = np.asarray(getattr(raw, "data", raw), dtype=np.float32)
            if value.shape != self.shapes[i]:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != expected {self.shapes[i]}"
                )
            out[self._slot(i)] = value.reshape(-1)
        return out

    def unflatten(self, flat: np.ndarray) -> dict[str, np.ndarray]:
        """State dict of *views* into ``flat`` (no copies)."""
        if flat.shape != (self.total_size,):
            raise ValueError(f"expected float32[{self.total_size}], got {flat.shape}")
        return {
            name: flat[self._slot(i)].reshape(self.shapes[i])
            for i, name in enumerate(self.names)
        }


class Parameter(Tensor):
    """A trainable leaf tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with automatic parameter/submodule registration."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if "_parameters" not in self.__dict__:
            raise RuntimeError(
                f"call super().__init__() before assigning attributes on {type(self).__name__}"
            )
        self._parameters.pop(name, None)
        self._modules.pop(name, None)
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------ traversal
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ----------------------------------------------------------------- mode
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------ state i/o
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """In-place load (keeps parameter object identity — PS references
        into the model stay valid).  Strict: keys and shapes must match."""
        own = dict(self.named_parameters())
        missing = own.keys() - state.keys()
        unexpected = state.keys() - own.keys()
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != expected {param.data.shape}"
                )
            param.data[...] = value

    # -------------------------------------------------------------- calling
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """List container whose elements are registered submodules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)


class Sequential(Module):
    """Feed-forward chain of modules."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
