"""Deterministic random-number-generator helpers.

Every stochastic component in the library (samplers, initializers, dataset
generators, failure injectors) takes an explicit seed or ``numpy.random.
Generator`` so that experiments are reproducible run-to-run.  These helpers
centralise the conversion between the two.
"""

from __future__ import annotations

import numpy as np

__all__ = ["new_rng", "spawn_rngs", "RngMixin"]


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged), so call sites can expose a single
    ``seed`` argument that covers all three idioms.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the child streams are statistically
    independent — important when several workers sample neighborhoods in
    parallel and we still want the run to be reproducible.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    def __init__(self, seed: int | np.random.Generator | None = None):
        self._rng = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def reseed(self, seed: int | np.random.Generator | None) -> None:
        """Replace the generator (e.g. between benchmark repetitions)."""
        self._rng = new_rng(seed)
