"""Shared utilities: seeded RNG management, timers, and logging."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timer import Timer, TimerRegistry

__all__ = ["RngMixin", "new_rng", "spawn_rngs", "Timer", "TimerRegistry"]
