"""Wall-clock timers used by the trainer pipeline and the benchmark harness.

The paper reports per-phase costs (subgraph vectorization vs. model
computation, Table 4; GraphFlat vs. forward propagation, Table 5).  The
``TimerRegistry`` collects named accumulating timers so those decompositions
can be reported without sprinkling ``time.perf_counter`` through the code.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "TimerRegistry"]


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    ``total`` is the sum of all timed intervals, ``count`` the number of
    intervals, so ``mean`` gives per-call latency.  With ``keep_intervals``
    every ``(start, stop)`` pair is retained, which lets callers check
    *concurrency* between two timers (e.g. that the training pipeline's
    preprocessing really overlaps model computation).
    """

    name: str = ""
    total: float = 0.0
    count: int = 0
    keep_intervals: bool = False
    intervals: list = field(default_factory=list)
    _started: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError(f"timer {self.name!r} already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} not running")
        stopped = time.perf_counter()
        elapsed = stopped - self._started
        if self.keep_intervals:
            self.intervals.append((self._started, stopped))
        self._started = None
        self.total += elapsed
        self.count += 1
        return elapsed

    @staticmethod
    def overlap_seconds(a: "Timer", b: "Timer") -> float:
        """Total time during which an interval of ``a`` and an interval of
        ``b`` were running simultaneously (both need ``keep_intervals``)."""
        total = 0.0
        for a0, a1 in a.intervals:
            for b0, b1 in b.intervals:
                total += max(0.0, min(a1, b1) - max(a0, b0))
        return total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @contextmanager
    def timing(self):
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self._started = None
        self.intervals = []


class TimerRegistry:
    """Dictionary of named :class:`Timer` objects with a context helper."""

    def __init__(self, keep_intervals: bool = False):
        self._timers: dict[str, Timer] = {}
        self._keep_intervals = keep_intervals

    def __getitem__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name=name, keep_intervals=self._keep_intervals)
        return self._timers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    @contextmanager
    def timing(self, name: str):
        with self[name].timing() as t:
            yield t

    def totals(self) -> dict[str, float]:
        """Snapshot of accumulated seconds per timer, sorted by name."""
        return {name: t.total for name, t in sorted(self._timers.items())}

    def reset(self) -> None:
        for t in self._timers.values():
            t.reset()

    def report(self) -> str:
        """Human-readable one-line-per-timer report."""
        lines = []
        for name, t in sorted(self._timers.items()):
            lines.append(f"{name:<32s} total={t.total:9.4f}s calls={t.count:6d} mean={t.mean * 1e3:9.3f}ms")
        return "\n".join(lines)
