"""Multi-worker training against the parameter servers (Figure 4 / §4.2.2).

Each worker owns a disjoint shard of the GraphFlat samples (data parallel —
legal because k-hop neighborhoods made samples independent) and runs the
ordinary GraphTrainer loop with a :class:`~repro.ps.server.PSClient`
installed: pull fresh parameters, compute gradients, push.  Workers run on
threads; numpy kernels release the GIL for the BLAS-heavy parts, and the
*convergence dynamics* (Figure 7's subject) are real asynchronous/BSP
dynamics either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.trainer.trainer import GraphTrainer, TrainerConfig
from repro.core.trainer.vectorize import TrainSample
from repro.ps.server import ParameterServerGroup

__all__ = ["DistributedConfig", "DistributedTrainer"]


@dataclass
class DistributedConfig:
    num_workers: int = 4
    num_servers: int = 2
    mode: str = "async"
    staleness: int = 2
    seed: int = 0


class DistributedTrainer:
    """Orchestrates N workers + a server group over one model architecture.

    ``model_factory`` must return a freshly-built model with *identical*
    initialisation on every call (pass a fixed seed); worker 0's state
    initialises the servers, every worker immediately pulls, so all replicas
    start in agreement.
    """

    def __init__(
        self,
        model_factory,
        trainer_config: TrainerConfig,
        dist_config: DistributedConfig | None = None,
    ):
        self.dist = dist_config or DistributedConfig()
        self.config = trainer_config
        self.group = ParameterServerGroup(
            num_servers=self.dist.num_servers,
            num_workers=self.dist.num_workers,
            optimizer=trainer_config.optimizer,
            lr=trainer_config.lr,
            weight_decay=trainer_config.weight_decay,
            mode=self.dist.mode,
            staleness=self.dist.staleness,
        )
        self.workers: list[GraphTrainer] = []
        for w in range(self.dist.num_workers):
            worker_cfg = TrainerConfig(**{**trainer_config.__dict__})
            worker_cfg.seed = trainer_config.seed + 1000 * w
            self.workers.append(
                GraphTrainer(model_factory(), worker_cfg, ps_client=self.group.client(w))
            )
        self.group.initialize(self.workers[0].model.state_dict())
        self._eval_model = model_factory()
        self._eval_trainer = GraphTrainer(self._eval_model, trainer_config)
        self.history: list[dict] = []

    # ------------------------------------------------------------------ data
    def partition(self, samples: list[TrainSample]) -> list[list[TrainSample]]:
        """Round-robin shards; BSP additionally trims to equal sizes so
        every step has a full complement of gradients (no barrier stalls)."""
        shards = [samples[w :: self.dist.num_workers] for w in range(self.dist.num_workers)]
        if self.dist.mode == "bsp":
            smallest = min(len(s) for s in shards)
            usable = (smallest // self.config.batch_size) * self.config.batch_size
            usable = max(usable, min(smallest, self.config.batch_size))
            shards = [s[:usable] for s in shards]
        return shards

    # ------------------------------------------------------------------ fit
    def fit(self, train_samples, val_samples=None, metric: str | None = None) -> list[dict]:
        samples = GraphTrainer._as_samples(train_samples)
        if len(samples) < self.dist.num_workers:
            raise ValueError(
                f"{len(samples)} samples cannot feed {self.dist.num_workers} workers"
            )
        val = None if val_samples is None else GraphTrainer._as_samples(val_samples)
        shards = self.partition(samples)

        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            losses = [0.0] * self.dist.num_workers
            errors: list[BaseException] = []

            def run_worker(w: int):
                try:
                    losses[w] = self.workers[w].train_epoch(shards[w])
                except BaseException as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                finally:
                    self.group.finish_worker(w)

            threads = [
                threading.Thread(target=run_worker, args=(w,), name=f"agl-worker-{w}")
                for w in range(self.dist.num_workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]

            entry = {
                "epoch": epoch,
                "loss": float(np.mean(losses)),
                "seconds": time.perf_counter() - start,
                "workers": self.dist.num_workers,
            }
            if val is not None:
                entry["val_metric"] = self.evaluate(val, metric)
            self.history.append(entry)
        return self.history

    # ------------------------------------------------------------- evaluate
    def evaluate(self, samples, metric: str | None = None) -> float:
        """Evaluate the *server* parameters (the deployed model)."""
        self._eval_model.load_state_dict(self.group.pull())
        return self._eval_trainer.evaluate(samples, metric)
