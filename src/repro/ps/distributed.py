"""Multi-worker training against the parameter servers (Figure 4 / §4.2.2).

Each worker owns a disjoint shard of the GraphFlat samples (data parallel —
legal because k-hop neighborhoods made samples independent) and runs the
ordinary GraphTrainer loop with a PS client installed: pull fresh
parameters, compute gradients, push.

Two worker backends:

* ``threads`` — workers are threads of this process sharing the group
  directly (numpy kernels release the GIL for the BLAS-heavy parts, but
  the backward pass is GIL-bound Python).  Works with either transport.
* ``processes`` — workers are real OS processes: the last GIL-bound stage
  of the pipeline finally shards across cores.  Requires a cross-process
  transport — ``shm`` (the shared-memory slabs of :mod:`repro.ps.shm`) or
  ``tcp`` (socket clients of :mod:`repro.ps.tcp`); each worker receives a
  picklable :class:`~repro.core.trainer.dataset.ColumnarSlice` — shard
  paths plus row locators, never the samples themselves — and opens its
  mmap'd columnar shards directly.  In-memory inputs are spilled once to
  a temporary columnar dataset so the same never-transit property holds.
  Epochs are barriered: workers report their epoch loss and wait on a
  gate while the parent evaluates the server parameters, exactly like the
  thread path's per-epoch join.

On top of either backend, ``remote_workers`` hands every worker shard to
*joining* processes instead of spawning them: the trainer opens a
:class:`~repro.transport.worker.WorkerHub` and waits for ``repro worker
--join`` peers (possibly on other hosts) to dial in, fetch their train
specs via the broadcast plane, and train against the TCP parameter
server.  Requires ``transport="tcp"``.

BSP with the same seed and worker count produces a bit-identical loss
trajectory on every backend and transport (tested) — the consistency
semantics live in one place (:mod:`repro.ps.server`) and the transports
only move bytes.
"""

from __future__ import annotations

import os
import queue as queue_mod
import shutil
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, replace

import numpy as np

from repro.core.trainer.dataset import ColumnarDataset, as_sample_source
from repro.core.trainer.trainer import GraphTrainer, TrainerConfig
from repro.core.trainer.vectorize import TrainSample
from repro.ps.server import ParameterServerGroup

__all__ = ["DistributedConfig", "DistributedTrainer", "WorkerError"]

_WORKER_BACKENDS = ("threads", "processes")
_EVENT_POLL_S = 0.5


class WorkerError(RuntimeError):
    """A worker process failed; carries the remote traceback text."""


@dataclass
class DistributedConfig:
    num_workers: int = 4
    num_servers: int = 2
    mode: str = "async"
    staleness: int = 2
    seed: int = 0
    worker_backend: str = "threads"
    """``threads`` (workers share this process) or ``processes`` (real OS
    processes — true multi-core gradient computation)."""
    transport: str | None = None
    """PS transport: ``local`` (lock-based, single-process), ``shm``
    (shared-memory slabs) or ``tcp`` (socket clients — works across
    hosts).  ``None`` picks the natural one for the worker backend:
    threads -> local, processes -> shm, remote_workers -> tcp."""
    tcp_host: str = "127.0.0.1"
    """Bind address for the TCP parameter server (``transport="tcp"``)."""
    tcp_port: int = 0
    """Bind port for the TCP parameter server; 0 means ephemeral."""
    remote_workers: int = 0
    """Workers expected to arrive via ``repro worker --join`` instead of
    being spawned locally.  Non-zero requires ``transport="tcp"`` and (for
    now) must equal ``num_workers`` — the hub owns every shard."""
    hub_port: int = 0
    """Bind port for the worker hub's control plane (``remote_workers``);
    0 means ephemeral — read the bound address off ``hub_endpoint``."""

    def __post_init__(self):
        if self.worker_backend not in _WORKER_BACKENDS:
            raise ValueError(f"worker_backend must be one of {_WORKER_BACKENDS}")
        if self.transport is None:
            if self.remote_workers:
                self.transport = "tcp"
            else:
                self.transport = (
                    "shm" if self.worker_backend == "processes" else "local"
                )
        if self.worker_backend == "processes" and self.transport == "local":
            raise ValueError(
                "process workers cannot share a local (in-process) parameter "
                "server; use transport='shm' or transport='tcp'"
            )
        if self.remote_workers:
            if self.transport != "tcp":
                raise ValueError("remote_workers requires transport='tcp'")
            if self.remote_workers != self.num_workers:
                raise ValueError(
                    "remote_workers must equal num_workers (every shard is "
                    f"served through the hub): {self.remote_workers} != "
                    f"{self.num_workers}"
                )


@dataclass
class _ProcessWorker:
    """Picklable worker operator: the ``multiprocessing`` process target.

    Same pattern as the MapReduce reducers — a top-level dataclass, not a
    closure — so the spawn/forkserver pickler can ship it.  Everything it
    carries is small: the model factory, the config, a columnar slice
    (paths + locators) and the shm client (slab names + control handles).
    """

    worker_id: int
    model_factory: object
    config: TrainerConfig
    shard: object
    client: object
    events: object
    gate: object

    def __call__(self) -> None:
        try:
            trainer = GraphTrainer(
                self.model_factory(), self.config, ps_client=self.client
            )
            for epoch in range(self.config.epochs):
                loss = trainer.train_epoch(self.shard)
                self.client.finish_epoch()
                self.events.put(("epoch", self.worker_id, epoch, loss))
                if epoch + 1 < self.config.epochs:
                    self.gate.acquire()  # parent evaluates, then releases
            self.events.put(("done", self.worker_id, self.client.stats()))
        except BaseException as exc:
            self.events.put(
                ("error", self.worker_id, f"{exc}\n{traceback.format_exc()}")
            )


class DistributedTrainer:
    """Orchestrates N workers + a server group over one model architecture.

    ``model_factory`` must return a freshly-built model with *identical*
    initialisation on every call (pass a fixed seed); its state initialises
    the servers, every worker immediately pulls, so all replicas start in
    agreement.  With ``worker_backend="processes"`` the factory must also
    be picklable (a top-level callable or ``functools.partial``, not a
    lambda).
    """

    def __init__(
        self,
        model_factory,
        trainer_config: TrainerConfig,
        dist_config: DistributedConfig | None = None,
    ):
        self.dist = dist_config or DistributedConfig()
        self.config = trainer_config
        self.group = ParameterServerGroup(
            num_servers=self.dist.num_servers,
            num_workers=self.dist.num_workers,
            optimizer=trainer_config.optimizer,
            lr=trainer_config.lr,
            weight_decay=trainer_config.weight_decay,
            mode=self.dist.mode,
            staleness=self.dist.staleness,
            transport=self.dist.transport,
            tcp_host=self.dist.tcp_host,
            tcp_port=self.dist.tcp_port,
        )
        self._factory = model_factory
        self._eval_model = model_factory()
        self._eval_trainer = GraphTrainer(self._eval_model, trainer_config)
        self.group.initialize(self._eval_model.state_dict())
        self._hub = None
        if self.dist.remote_workers:
            from repro.transport.worker import WorkerHub

            self._hub = WorkerHub(host=self.dist.tcp_host, port=self.dist.hub_port)
        self.workers: list[GraphTrainer] = []
        self._clients = []
        if self.dist.worker_backend == "threads" and not self.dist.remote_workers:
            for w in range(self.dist.num_workers):
                client = self.group.client(w)
                self._clients.append(client)
                self.workers.append(
                    GraphTrainer(model_factory(), self._worker_config(w), ps_client=client)
                )
        self.history: list[dict] = []
        self.worker_stats: dict[int, dict] = {}

    def _worker_config(self, worker_id: int) -> TrainerConfig:
        """Worker replica config: same hyper-parameters, decorrelated data
        order (each worker shuffles its shard with its own seed)."""
        return replace(self.config, seed=self.config.seed + 1000 * worker_id)

    # ------------------------------------------------------------------ data
    def _partition_indices(self, num_samples: int) -> list[np.ndarray]:
        """Round-robin index shards; BSP additionally trims to equal sizes
        so every step has a full complement of gradients (no barrier
        stalls)."""
        order = np.arange(num_samples)
        shards = [order[w :: self.dist.num_workers] for w in range(self.dist.num_workers)]
        if self.dist.mode == "bsp":
            smallest = min(len(s) for s in shards)
            usable = (smallest // self.config.batch_size) * self.config.batch_size
            usable = max(usable, min(smallest, self.config.batch_size))
            shards = [s[:usable] for s in shards]
        return shards

    def partition(self, samples: list[TrainSample]) -> list[list[TrainSample]]:
        """Materialised per-worker sample shards (the thread path's view)."""
        return [
            [samples[int(i)] for i in idx]
            for idx in self._partition_indices(len(samples))
        ]

    def _ensure_columnar(self, source) -> tuple[ColumnarDataset, object]:
        """Process workers address their samples by (shard, row) locators;
        anything not already columnar is spilled once to a temporary
        single-shard columnar dataset (preserving sample order) so worker
        shards stay a few ints per sample."""
        if isinstance(source, ColumnarDataset):
            return source, None
        from repro.mapreduce.fs import DistFileSystem

        tmp = tempfile.mkdtemp(prefix="agl-dist-train-")
        fs = DistFileSystem(tmp)
        fs.write_dataset(
            "train",
            (
                (s.target_id, s.label, s.graph_feature)
                for s in source.iter_samples()
            ),
            num_shards=1,
            layout="columnar",
        )
        dataset = ColumnarDataset([str(p) for p in fs.shards("train")])
        return dataset, tmp

    # ------------------------------------------------------------------ fit
    def fit(self, train_samples, val_samples=None, metric: str | None = None) -> list[dict]:
        source = as_sample_source(train_samples)
        if len(source) < self.dist.num_workers:
            raise ValueError(
                f"{len(source)} samples cannot feed {self.dist.num_workers} workers"
            )
        val = None if val_samples is None else as_sample_source(val_samples)
        if self.dist.remote_workers:
            return self._fit_remote(source, val, metric)
        if self.dist.worker_backend == "processes":
            return self._fit_processes(source, val, metric)
        return self._fit_threads(source, val, metric)

    @staticmethod
    def _raise_worker_errors(errors: list[BaseException]) -> None:
        """Surface *every* worker failure, not just the first."""
        if not errors:
            return
        if len(errors) == 1:
            raise errors[0]
        raise BaseExceptionGroup("distributed training workers failed", errors)

    # ------------------------------------------------------------- threads
    def _fit_threads(self, source, val, metric: str | None) -> list[dict]:
        samples = list(source.iter_samples())
        shards = self.partition(samples)

        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            losses: dict[int, float] = {}
            errors: list[BaseException] = []
            error_lock = threading.Lock()
            self.group.begin_epoch()

            def run_worker(w: int):
                try:
                    losses[w] = self.workers[w].train_epoch(shards[w])
                except BaseException as exc:
                    with error_lock:
                        errors.append(exc)
                finally:
                    self.group.finish_worker(w)

            threads = [
                threading.Thread(target=run_worker, args=(w,), name=f"agl-worker-{w}")
                for w in range(self.dist.num_workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            self._raise_worker_errors(errors)

            entry = {
                "epoch": epoch,
                "loss": float(np.mean([losses[w] for w in sorted(losses)])),
                "seconds": time.perf_counter() - start,
                "workers": self.dist.num_workers,
            }
            if val is not None:
                entry["val_metric"] = self.evaluate(val, metric)
            self.history.append(entry)
        self.worker_stats = {
            w: client.stats() for w, client in enumerate(self._clients)
        }
        return self.history

    # ------------------------------------------------------------ processes
    def _fit_processes(self, source, val, metric: str | None) -> list[dict]:
        columnar, spill_dir = self._ensure_columnar(source)
        shards = [columnar.slice(idx) for idx in self._partition_indices(len(columnar))]
        # Either cross-process transport exposes the same parent-side handle
        # surface: ``ctx`` (the agreed start-method), ``mark_dead`` (excuse a
        # corpse from every barrier) and ``server_error``.
        transport = self.group._shm if self.group._shm is not None else self.group._tcp
        ctx = transport.ctx
        events = ctx.Queue()
        gates = [ctx.Semaphore(0) for _ in range(self.dist.num_workers)]
        operators = [
            _ProcessWorker(
                w,
                self._factory,
                self._worker_config(w),
                shards[w],
                self.group.client(w),
                events,
                gates[w],
            )
            for w in range(self.dist.num_workers)
        ]
        processes = [
            ctx.Process(target=op, name=f"agl-worker-{w}")
            for w, op in enumerate(operators)
        ]
        errors: dict[int, BaseException] = {}
        dead: set[int] = set()

        def reap(w: int, exc: BaseException) -> None:
            errors[w] = exc
            dead.add(w)
            transport.mark_dead(w)

        # Events from different workers interleave freely (a fast worker's
        # final "done" can land while slower workers still owe this epoch's
        # loss), so received messages are filed into a mailbox and each
        # collect() drains the slot it is waiting for.
        mailbox: dict[str, dict[int, object]] = {"epoch": {}, "done": {}}

        def collect(expected: set[int], tag: str) -> dict[int, object]:
            """Wait for one ``tag`` event per expected worker, detecting
            silently-died processes so a BSP barrier can never hang fit()."""
            got: dict[int, object] = {}
            pending = set(expected)
            while pending:
                for w in sorted(pending & mailbox[tag].keys()):
                    got[w] = mailbox[tag].pop(w)
                    pending.discard(w)
                if not pending:
                    break
                try:
                    msg = events.get(timeout=_EVENT_POLL_S)
                except queue_mod.Empty:
                    for w in sorted(pending):
                        if not processes[w].is_alive():
                            reap(
                                w,
                                WorkerError(
                                    f"worker {w} process died without reporting "
                                    f"(exit code {processes[w].exitcode})"
                                ),
                            )
                            pending.discard(w)
                    continue
                kind, w = msg[0], msg[1]
                if kind == "error":
                    reap(w, WorkerError(f"worker {w} failed:\n{msg[2]}"))
                    pending.discard(w)
                elif kind == "epoch":
                    mailbox["epoch"][w] = msg[3]
                elif kind == "done":
                    mailbox["done"][w] = msg[2]
            return got

        self.group.begin_epoch()
        for p in processes:
            p.start()
        try:
            live = set(range(self.dist.num_workers))
            for epoch in range(self.config.epochs):
                start = time.perf_counter()
                losses = collect(live - dead, "epoch")
                live -= dead
                if not losses:
                    break  # every worker failed; errors carry the cause
                entry = {
                    "epoch": epoch,
                    "loss": float(np.mean([losses[w] for w in sorted(losses)])),
                    "seconds": time.perf_counter() - start,
                    "workers": len(losses),
                }
                if val is not None:
                    entry["val_metric"] = self.evaluate(val, metric)
                self.history.append(entry)
                if epoch + 1 < self.config.epochs:
                    self.group.begin_epoch()
                    for w in sorted(live):
                        gates[w].release()
            self.worker_stats = collect(live - dead, "done")
            if transport.server_error is not None:
                errors.setdefault(-1, transport.server_error)
        finally:
            for gate in gates:
                # If the parent is erroring out mid-fit, workers may be
                # parked on their epoch gates; release generously (extra
                # releases are harmless) so join() doesn't stall.
                for _ in range(self.config.epochs):
                    gate.release()
            for p in processes:
                p.join(timeout=10)
                if p.is_alive():  # pragma: no cover - hung worker
                    p.terminate()
                    p.join(timeout=5)
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)
        self._raise_worker_errors([errors[w] for w in sorted(errors)])
        return self.history

    # -------------------------------------------------------------- remote
    def _fit_remote(self, source, val, metric: str | None) -> list[dict]:
        """Serve every worker shard to joining ``repro worker --join`` peers.

        The hub's control plane carries only small coordination frames; the
        per-worker train specs (model factory, config, columnar slice) ride
        the broadcast plane, and gradients/parameters flow worker <-> TCP
        parameter server directly.  Shard paths must be reachable from the
        joining hosts (shared filesystem), exactly like the spill dir of
        the shared-dir shuffle transport."""
        from repro.transport.worker import TrainSpec

        ps_host, ps_port = self.group.tcp_endpoint
        columnar, spill_dir = self._ensure_columnar(source)
        shards = [columnar.slice(idx) for idx in self._partition_indices(len(columnar))]
        # Joining workers resolve shard paths from *their* working
        # directory — absolutize so relative DFS roots survive the trip.
        shards = [
            replace(s, shard_paths=tuple(os.path.abspath(p) for p in s.shard_paths))
            for s in shards
        ]
        hub = self._hub
        try:
            for w in range(self.dist.num_workers):
                hub.publish_spec(
                    w,
                    TrainSpec(
                        worker_id=w,
                        model_factory=self._factory,
                        config=self._worker_config(w),
                        shard=shards[w],
                        ps_host=ps_host,
                        ps_port=ps_port,
                    ),
                )
            self.group.begin_epoch()
            hub.start_training(self.dist.num_workers)
            for epoch in range(self.config.epochs):
                start = time.perf_counter()
                losses = hub.collect_epoch(epoch)
                entry = {
                    "epoch": epoch,
                    "loss": float(np.mean([losses[w] for w in sorted(losses)])),
                    "seconds": time.perf_counter() - start,
                    "workers": self.dist.num_workers,
                }
                if val is not None:
                    entry["val_metric"] = self.evaluate(val, metric)
                self.history.append(entry)
                if epoch + 1 < self.config.epochs:
                    self.group.begin_epoch()
                    hub.release_epoch()
            self.worker_stats = hub.collect_done()
        finally:
            hub.close()
            self._hub = None
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)
        return self.history

    @property
    def hub_endpoint(self) -> tuple[str, int] | None:
        """``(host, port)`` remote workers join (``repro worker --join``),
        or ``None`` when no hub is open."""
        return self._hub.endpoint if self._hub is not None else None

    # ------------------------------------------------------------- evaluate
    def evaluate(self, samples, metric: str | None = None) -> float:
        """Evaluate the *server* parameters (the deployed model)."""
        self._eval_model.load_state_dict(self.group.pull())
        return self._eval_trainer.evaluate(samples, metric)

    def server_model(self):
        """The deployed model: server parameters loaded into a local replica
        (what the CLI persists after distributed training)."""
        self._eval_model.load_state_dict(self.group.pull())
        return self._eval_model

    def pull_stats(self) -> dict[str, int]:
        """Aggregate client pull accounting across workers: total pulls, how
        many actually refreshed, and the bytes the transport had to copy
        (0 for shm — a pull is a view refresh, nothing is serialized)."""
        totals = {"pulls": 0, "refreshes": 0, "pull_bytes": 0}
        for stats in self.worker_stats.values():
            for key in totals:
                totals[key] += int(stats.get(key, 0))
        return totals

    # -------------------------------------------------------------- teardown
    def close(self) -> None:
        """Release the transport (shared-memory slabs, server thread) and
        any still-open worker hub."""
        if self._hub is not None:
            self._hub.close()
            self._hub = None
        self.group.close()

    def __enter__(self) -> "DistributedTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
