"""Parameter-server substrate — **S4** (Kunpeng stand-in, §3.3 Figure 4).

"The overall architecture of GraphTrainer follows the parameter server
design ... workers perform the bulk of computation, servers maintain the
current version of the graph model parameters."

* :class:`ParameterServerGroup` — N server shards, each owning a slice of
  the parameters with **server-side** optimizer state (Adam/SGD/momentum);
* :class:`PSClient` — per-worker handle: ``pull()`` the full model,
  ``push(grads)`` an update;
* consistency modes: ``async`` (apply-on-arrival, lock per shard), ``bsp``
  (barrier + averaged gradients) and ``ssp`` (bounded staleness);
* :class:`DistributedTrainer` — thread-backed multi-worker training loop
  used by the Figure 7 convergence experiment;
* :mod:`repro.ps.simulate` — calibrated discrete-event cluster model that
  produces Figure 8's 1..100-worker speedup curve on a 2-core box.
"""

from repro.ps.server import ParameterServerGroup, PSClient
from repro.ps.distributed import DistributedTrainer, DistributedConfig
from repro.ps.simulate import ClusterModel, simulate_speedup

__all__ = [
    "ParameterServerGroup",
    "PSClient",
    "DistributedTrainer",
    "DistributedConfig",
    "ClusterModel",
    "simulate_speedup",
]
