"""Parameter-server substrate — **S4** (Kunpeng stand-in, §3.3 Figure 4).

"The overall architecture of GraphTrainer follows the parameter server
design ... workers perform the bulk of computation, servers maintain the
current version of the graph model parameters."

* :class:`ParameterServerGroup` — N server shards, each owning a slice of
  the parameters with **server-side** optimizer state (Adam/SGD/momentum);
  ``transport="local"`` (lock-based, single-process) or ``"shm"``
  (shared-memory slabs + version counter — :mod:`repro.ps.shm`);
* :class:`PSClient` / :class:`~repro.ps.shm.ShmPSClient` — per-worker
  handles: version-cached ``pull()``, ``push(grads)``;
* consistency modes: ``async`` (apply-on-arrival, lock per shard), ``bsp``
  (barrier + worker-id-ordered averaged gradients) and ``ssp`` (bounded
  staleness);
* :class:`DistributedTrainer` — multi-worker training loop; workers are
  threads or real OS processes (Figure 7 convergence / Figure 8 speedup);
* :mod:`repro.ps.simulate` — calibrated discrete-event cluster model that
  produces Figure 8's 1..100-worker speedup curve on a small box.
"""

from repro.ps.server import ParameterServerGroup, PSClient
from repro.ps.shm import ShmPSClient, SlabBroadcast, SlabSlice
from repro.ps.distributed import DistributedTrainer, DistributedConfig, WorkerError
from repro.ps.simulate import ClusterModel, simulate_speedup

__all__ = [
    "ParameterServerGroup",
    "PSClient",
    "ShmPSClient",
    "SlabBroadcast",
    "SlabSlice",
    "DistributedTrainer",
    "DistributedConfig",
    "WorkerError",
    "ClusterModel",
    "simulate_speedup",
]
