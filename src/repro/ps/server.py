"""Parameter server shards, client handles and consistency control.

Parameters are sharded across servers by a stable hash of their dotted name
(the same crc32 partitioner the MapReduce shuffle uses).  Each shard owns
its slice's optimizer state — AGL's workers never run an optimizer; they
push raw gradients and pull fresh values, which is what makes commodity
(low-memory) workers sufficient (§3.3).

Consistency modes
-----------------
* ``async`` — gradient applied on arrival under the shard lock (Hogwild-ish
  at shard granularity).  Highest throughput, stale gradients.
* ``bsp``   — bulk-synchronous: all workers must contribute a gradient for
  the step; the barrier action applies the *averaged* gradient once, with
  contributions summed in worker-id order so the trajectory is
  deterministic given worker data partitions (bit-exact across the thread
  and process transports — tested).
* ``ssp``   — stale-synchronous: a worker may run ahead of the slowest by at
  most ``staleness`` steps before blocking (Ho et al., 2013).

Transports
----------
* ``local`` — the group lives in one process; workers are threads sharing
  it directly, synchronisation is ``threading.Condition``.  The serial /
  thread fallback.
* ``shm``   — the parameter state lives in ``multiprocessing.shared_memory``
  slabs (:mod:`repro.ps.shm`): one float32 parameter slab fronted by a
  seqlock version counter, plus one gradient slab per worker.  ``pull()``
  becomes a version-keyed view refresh (nothing is pickled per step) and
  ``push()`` a slab write plus a tiny control message; a server thread in
  the parent applies updates through the *same* shard/optimizer code as
  the local path, so the consistency semantics — and, for BSP, the exact
  float trajectory — carry over.  Clients are picklable, which is what
  lets :class:`~repro.ps.distributed.DistributedTrainer` hand them to real
  OS worker processes.

Every apply bumps ``version``; :class:`PSClient` caches the version it last
saw so an unchanged model costs a pull nothing (no copy at all).
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

from repro.mapreduce.shuffle import default_partition
from repro.nn.optim import AdamState, adam_update, sgd_update

__all__ = ["ParameterServerGroup", "PSClient", "mean_gradients"]

_MODES = ("async", "bsp", "ssp")
_TRANSPORTS = ("local", "shm", "tcp")


def mean_gradients(
    contributions: dict[int, dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """Average per-worker gradient dicts in worker-id order.

    Shared by both transports' BSP barriers: summing in a fixed order is
    what makes the averaged step — and therefore the whole BSP trajectory —
    bit-identical between the thread path and the shared-memory path.
    """
    workers = sorted(contributions)
    names = set(contributions[workers[0]])
    for w in workers[1:]:  # a worker may lack a grad for a param this step
        names &= contributions[w].keys()
    return {
        name: np.mean([contributions[w][name] for w in workers], axis=0)
        for name in sorted(names)
    }


class _ServerShard:
    """One parameter server: a slice of parameters + optimizer state."""

    def __init__(self, optimizer: str, lr: float, weight_decay: float):
        self.values: dict[str, np.ndarray] = {}
        self.adam: dict[str, AdamState] = {}
        self.velocity: dict[str, np.ndarray | None] = {}
        self.optimizer = optimizer
        self.lr = lr
        self.weight_decay = weight_decay
        self.lock = threading.Lock()
        self.applied_updates = 0

    def init_param(self, name: str, value: np.ndarray, into: np.ndarray | None = None) -> None:
        """Install a parameter; ``into`` (a shared-memory view) makes the
        slab the authoritative storage the optimizer updates in place."""
        if into is None:
            self.values[name] = np.array(value, dtype=np.float32, copy=True)
        else:
            into[...] = np.asarray(value, dtype=np.float32)
            self.values[name] = into
        if self.optimizer == "adam":
            self.adam[name] = AdamState.like(self.values[name])
        else:
            self.velocity[name] = None

    def apply(self, grads: dict[str, np.ndarray]) -> None:
        with self.lock:
            for name, grad in grads.items():
                value = self.values[name]
                if self.optimizer == "adam":
                    adam_update(
                        value, grad, self.adam[name], self.lr, weight_decay=self.weight_decay
                    )
                else:
                    self.velocity[name] = sgd_update(
                        value,
                        grad,
                        self.velocity[name],
                        self.lr,
                        momentum=0.9,
                        weight_decay=self.weight_decay,
                    )
            self.applied_updates += 1

    def read(self) -> dict[str, np.ndarray]:
        with self.lock:
            return {name: value.copy() for name, value in self.values.items()}


class ParameterServerGroup:
    """A group of server shards plus the consistency controller."""

    def __init__(
        self,
        num_servers: int = 2,
        num_workers: int = 1,
        optimizer: str = "adam",
        lr: float = 0.01,
        weight_decay: float = 0.0,
        mode: str = "async",
        staleness: int = 2,
        transport: str = "local",
        tcp_host: str = "127.0.0.1",
        tcp_port: int = 0,
    ):
        if num_servers < 1 or num_workers < 1:
            raise ValueError("need at least one server and one worker")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        if transport not in _TRANSPORTS:
            raise ValueError(f"transport must be one of {_TRANSPORTS}")
        self.num_servers = num_servers
        self.num_workers = num_workers
        self.mode = mode
        self.staleness = staleness
        self.transport = transport
        self.shards = [_ServerShard(optimizer, lr, weight_decay) for _ in range(num_servers)]
        self._placement: dict[str, int] = {}
        self._initialized = False
        self._shm = None  # ShmTransport when transport == "shm"
        self._tcp = None  # TcpPSServer when transport == "tcp"
        self.tcp_host = tcp_host
        self.tcp_port = tcp_port

        # BSP machinery: gradients buffered per worker per step; the *last*
        # required contributor applies the worker-id-ordered average once
        # and releases the step barrier.  ``_bsp_required`` tracks which
        # workers a barrier may still wait on — a finished (or dead) worker
        # is removed so an epoch tail or a mid-epoch crash can never
        # deadlock the step.
        self._bsp_lock = threading.Condition()
        self._bsp_buffer: dict[int, dict[str, np.ndarray]] = {}
        self._bsp_generation = 0
        self._bsp_required: set[int] = set(range(num_workers))

        # SSP bookkeeping: per-worker step counters.
        self._ssp_lock = threading.Condition()
        self._worker_steps = [0] * num_workers

        self.total_pushes = 0
        self._version = 0
        self._version_lock = threading.Lock()

    # -------------------------------------------------------------- set-up
    def shard_of(self, name: str) -> int:
        if name not in self._placement:
            self._placement[name] = default_partition(name, self.num_servers)
        return self._placement[name]

    def initialize(self, state: dict[str, np.ndarray]) -> None:
        """Install the initial model (worker 0's init, conventionally)."""
        if self.transport == "shm":
            from repro.ps.shm import ShmTransport

            self._shm = ShmTransport(self, state)
            views = self._shm.param_views()
            for name, value in state.items():
                self.shards[self.shard_of(name)].init_param(name, value, into=views[name])
            self._shm.commit_initial()
            self._shm.start()
        else:
            for name, value in state.items():
                self.shards[self.shard_of(name)].init_param(name, value)
            if self.transport == "tcp":
                # The socket front-end wraps the *local* consistency
                # machinery: one handler thread per worker connection plays
                # the role of a local worker thread, so BSP barriers and
                # the worker-id-ordered average carry over bit-identically.
                from repro.ps.tcp import TcpPSServer

                self._tcp = TcpPSServer(self, state, self.tcp_host, self.tcp_port)
        self._initialized = True

    def _require_init(self) -> None:
        if not self._initialized:
            raise RuntimeError("ParameterServerGroup.initialize() was never called")

    # -------------------------------------------------------------- version
    @property
    def version(self) -> int:
        """Monotonic update counter; clients key their pull cache on it."""
        if self._shm is not None:
            return self._shm.version()
        return self._version

    # ------------------------------------------------------------- pull/push
    def pull(self) -> dict[str, np.ndarray]:
        """Gather the full current model from all shards."""
        self._require_init()
        if self._shm is not None:
            return self._shm.read_state()
        state: dict[str, np.ndarray] = {}
        for shard in self.shards:
            state.update(shard.read())
        return state

    def _scatter_apply(self, grads: dict[str, np.ndarray]) -> None:
        by_shard: dict[int, dict[str, np.ndarray]] = {}
        for name, grad in grads.items():
            by_shard.setdefault(self.shard_of(name), {})[name] = grad
        write = (
            self._shm.write_lock() if self._shm is not None else contextlib.nullcontext()
        )
        with write:
            for shard_id, shard_grads in sorted(by_shard.items()):
                self.shards[shard_id].apply(shard_grads)
        with self._version_lock:
            self._version += 1

    def push(self, worker_id: int, grads: dict[str, np.ndarray]) -> None:
        """Contribute one worker's gradients under the configured mode."""
        self._require_init()
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        if self._shm is not None:
            self.client(worker_id).push(grads)
            return
        self._push_local(worker_id, grads)

    def _push_local(self, worker_id: int, grads: dict[str, np.ndarray]) -> None:
        """Mode dispatch shared by the local transport and the shm server
        thread (which feeds it slab views instead of caller dicts)."""
        self.total_pushes += 1
        if self.mode == "async":
            self._scatter_apply(grads)
            return
        if self.mode == "ssp":
            self._push_ssp(worker_id, grads)
            return
        self._push_bsp(worker_id, grads)

    def _bsp_flush_locked(self) -> None:
        """Apply the pending barrier (call with ``_bsp_lock`` held)."""
        self._scatter_apply(mean_gradients(self._bsp_buffer))
        self._bsp_buffer = {}
        self._bsp_generation += 1
        self._bsp_lock.notify_all()

    def _push_bsp(self, worker_id: int, grads: dict[str, np.ndarray]) -> None:
        with self._bsp_lock:
            generation = self._bsp_generation
            self._bsp_buffer[worker_id] = grads
            if set(self._bsp_buffer) >= self._bsp_required:
                self._bsp_flush_locked()
            else:
                while self._bsp_generation == generation:
                    self._bsp_lock.wait()

    def _push_ssp(self, worker_id: int, grads: dict[str, np.ndarray]) -> None:
        with self._ssp_lock:
            while self._worker_steps[worker_id] - min(self._worker_steps) > self.staleness:
                self._ssp_lock.wait()
        self._scatter_apply(grads)
        with self._ssp_lock:
            self._worker_steps[worker_id] += 1
            self._ssp_lock.notify_all()

    # ------------------------------------------------------- epoch lifecycle
    def begin_epoch(self) -> None:
        """Re-arm the BSP barrier for a fresh epoch: every worker is again a
        required contributor (``finish_worker`` removes them as they end)."""
        if self._shm is not None:
            self._shm.begin_epoch()
            return
        with self._bsp_lock:
            self._bsp_required = set(range(self.num_workers))

    def finish_worker(self, worker_id: int) -> None:
        """Mark a worker done for the epoch so SSP stragglers don't deadlock
        and a BSP step never waits on an exhausted (or crashed) worker."""
        if self._shm is not None:
            self._shm.finish_worker(worker_id)
            return
        if self.mode == "ssp":
            with self._ssp_lock:
                self._worker_steps[worker_id] = max(self._worker_steps)
                self._ssp_lock.notify_all()
        elif self.mode == "bsp":
            with self._bsp_lock:
                self._bsp_required.discard(worker_id)
                if self._bsp_buffer and set(self._bsp_buffer) >= self._bsp_required:
                    self._bsp_flush_locked()

    def client(self, worker_id: int):
        if self._shm is not None:
            return self._shm.client(worker_id)
        if self._tcp is not None:
            return self._tcp.client(worker_id)
        return PSClient(self, worker_id)

    @property
    def tcp_endpoint(self) -> tuple[str, int] | None:
        """``(host, port)`` the TCP transport listens on (``None`` otherwise)
        — what remote workers joined via ``repro worker --join`` dial."""
        return self._tcp.endpoint if self._tcp is not None else None

    # -------------------------------------------------------------- teardown
    def close(self) -> None:
        """Release transport resources (shared-memory slabs, server thread).
        Idempotent; a no-op for the local transport."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        if self._tcp is not None:
            self._tcp.close()
            self._tcp = None

    def __enter__(self) -> "ParameterServerGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PSClient:
    """Per-worker handle with the two-call interface GraphTrainer expects.

    ``pull()`` is version-cached: it returns ``None`` when no update has
    been applied since the last pull, so the trainer skips the state-dict
    copy entirely on unchanged steps.  ``stats()`` reports how many pulls
    actually moved bytes.
    """

    def __init__(self, group: ParameterServerGroup, worker_id: int):
        self.group = group
        self.worker_id = worker_id
        self._seen_version = -1
        self.pulls = 0
        self.refreshes = 0
        self.pull_bytes = 0

    def pull(self) -> dict[str, np.ndarray] | None:
        self.pulls += 1
        version = self.group.version
        if version == self._seen_version:
            return None
        state = self.group.pull()
        self._seen_version = version
        self.refreshes += 1
        self.pull_bytes += sum(int(a.nbytes) for a in state.values())
        return state

    def push(self, grads: dict[str, np.ndarray]) -> None:
        self.group.push(self.worker_id, grads)

    def finish_epoch(self) -> None:
        self.group.finish_worker(self.worker_id)

    def stats(self) -> dict[str, int]:
        return {
            "pulls": self.pulls,
            "refreshes": self.refreshes,
            "pull_bytes": self.pull_bytes,
        }
