"""Parameter server shards, client handles and consistency control.

Parameters are sharded across servers by a stable hash of their dotted name
(the same crc32 partitioner the MapReduce shuffle uses).  Each shard owns
its slice's optimizer state — AGL's workers never run an optimizer; they
push raw gradients and pull fresh values, which is what makes commodity
(low-memory) workers sufficient (§3.3).

Consistency modes
-----------------
* ``async`` — gradient applied on arrival under the shard lock (Hogwild-ish
  at shard granularity).  Highest throughput, stale gradients.
* ``bsp``   — bulk-synchronous: all workers must contribute a gradient for
  the step; the barrier action applies the *averaged* gradient once.
  Deterministic given worker data partitions.
* ``ssp``   — stale-synchronous: a worker may run ahead of the slowest by at
  most ``staleness`` steps before blocking (Ho et al., 2013).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.mapreduce.shuffle import default_partition
from repro.nn.optim import AdamState, adam_update, sgd_update

__all__ = ["ParameterServerGroup", "PSClient"]

_MODES = ("async", "bsp", "ssp")


class _ServerShard:
    """One parameter server: a slice of parameters + optimizer state."""

    def __init__(self, optimizer: str, lr: float, weight_decay: float):
        self.values: dict[str, np.ndarray] = {}
        self.adam: dict[str, AdamState] = {}
        self.velocity: dict[str, np.ndarray | None] = {}
        self.optimizer = optimizer
        self.lr = lr
        self.weight_decay = weight_decay
        self.lock = threading.Lock()
        self.applied_updates = 0

    def init_param(self, name: str, value: np.ndarray) -> None:
        self.values[name] = np.array(value, dtype=np.float32, copy=True)
        if self.optimizer == "adam":
            self.adam[name] = AdamState.like(self.values[name])
        else:
            self.velocity[name] = None

    def apply(self, grads: dict[str, np.ndarray]) -> None:
        with self.lock:
            for name, grad in grads.items():
                value = self.values[name]
                if self.optimizer == "adam":
                    adam_update(
                        value, grad, self.adam[name], self.lr, weight_decay=self.weight_decay
                    )
                else:
                    self.velocity[name] = sgd_update(
                        value,
                        grad,
                        self.velocity[name],
                        self.lr,
                        momentum=0.9,
                        weight_decay=self.weight_decay,
                    )
            self.applied_updates += 1

    def read(self) -> dict[str, np.ndarray]:
        with self.lock:
            return {name: value.copy() for name, value in self.values.items()}


class ParameterServerGroup:
    """A group of server shards plus the consistency controller."""

    def __init__(
        self,
        num_servers: int = 2,
        num_workers: int = 1,
        optimizer: str = "adam",
        lr: float = 0.01,
        weight_decay: float = 0.0,
        mode: str = "async",
        staleness: int = 2,
    ):
        if num_servers < 1 or num_workers < 1:
            raise ValueError("need at least one server and one worker")
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")
        self.num_servers = num_servers
        self.num_workers = num_workers
        self.mode = mode
        self.staleness = staleness
        self.shards = [_ServerShard(optimizer, lr, weight_decay) for _ in range(num_servers)]
        self._placement: dict[str, int] = {}
        self._initialized = False

        # BSP machinery: gradients buffered per step; the *last* contributor
        # applies the average and releases the step barrier.
        self._bsp_lock = threading.Condition()
        self._bsp_buffer: list[dict[str, np.ndarray]] = []
        self._bsp_generation = 0

        # SSP bookkeeping: per-worker step counters.
        self._ssp_lock = threading.Condition()
        self._worker_steps = [0] * num_workers

        self.total_pushes = 0

    # -------------------------------------------------------------- set-up
    def shard_of(self, name: str) -> int:
        if name not in self._placement:
            self._placement[name] = default_partition(name, self.num_servers)
        return self._placement[name]

    def initialize(self, state: dict[str, np.ndarray]) -> None:
        """Install the initial model (worker 0's init, conventionally)."""
        for name, value in state.items():
            self.shards[self.shard_of(name)].init_param(name, value)
        self._initialized = True

    def _require_init(self) -> None:
        if not self._initialized:
            raise RuntimeError("ParameterServerGroup.initialize() was never called")

    # ------------------------------------------------------------- pull/push
    def pull(self) -> dict[str, np.ndarray]:
        """Gather the full current model from all shards."""
        self._require_init()
        state: dict[str, np.ndarray] = {}
        for shard in self.shards:
            state.update(shard.read())
        return state

    def _scatter_apply(self, grads: dict[str, np.ndarray]) -> None:
        by_shard: dict[int, dict[str, np.ndarray]] = {}
        for name, grad in grads.items():
            by_shard.setdefault(self.shard_of(name), {})[name] = grad
        for shard_id, shard_grads in sorted(by_shard.items()):
            self.shards[shard_id].apply(shard_grads)

    def push(self, worker_id: int, grads: dict[str, np.ndarray]) -> None:
        """Contribute one worker's gradients under the configured mode."""
        self._require_init()
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        self.total_pushes += 1
        if self.mode == "async":
            self._scatter_apply(grads)
            return
        if self.mode == "ssp":
            self._push_ssp(worker_id, grads)
            return
        self._push_bsp(grads)

    def _push_bsp(self, grads: dict[str, np.ndarray]) -> None:
        with self._bsp_lock:
            generation = self._bsp_generation
            self._bsp_buffer.append(grads)
            if len(self._bsp_buffer) == self.num_workers:
                mean = {
                    name: np.mean([g[name] for g in self._bsp_buffer], axis=0)
                    for name in self._bsp_buffer[0]
                }
                self._scatter_apply(mean)
                self._bsp_buffer = []
                self._bsp_generation += 1
                self._bsp_lock.notify_all()
            else:
                while self._bsp_generation == generation:
                    self._bsp_lock.wait()

    def _push_ssp(self, worker_id: int, grads: dict[str, np.ndarray]) -> None:
        with self._ssp_lock:
            while self._worker_steps[worker_id] - min(self._worker_steps) > self.staleness:
                self._ssp_lock.wait()
        self._scatter_apply(grads)
        with self._ssp_lock:
            self._worker_steps[worker_id] += 1
            self._ssp_lock.notify_all()

    def finish_worker(self, worker_id: int) -> None:
        """Mark a worker done for the epoch so SSP stragglers don't deadlock
        and a BSP step never waits on an exhausted worker."""
        if self.mode == "ssp":
            with self._ssp_lock:
                self._worker_steps[worker_id] = max(self._worker_steps)
                self._ssp_lock.notify_all()

    def client(self, worker_id: int) -> "PSClient":
        return PSClient(self, worker_id)


class PSClient:
    """Per-worker handle with the two-call interface GraphTrainer expects."""

    def __init__(self, group: ParameterServerGroup, worker_id: int):
        self.group = group
        self.worker_id = worker_id

    def pull(self) -> dict[str, np.ndarray]:
        return self.group.pull()

    def push(self, grads: dict[str, np.ndarray]) -> None:
        self.group.push(self.worker_id, grads)
