"""TCP parameter-server transport: remote workers pull versioned slabs and
push gradient deltas over the wire.

The socket sibling of the seqlock shared-memory transport
(:mod:`repro.ps.shm`) speaking the same version-keyed protocol:

* ``pull`` carries the client's last-seen version; the server answers
  ``fresh`` (nothing changed — the pull costs no parameter bytes, exactly
  the shm cache-hit) or ``slab`` with the current version and the whole
  model flattened through the shared :class:`~repro.nn.module.StateLayout`
  contract (sorted names, C-order float32 — the same cast the shm slab
  applies, which is what keeps trajectories bit-identical across
  transports).
* ``push`` carries the gradient slab plus the names *absent* this step
  (the trainer omits ``grad is None`` entries); the server reconstructs
  the dict and feeds it through ``ParameterServerGroup._push_local`` — the
  very mode dispatcher the local transport uses.  One handler thread per
  worker connection means a BSP push blocks its handler on the barrier
  condition exactly like a local worker thread blocks, so the averaged
  step (worker-id-ordered, :func:`~repro.ps.server.mean_gradients`) and
  therefore the whole loss trajectory is bit-identical to the local
  transport at a fixed seed (tested).

Frames ride the CRC-trailed wire grammar of :mod:`repro.transport.wire`;
a reset connection or timeout surfaces as ``ConnectionError`` /
``TimeoutError``, both in the MapReduce retry policy's retryable set.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.nn.module import StateLayout
from repro.proto.framing import FrameCorruptionError, decode_value, encode_value
from repro.transport.wire import DEFAULT_TIMEOUT_S, Conn, connect

__all__ = ["TcpPSClient", "TcpPSServer"]


def _encode_layout(layout: StateLayout) -> bytes:
    return encode_value(
        (
            tuple(layout.names),
            tuple(tuple(s) for s in layout.shapes),
            tuple(layout.offsets),
            layout.total_size,
        )
    )


def _decode_layout(payload: bytes) -> StateLayout:
    (names, shapes, offsets, total), _ = decode_value(payload)
    return StateLayout(
        tuple(names), tuple(tuple(s) for s in shapes), tuple(offsets), int(total)
    )


class TcpPSServer:
    """Socket front-end over a :class:`~repro.ps.server.ParameterServerGroup`.

    Owns no consistency logic: every push lands in the group's local mode
    dispatcher, every pull reads through the group's own read path, so
    async/bsp/ssp semantics — and their determinism guarantees — are
    inherited, not reimplemented."""

    def __init__(self, group, state: dict[str, np.ndarray], host: str = "127.0.0.1", port: int = 0):
        import socket

        self.group = group
        self.layout = StateLayout.from_state(state)
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.server_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._accept_loop, name="ps-tcp", daemon=True
        )
        self._thread.start()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def ctx(self):
        """The start-method process workers agree on — same helper the shm
        transport uses, so ``DistributedTrainer`` treats both handles
        alike."""
        from repro.ps.shm import mp_context

        return mp_context()

    def client(self, worker_id: int) -> "TcpPSClient":
        return TcpPSClient(self.host, self.port, worker_id)

    def mark_dead(self, worker_id: int) -> None:
        """Excuse a dead worker from every barrier.  The group's local
        consistency machinery already knows how (``finish_worker``); its
        handler thread simply dies with the connection."""
        self.group.finish_worker(worker_id)

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            self._listener.close()
        except OSError:
            pass

    # ------------------------------------------------------------- internals
    def _accept_loop(self) -> None:
        import socket

        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(sock,), daemon=True
            ).start()

    def _serve_conn(self, sock) -> None:
        # No socket timeout on the server side of a worker connection: a
        # BSP push legitimately blocks on the barrier for as long as the
        # slowest sibling worker takes.
        sock.settimeout(None)
        conn = Conn(sock)
        worker_id: int | None = None
        try:
            while not self._stop.is_set():
                frame = conn.recv()
                if frame is None:
                    return
                kind, payload = frame
                if kind == b"hello":
                    worker_id, _ = decode_value(payload)
                    conn.send(b"welcome", _encode_layout(self.layout))
                elif kind == b"pull":
                    seen, _ = decode_value(payload)
                    version = self.group.version
                    if version == seen:
                        conn.send(b"fresh")
                    else:
                        slab = self.layout.flatten(self.group.pull())
                        conn.send(b"slab", encode_value((version, slab.tobytes())))
                elif kind == b"push":
                    if worker_id is None:
                        conn.send(b"error", b"push before hello")
                        return
                    (missing, blob), _ = decode_value(payload)
                    slab = np.frombuffer(blob, dtype=np.float32)
                    absent = set(missing)
                    grads = {
                        name: view
                        for name, view in self.layout.unflatten(slab).items()
                        if name not in absent
                    }
                    self.group._push_local(worker_id, grads)
                    conn.send(b"ack")
                elif kind == b"finish":
                    if worker_id is None:
                        conn.send(b"error", b"finish before hello")
                        return
                    self.group.finish_worker(worker_id)
                    conn.send(b"ack")
                else:
                    conn.send(b"error", f"unknown request {kind!r}".encode())
                    return
        except (OSError, FrameCorruptionError):
            pass  # worker died mid-request; DistributedTrainer reaps it
        except BaseException as exc:  # pragma: no cover - surfaced to caller
            self.server_error = exc
        finally:
            with self._lock:
                self.bytes_sent += conn.bytes_sent
                self.bytes_received += conn.bytes_received
            conn.close()


class TcpPSClient:
    """Picklable per-worker handle dialing a :class:`TcpPSServer`.

    Interface-compatible with :class:`~repro.ps.server.PSClient` /
    :class:`~repro.ps.shm.ShmPSClient`: ``pull()`` returns ``None`` while
    the cached version is current, ``push()`` blocks until the server
    acks (BSP: until the barrier releases).  The connection is opened
    lazily on first use, so the handle ships to worker processes or
    remote hosts as plain data."""

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: int,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ):
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.timeout_s = timeout_s
        self._seen_version = -1
        self.pulls = 0
        self.refreshes = 0
        self.pull_bytes = 0
        self._conn: Conn | None = None
        self._layout: StateLayout | None = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_conn"] = None
        state["_layout"] = None
        return state

    def _ensure(self) -> Conn:
        if self._conn is None:
            conn = connect(self.host, self.port, self.timeout_s)
            kind, payload = conn.request(b"hello", encode_value(self.worker_id))
            if kind != b"welcome":
                conn.close()
                raise ConnectionResetError(f"PS handshake failed: {kind!r}")
            self._layout = _decode_layout(payload)
            self._conn = conn
        return self._conn

    def pull(self) -> dict[str, np.ndarray] | None:
        conn = self._ensure()
        self.pulls += 1
        kind, payload = conn.request(b"pull", encode_value(self._seen_version))
        if kind == b"fresh":
            return None
        if kind != b"slab":
            raise ConnectionResetError(f"unexpected pull reply: {kind!r}")
        (version, blob), _ = decode_value(payload)
        self.pull_bytes += len(blob)
        self.refreshes += 1
        self._seen_version = int(version)
        slab = np.frombuffer(blob, dtype=np.float32).copy()
        return self._layout.unflatten(slab)

    def push(self, grads: dict[str, np.ndarray]) -> None:
        conn = self._ensure()
        layout = self._layout
        unknown = grads.keys() - set(layout.names)
        if unknown:
            raise KeyError(f"gradients for unknown parameters: {sorted(unknown)}")
        slab = np.zeros(layout.total_size, dtype=np.float32)
        views = layout.unflatten(slab)
        missing = []
        for name, view in views.items():
            if name in grads:
                view[...] = np.asarray(grads[name], dtype=np.float32)
            else:
                missing.append(name)
        # A BSP push blocks until every sibling contributes — disable the
        # per-operation timeout for the ack wait, like the server side.
        self._conn._sock.settimeout(None)
        try:
            kind, payload = conn.request(
                b"push", encode_value((tuple(missing), slab.tobytes()))
            )
        finally:
            self._conn._sock.settimeout(self.timeout_s)
        if kind != b"ack":
            raise ConnectionResetError(f"push not acked: {kind!r} {payload!r}")

    def finish_epoch(self) -> None:
        conn = self._ensure()
        kind, _ = conn.request(b"finish")
        if kind != b"ack":
            raise ConnectionResetError(f"finish not acked: {kind!r}")

    def stats(self) -> dict[str, int]:
        return {
            "pulls": self.pulls,
            "refreshes": self.refreshes,
            "pull_bytes": self.pull_bytes,
        }

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
