"""Calibrated discrete-event cluster model — the Figure 8 substitute.

The paper measures training speedup from 1 to 100 workers on Ant's
production cluster.  This box has 2 cores, so beyond 2 workers *measured*
speedup is meaningless; instead we reproduce the experiment's mechanism with
a discrete-event simulation whose inputs are **measured on this machine**
(per-batch compute seconds, per-batch parameter payload) and whose cluster
parameters (NIC bandwidth, number of server shards, per-update service
time, worker heterogeneity) follow the paper's §4.2.2 description of the
environment.  See DESIGN.md substitution #2 and EXPERIMENTS.md F8.

Model: each worker grinds through its share of the epoch's batches.  A
batch costs ``compute`` seconds locally, then one pull+push transaction with
a parameter-server shard (round-robin).  Shards are FCFS queues with service
time ``payload/bandwidth + apply``; a worker blocks until its transaction
completes.  Workers have multiplicative speed jitter (the "different tasks
operating on the same physical machine" the paper blames for its slope
perturbations).  The outcome: near-linear speedup whose slope degrades
gracefully as shard queues saturate — the paper's ~0.8 slope regime.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["ClusterModel", "simulate_epoch_seconds", "simulate_speedup"]


@dataclass
class ClusterModel:
    """Measured + environmental parameters of the simulated cluster."""

    batch_compute_seconds: float
    """Measured single-worker wall time of one batch's model computation."""

    batch_payload_mb: float
    """Pull + push bytes per batch, in MiB (model size dependent)."""

    network_mbps: float = 1200.0
    """Effective per-transaction bandwidth to the servers, MiB/s."""

    server_apply_seconds: float = 2e-3
    """Server-side optimizer service time per update."""

    num_servers: int = 10
    """Parameter-server shard count (paper trains with a PS cluster)."""

    worker_jitter: float = 0.08
    """Std-dev of multiplicative worker speed noise (shared cluster)."""

    def transaction_seconds(self) -> float:
        return self.batch_payload_mb / self.network_mbps + self.server_apply_seconds


def simulate_epoch_seconds(
    model: ClusterModel,
    num_batches: int,
    num_workers: int,
    seed: int = 0,
) -> float:
    """Wall-clock of one epoch: ``num_batches`` split across workers.

    Event-driven: workers alternate compute (private) and a PS transaction
    (FCFS per shard, round-robin shard choice).  Returns the finish time of
    the last worker.
    """
    if num_workers < 1 or num_batches < 1:
        raise ValueError("need >= 1 worker and >= 1 batch")
    rng = new_rng(seed)
    speed = 1.0 + model.worker_jitter * rng.standard_normal(num_workers)
    speed = np.clip(speed, 0.5, 2.0)
    per_worker = [num_batches // num_workers] * num_workers
    for i in range(num_batches % num_workers):
        per_worker[i] += 1

    t_serve = model.transaction_seconds()
    server_free = [0.0] * model.num_servers
    # Each worker: (next_event_time, worker_id); event = finished computing a
    # batch, now needs a server transaction.
    heap: list[tuple[float, int]] = []
    remaining = list(per_worker)
    next_server = 0
    for w in range(num_workers):
        if remaining[w] > 0:
            heapq.heappush(heap, (model.batch_compute_seconds * speed[w], w))
            remaining[w] -= 1
    finish = 0.0
    while heap:
        t, w = heapq.heappop(heap)
        s = next_server
        next_server = (next_server + 1) % model.num_servers
        done = max(t, server_free[s]) + t_serve
        server_free[s] = done
        finish = max(finish, done)
        if remaining[w] > 0:
            remaining[w] -= 1
            heapq.heappush(heap, (done + model.batch_compute_seconds * speed[w], w))
    return finish


def simulate_speedup(
    model: ClusterModel,
    num_batches: int,
    worker_counts: list[int],
    seed: int = 0,
) -> dict[int, float]:
    """Speedup ratio (single-worker time / W-worker time) per worker count."""
    baseline = simulate_epoch_seconds(model, num_batches, 1, seed=seed)
    return {
        w: baseline / simulate_epoch_seconds(model, num_batches, w, seed=seed + w)
        for w in worker_counts
    }
