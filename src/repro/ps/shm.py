"""Shared-memory parameter-server transport (the ``transport="shm"`` knob).

The data plane is ``multiprocessing.shared_memory``:

* one **parameter slab** — an int64 seqlock header followed by the whole
  model flattened into a contiguous float32 vector (the
  :class:`~repro.nn.module.StateLayout` contract).  The header's first
  slot is the version counter: odd while the server is writing, bumped to
  the next even value when an update commits.  A client pull is therefore
  a *view refresh*: compare the version against the cached one, and only
  on change memcpy the slab into a private buffer — nothing is ever
  pickled, and an unchanged model costs nothing at all.
* one **gradient slab per worker** — ``push()`` flattens the gradient dict
  into the worker's own slab and sends a few-byte control message; the
  server thread in the parent reads the slab *in place* (zero-copy views)
  and applies it through the same shard/optimizer code as the local
  transport, so async/BSP/SSP semantics — and, for BSP, the exact float
  trajectory — are shared between transports.

The control plane is a pipe-backed channel written synchronously under a
write lock (worker → server messages: push / finish / dead — see
:class:`_CtrlChannel` for why it is not a ``multiprocessing.Queue``) plus
one ack semaphore per worker (server → worker), replacing the local
transport's ``threading.Condition`` machinery.  All of it also works when
"workers" are threads of the parent process, which is how the test suite
exercises shm semantics without spawning.

Memory-consistency note: the seqlock's double-read (version before and
after the copy) is what guards against torn float reads; single-writer
discipline (only the server thread ever touches the parameter slab after
initialisation) does the rest.

:class:`SlabBroadcast` is the same slab machinery reduced to its one-shot
form: immutable content published once by the parent (so no seqlock), read
through picklable :class:`SlabSlice` locators by any number of attaching
processes.  GraphInfer uses it to ship model slices to reducers without a
single serialized parameter byte per task (see
``repro.core.infer.segmentation``).

:class:`BatchSlab` + :func:`slab_dump` / :func:`slab_load` run the slabs in
the *opposite* direction: a prefetch worker pickles its prepared batch with
protocol 5, diverts every out-of-band buffer (the numpy blocks — virtually
all of the bytes) into a parent-owned reusable slab, and ships back only a
small :class:`ShmBatchRef`; the parent rebuilds the object with one bulk
copy out of the slab.  Array aliasing inside the batch (e.g. an edge-index
array shared between blocks and a prepared aggregator) survives because
pickle's memo handles it — the slab carries each distinct buffer once.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.nn.module import StateLayout

__all__ = [
    "BatchSlab",
    "BytesBroadcast",
    "ShmBatchRef",
    "ShmPSClient",
    "ShmTransport",
    "SlabBroadcast",
    "SlabSlice",
    "attach_shared_memory",
    "mp_context",
    "slab_dump",
    "slab_load",
]

_HEADER_INT64S = 8
_HEADER_BYTES = _HEADER_INT64S * 8
_ACK_TIMEOUT_S = 120.0
_ACK_TIMEOUT_ENV = "REPRO_PS_ACK_TIMEOUT_S"
_POLL_S = 0.2


def _resolve_ack_timeout(ack_timeout_s: float | None) -> float:
    """Ack-timeout precedence: explicit constructor argument, then the
    ``REPRO_PS_ACK_TIMEOUT_S`` environment variable (operational override —
    e.g. cranked down in a chaos soak, up on an overloaded CI box), then
    the 120s default."""
    if ack_timeout_s is None:
        raw = os.environ.get(_ACK_TIMEOUT_ENV)
        if raw is None:
            return _ACK_TIMEOUT_S
        try:
            ack_timeout_s = float(raw)
        except ValueError:
            raise ValueError(
                f"{_ACK_TIMEOUT_ENV} must be a number, got {raw!r}"
            ) from None
    if ack_timeout_s <= 0:
        raise ValueError(f"ack timeout must be > 0 seconds, got {ack_timeout_s}")
    return float(ack_timeout_s)


def mp_context():
    """The start-method every shm participant agrees on.  The parent is
    multi-threaded (server thread, epoch coordinator), so plain fork() is
    deadlock-prone; forkserver spawns workers from a clean helper."""
    methods = mp.get_all_start_methods()
    return mp.get_context("forkserver" if "forkserver" in methods else "spawn")


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing slab without adopting ownership.

    Python < 3.13 registers *every* attachment with the resource tracker,
    which then unlinks the slab when the attaching process exits — yanking
    it out from under the parent (and double-unregistering trips KeyErrors
    in the tracker because its cache is a set).  Suppress the registration
    for the duration of the attach; the creator remains the sole
    owner/unlinker.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def register(rt_name, rtype):
            if rtype != "shared_memory":
                original(rt_name, rtype)

        resource_tracker.register = register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:
        return shared_memory.SharedMemory(name=name)


# --------------------------------------------------------------- broadcasts
# One-shot "publish once, attach everywhere" slabs.  Unlike the parameter
# server above there is no version counter: the content is immutable for the
# slab's whole lifetime, so readers need no seqlock — just the layout.

_ATTACH_CACHE: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CACHE_MAX = 16
"""Bounded FIFO.  Sized for a prefetch pool's worth of per-slot batch slabs
plus a model broadcast or two — a worker that cycles every slab of one run
must never thrash the cache."""
_ATTACH_LOCK = threading.Lock()


def _attach_segment_locked(name: str) -> shared_memory.SharedMemory:
    """Cache lookup/attach for a named slab.  ``_ATTACH_LOCK`` must be held.

    The cache means a worker process that runs many tasks against the same
    slab maps it once, not once per task.  Eviction is oldest-first (dict
    insertion order); a mapping whose views are still exported cannot be
    closed — re-queue it as most-recent and keep the handle instead of
    leaking an unclosable segment; the cache may transiently exceed the cap
    while everything is pinned."""
    seg = _ATTACH_CACHE.get(name)
    if seg is None:
        for stale in list(_ATTACH_CACHE):
            if len(_ATTACH_CACHE) < _ATTACH_CACHE_MAX:
                break
            old = _ATTACH_CACHE.pop(stale)
            try:
                old.close()
            except BufferError:  # live views into the mapping
                _ATTACH_CACHE[stale] = old
        seg = attach_shared_memory(name)
        _ATTACH_CACHE[name] = seg
    return seg


def _attach_view(name: str, size: int, byte_offset: int) -> np.ndarray:
    """Attach to a broadcast slab (cached per process) and return a float32
    view into it.

    Everything — lookup, eviction, attach, *and* view construction —
    happens under one lock hold: reducers on the threads backend
    materialize concurrently, and building the ndarray exports the
    segment's buffer, which pins the mapping against a concurrent
    eviction's ``close()``; a view built outside the lock could race an
    eviction and read a closed segment."""
    with _ATTACH_LOCK:
        seg = _attach_segment_locked(name)
        return np.ndarray(
            (size,), dtype=np.float32, buffer=seg.buf, offset=byte_offset
        )


@dataclass(frozen=True)
class SlabSlice:
    """Picklable locator for one state dict inside a :class:`SlabBroadcast`.

    This is what travels to worker processes instead of the parameter
    arrays themselves: slab *name*, element offset, and the
    :class:`~repro.nn.module.StateLayout` contract — a few hundred bytes
    regardless of model size.  ``state()`` attaches lazily (cached per
    process) and returns layout views into the mapping; callers that keep
    the values past the slab's lifetime must copy them (loading them into a
    module via ``load_state_dict`` does)."""

    slab: str
    index: int
    offset: int
    layout: StateLayout

    def state(self) -> dict[str, np.ndarray]:
        flat = _attach_view(self.slab, self.layout.total_size, 4 * self.offset)
        return self.layout.unflatten(flat)

    def num_values(self) -> int:
        return self.layout.total_size


class SlabBroadcast:
    """Publish a sequence of state dicts into one named shared-memory slab.

    The creating process is the sole owner: it flattens every state dict
    through its :class:`~repro.nn.module.StateLayout` into a contiguous
    float32 slab exactly once, hands out :class:`SlabSlice` locators, and
    unlinks the slab in :meth:`close` (a ``weakref.finalize`` backstop
    covers abandoned instances).  Attaching processes never adopt
    ownership (:func:`attach_shared_memory`), so a worker exiting — or
    crashing — cannot yank the slab out from under the survivors, and the
    parent's ``finally`` is the single unlink point even when a round
    fails mid-run."""

    def __init__(self, states: list[dict[str, np.ndarray]]):
        self.layouts = [StateLayout.from_state(state) for state in states]
        offsets, total = [], 0
        for layout in self.layouts:
            offsets.append(total)
            total += layout.total_size
        self.offsets = offsets
        self.total_size = total
        self._seg = shared_memory.SharedMemory(create=True, size=max(4 * total, 1))
        # Finalizer registered before the flatten loop: a state dict that
        # fails to flatten must not leak the freshly created segment.
        self.name = self._seg.name
        self._closed = False
        self._finalizer = weakref.finalize(self, _release_segments, self._seg, [])
        try:
            flat = np.ndarray((total,), dtype=np.float32, buffer=self._seg.buf)
            for layout, offset, state in zip(self.layouts, offsets, states):
                layout.flatten(state, out=flat[offset : offset + layout.total_size])
        except BaseException:
            self.close()
            raise

    def __len__(self) -> int:
        return len(self.layouts)

    def slice(self, index: int) -> SlabSlice:
        if not 0 <= index < len(self.layouts):
            raise IndexError(f"broadcast holds {len(self.layouts)} slices")
        return SlabSlice(self.name, index, self.offsets[index], self.layouts[index])

    def close(self) -> None:
        """Unlink the slab (idempotent).  Existing mappings in attached
        processes stay valid until they unmap; no new attach can succeed."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "SlabBroadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BatchSlab:
    """Parent-owned reusable raw-byte slab for prefetch batch handoff.

    The trainer's prefetch pool creates one per in-flight window slot and
    keeps reusing it: every window, the worker driving that slot overwrites
    the slab with the out-of-band buffers of its freshly prepared batch
    (:func:`slab_dump`) and the parent drains it (:func:`slab_load`) before
    the slot is reissued.  Ownership mirrors :class:`SlabBroadcast`: only
    the creating process unlinks, with a ``weakref.finalize`` backstop."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("slab capacity must be >= 1 byte")
        self.capacity = int(capacity)
        self._seg = shared_memory.SharedMemory(create=True, size=self.capacity)
        self.name = self._seg.name
        self._closed = False
        self._finalizer = weakref.finalize(self, _release_segments, self._seg, [])

    @property
    def buf(self) -> memoryview:
        return self._seg.buf

    def close(self) -> None:
        """Unlink the slab (idempotent); lingering worker mappings stay
        valid until they unmap, but no new attach can succeed."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "BatchSlab":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BytesBroadcast:
    """Publish one immutable byte payload into a named shared-memory slab.

    The general-purpose sibling of :class:`SlabBroadcast` for non-float
    payloads (e.g. an encoded partition-plan table): the creating process
    writes the bytes exactly once, hands out only ``(name, len(payload))``
    locators, and unlinks in :meth:`close` (``weakref.finalize`` backstop
    for abandoned instances).  Readers attach with
    :func:`attach_shared_memory` and copy the prefix out — the slab may be
    rounded up by the OS, so the advertised length, not the segment size,
    bounds the payload."""

    def __init__(self, payload: bytes):
        self.nbytes = len(payload)
        self._seg = shared_memory.SharedMemory(
            create=True, size=max(self.nbytes, 1)
        )
        self.name = self._seg.name
        self._closed = False
        self._finalizer = weakref.finalize(self, _release_segments, self._seg, [])
        try:
            self._seg.buf[: self.nbytes] = payload
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Unlink the slab (idempotent); lingering worker mappings stay
        valid until they unmap, but no new attach can succeed."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "BytesBroadcast":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class ShmBatchRef:
    """Locator for a batch parked in a :class:`BatchSlab`.

    ``payload`` is the pickle-protocol-5 stream with every contiguous
    buffer diverted out-of-band; ``spans`` gives each diverted buffer's
    ``(offset, length)`` inside the slab, in ``buffer_callback`` order —
    the order :func:`slab_load` must feed them back to ``pickle.loads``."""

    slab: str
    payload: bytes
    spans: tuple[tuple[int, int], ...]

    @property
    def slab_bytes(self) -> int:
        return sum(length for _, length in self.spans)


_SLAB_ALIGN = 64


def slab_dump(obj: object, slab_name: str, capacity: int) -> ShmBatchRef | None:
    """Worker side: park ``obj``'s bulk bytes in the named slab.

    Pickles with protocol 5, writing every out-of-band buffer back-to-back
    (64-byte aligned) into the slab, and returns a small
    :class:`ShmBatchRef` for the parent.  Returns ``None`` — caller ships
    the object in-band instead — when the buffers don't fit ``capacity``;
    determinism of the fallback matters more than squeezing edge cases."""
    buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    spans: list[tuple[int, int]] = []
    raws: list[memoryview] = []
    offset = 0
    for pb in buffers:
        try:
            raw = pb.raw()
        except BufferError:  # non-contiguous exporter; ship in-band
            return None
        offset = -(-offset // _SLAB_ALIGN) * _SLAB_ALIGN
        spans.append((offset, raw.nbytes))
        raws.append(raw)
        offset += raw.nbytes
    if offset > capacity:
        return None
    with _ATTACH_LOCK:
        seg = _attach_segment_locked(slab_name)
        buf = seg.buf
        for (off, length), raw in zip(spans, raws):
            buf[off : off + length] = raw.cast("B")
    return ShmBatchRef(slab_name, payload, tuple(spans))


def slab_load(ref: ShmBatchRef, buf: memoryview) -> object:
    """Parent side: rebuild the object :func:`slab_dump` parked.

    One bulk copy out of the slab into a private bytearray, then
    ``pickle.loads`` with writable views into that copy — the slab can be
    overwritten by the next window the moment this returns, and the
    reconstructed arrays are backed by private memory, not the slab."""
    total = sum(length for _, length in ref.spans)
    private = bytearray(total)
    views: list[memoryview] = []
    mv = memoryview(private)
    pos = 0
    for off, length in ref.spans:
        private[pos : pos + length] = buf[off : off + length]
        views.append(mv[pos : pos + length])
        pos += length
    return pickle.loads(ref.payload, buffers=views)


class _CtrlChannel:
    """Control-plane message channel: a raw pipe plus a write lock, written
    *synchronously from the calling thread*.

    This deliberately replaces ``multiprocessing.Queue``, whose ``put`` only
    buffers and lets a per-process **feeder thread** acquire the shared
    write lock and flush later.  A worker that hard-crashes (``os._exit``,
    SIGKILL) right after being acked could die while its feeder still held
    the lock — permanently deadlocking every other writer (surviving
    workers' pushes, the parent's ``mark_dead``), which is precisely the
    crash window the dead-worker tests probe.  With the synchronous write,
    the lock is provably released before ``push()`` starts waiting for its
    ack, so a worker can only ever die *between* messages.  (No feeder
    thread also means nothing to ``join_thread`` at close.)"""

    def __init__(self, ctx):
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._wlock = ctx.Lock()

    def put(self, msg, timeout: float | None = None) -> None:
        """Send a message; with ``timeout``, bound the wait for the write
        lock.  A process SIGKILLed *mid-send* still orphans the lock (the
        irreducible residue of a shared-pipe design) — the timeout turns
        that from a silent permanent hang of every surviving writer into a
        loud bounded-time failure, and the parent's recovery/control
        messages bypass this channel entirely (see ``ShmTransport``)."""
        if not self._wlock.acquire(timeout=timeout):
            raise RuntimeError(
                f"control-channel write lock not acquired within {timeout:.0f}s "
                "(held by a crashed process?)"
            )
        try:
            self._writer.send(msg)
        finally:
            self._wlock.release()

    def get(self, timeout: float):
        """Single reader: the server thread.  Raises ``queue.Empty`` on
        timeout to keep the server loop's contract."""
        if self._reader.poll(timeout):
            return self._reader.recv()
        raise queue_mod.Empty

    def close(self) -> None:
        self._reader.close()
        self._writer.close()


class _SeqlockWrite:
    """Context manager the server holds while mutating the parameter slab:
    version goes odd on entry, next even on exit (commit)."""

    def __init__(self, header: np.ndarray):
        self._header = header

    def __enter__(self):
        self._header[0] += 1
        return self

    def __exit__(self, *exc):
        self._header[0] += 1


class ShmPSClient:
    """Picklable per-worker handle onto the shared-memory slabs.

    Safe to ship to a worker process (slab *names* travel; mappings are
    re-attached lazily on first use) and equally functional from a thread
    of the parent.  Interface-compatible with
    :class:`~repro.ps.server.PSClient`: ``pull()`` returns ``None`` when
    the cached version is current, else a state dict of views into the
    client's private refresh buffer.
    """

    def __init__(
        self,
        layout: StateLayout,
        param_slab: str,
        grad_slab: str,
        worker_id: int,
        ctrl,
        ack,
        ack_timeout_s: float | None = None,
    ):
        self.layout = layout
        self.param_slab = param_slab
        self.grad_slab = grad_slab
        self.worker_id = worker_id
        self.ack_timeout_s = _resolve_ack_timeout(ack_timeout_s)
        self._ctrl = ctrl
        self._ack = ack
        self._seen_version = -1
        self.pulls = 0
        self.refreshes = 0
        self.pull_bytes = 0  # serialized transport bytes: always 0 for shm
        self._attached = False

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        state = self.__dict__.copy()
        # mappings and views are per-process; the receiving side re-attaches
        for key in ("_param_seg", "_grad_seg", "_header", "_params", "_grad_view",
                    "_buffer", "_views", "_grad_slab_views"):
            state.pop(key, None)
        state["_attached"] = False
        return state

    def _ensure_attached(self) -> None:
        if self._attached:
            return
        self._param_seg = attach_shared_memory(self.param_slab)
        self._grad_seg = attach_shared_memory(self.grad_slab)
        size = self.layout.total_size
        self._header = np.ndarray((_HEADER_INT64S,), dtype=np.int64, buffer=self._param_seg.buf)
        self._params = np.ndarray(
            (size,), dtype=np.float32, buffer=self._param_seg.buf, offset=_HEADER_BYTES
        )
        self._grad_view = np.ndarray((size,), dtype=np.float32, buffer=self._grad_seg.buf)
        self._buffer = np.empty(size, dtype=np.float32)
        self._views = self.layout.unflatten(self._buffer)
        self._grad_slab_views = self.layout.unflatten(self._grad_view)
        self._attached = True

    # ------------------------------------------------------------ pull/push
    def pull(self) -> dict[str, np.ndarray] | None:
        self._ensure_attached()
        self.pulls += 1
        while True:
            before = int(self._header[0])
            if before % 2:  # server mid-write; retry shortly
                time.sleep(0)
                continue
            if before == self._seen_version:
                return None
            self._buffer[...] = self._params
            if int(self._header[0]) == before:
                self._seen_version = before
                self.refreshes += 1
                return self._views

    def push(self, grads: dict[str, np.ndarray]) -> None:
        """Write the gradient dict into this worker's slab and signal.

        A parameter may legitimately have no gradient this step (the
        trainer omits ``grad is None`` entries); absent names ride along
        in the control message so the server skips their (stale) slab
        slots — matching the local transport, which simply never sees
        them."""
        self._ensure_attached()
        slab_views = self._grad_slab_views
        missing = []
        for name, view in slab_views.items():
            if name in grads:
                view[...] = np.asarray(grads[name], dtype=np.float32)
            else:
                missing.append(name)
        unknown = grads.keys() - slab_views.keys()
        if unknown:
            raise KeyError(f"gradients for unknown parameters: {sorted(unknown)}")
        self._ctrl.put(
            ("push", self.worker_id, tuple(missing)), timeout=self.ack_timeout_s
        )
        self._await_ack()

    def _await_ack(self) -> None:
        deadline = time.monotonic() + self.ack_timeout_s
        while not self._ack.acquire(timeout=_POLL_S):
            parent = mp.parent_process()
            if parent is not None and not parent.is_alive():
                raise RuntimeError("parameter-server process died; aborting worker")
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"worker {self.worker_id}: no ack from the parameter server "
                    f"within {self.ack_timeout_s:.0f}s"
                )

    def finish_epoch(self) -> None:
        """End-of-epoch drain (SSP staleness release, BSP barrier excuse).

        Blocks until the server has processed the drain: the ack is what
        serialises a worker's epoch-end against the parent's subsequent
        ``begin_epoch`` barrier reset (messages from different processes
        have no cross-queue ordering guarantee otherwise).
        """
        self._ctrl.put(("finish", self.worker_id, None), timeout=self.ack_timeout_s)
        self._await_ack()

    def stats(self) -> dict[str, int]:
        return {
            "pulls": self.pulls,
            "refreshes": self.refreshes,
            "pull_bytes": self.pull_bytes,
        }


class ShmTransport:
    """Parent-side owner of the slabs plus the apply/consistency thread.

    ``ack_timeout_s`` bounds every ack-style wait on the transport — the
    workers' push/drain acks and the parent's ``begin_epoch`` barrier
    re-arm.  ``None`` defers to the ``REPRO_PS_ACK_TIMEOUT_S`` environment
    variable, then the 120s default."""

    def __init__(self, group, state: dict[str, np.ndarray], ack_timeout_s: float | None = None):
        self.group = group
        self.ack_timeout_s = _resolve_ack_timeout(ack_timeout_s)
        self.layout = StateLayout.from_state(state)
        self.ctx = mp_context()
        size = self.layout.total_size
        self._param_seg = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + 4 * size
        )
        self._grad_segs = [
            shared_memory.SharedMemory(create=True, size=4 * size)
            for _ in range(group.num_workers)
        ]
        self._header = np.ndarray((_HEADER_INT64S,), dtype=np.int64, buffer=self._param_seg.buf)
        self._header[:] = 0
        self._params = np.ndarray(
            (size,), dtype=np.float32, buffer=self._param_seg.buf, offset=_HEADER_BYTES
        )
        self._grad_views = [
            np.ndarray((size,), dtype=np.float32, buffer=seg.buf) for seg in self._grad_segs
        ]
        self._ctrl = _CtrlChannel(self.ctx)
        # Parent -> server-thread control messages (begin_epoch, mark_dead,
        # stop) skip the cross-process channel: they stay in-process on a
        # thread-safe deque, so the *recovery* path (excusing a dead worker)
        # can never block on a lock a crashed worker orphaned.
        self._local_ctrl: deque = deque()
        self._acks = [self.ctx.Semaphore(0) for _ in range(group.num_workers)]
        self._clients: dict[int, ShmPSClient] = {}
        self._epoch_armed = threading.Event()  # server-side begin_epoch ack
        self._thread: threading.Thread | None = None
        self.server_error: BaseException | None = None
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_segments, self._param_seg, list(self._grad_segs)
        )

    # --------------------------------------------------------------- set-up
    def param_views(self) -> dict[str, np.ndarray]:
        """Named views into the parameter slab — the authoritative storage
        the group's shards install their values into."""
        return self.layout.unflatten(self._params)

    def commit_initial(self) -> None:
        """Publish the initial model: version 0 -> 2 (first even commit)."""
        self._header[0] = 2

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._serve, name="agl-ps-server", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- group API
    def version(self) -> int:
        return int(self._header[0])

    def write_lock(self) -> _SeqlockWrite:
        return _SeqlockWrite(self._header)

    def read_state(self) -> dict[str, np.ndarray]:
        """Parent-side consistent snapshot (seqlock copy)."""
        size = self.layout.total_size
        buffer = np.empty(size, dtype=np.float32)
        while True:
            before = int(self._header[0])
            if before % 2:
                time.sleep(0)
                continue
            buffer[...] = self._params
            if int(self._header[0]) == before:
                return self.layout.unflatten(buffer)

    def client(self, worker_id: int) -> ShmPSClient:
        if not 0 <= worker_id < self.group.num_workers:
            raise ValueError(f"worker_id {worker_id} out of range")
        if worker_id not in self._clients:
            client = ShmPSClient(
                self.layout,
                self._param_seg.name,
                self._grad_segs[worker_id].name,
                worker_id,
                self._ctrl,
                self._acks[worker_id],
                ack_timeout_s=self.ack_timeout_s,
            )
            # In-parent use (thread workers, evaluation) borrows this
            # process's existing mappings instead of re-attaching — the
            # attach path is for clients that crossed a process boundary.
            client._header = self._header
            client._params = self._params
            client._grad_view = self._grad_views[worker_id]
            client._buffer = np.empty(self.layout.total_size, dtype=np.float32)
            client._views = self.layout.unflatten(client._buffer)
            client._grad_slab_views = self.layout.unflatten(client._grad_view)
            client._attached = True
            self._clients[worker_id] = client
        return self._clients[worker_id]

    def begin_epoch(self) -> None:
        """Re-arm the BSP barrier.  Synchronous: returns only once the
        server thread has processed the reset, so every worker's (ack'd)
        end-of-epoch drain is ordered strictly before it."""
        self._epoch_armed.clear()
        self._local_ctrl.append(("begin_epoch", -1, None))
        if not self._epoch_armed.wait(timeout=self.ack_timeout_s):
            raise RuntimeError("parameter-server thread did not re-arm the epoch")

    def finish_worker(self, worker_id: int) -> None:
        self.client(worker_id).finish_epoch()

    def mark_dead(self, worker_id: int) -> None:
        """A worker process died without draining — excuse it from every
        barrier so the survivors never deadlock.  Delivered in-process so
        it works even when the corpse orphaned the channel's write lock."""
        self._local_ctrl.append(("dead", worker_id, None))

    # ------------------------------------------------------------ the server
    def _serve(self) -> None:
        group = self.group
        workers = group.num_workers
        active = set(range(workers))
        required = set(active)  # BSP: who this epoch's barriers may wait on
        waiting: set[int] = set()  # BSP: contributed to the current step
        steps = [0] * workers  # SSP step counters
        parked: set[int] = set()  # SSP: pushed but blocked on staleness

        absent: dict[int, tuple] = {}  # per worker: names omitted this push

        def grads_of(w: int) -> dict[str, np.ndarray]:
            views = self.layout.unflatten(self._grad_views[w])
            for name in absent.get(w, ()):  # stale slots: no grad this step
                views.pop(name, None)
            return views

        def apply_one(w: int) -> None:
            group._scatter_apply(grads_of(w))

        def bsp_flush_if_ready() -> None:
            if waiting and waiting >= required:
                from repro.ps.server import mean_gradients

                group._scatter_apply(
                    mean_gradients({w: grads_of(w) for w in waiting})
                )
                for w in sorted(waiting):
                    self._acks[w].release()
                waiting.clear()

        def ssp_drain() -> None:
            made_progress = True
            while made_progress:
                made_progress = False
                for w in sorted(parked):
                    if steps[w] - min(steps) <= group.staleness:
                        parked.discard(w)
                        apply_one(w)
                        steps[w] += 1
                        self._acks[w].release()
                        made_progress = True
                        break

        try:
            while True:
                if self._local_ctrl:
                    kind, w, payload = self._local_ctrl.popleft()
                else:
                    try:
                        kind, w, payload = self._ctrl.get(timeout=_POLL_S)
                    except queue_mod.Empty:
                        continue
                if kind == "stop":
                    break
                if kind == "begin_epoch":
                    required = set(active)
                    self._epoch_armed.set()
                    continue
                if kind == "push":
                    group.total_pushes += 1
                    absent[w] = payload or ()
                    if group.mode == "async":
                        apply_one(w)
                        self._acks[w].release()
                    elif group.mode == "bsp":
                        waiting.add(w)
                        bsp_flush_if_ready()
                    else:  # ssp
                        if steps[w] - min(steps) > group.staleness:
                            parked.add(w)
                        else:
                            apply_one(w)
                            steps[w] += 1
                            self._acks[w].release()
                            ssp_drain()
                elif kind in ("finish", "dead"):
                    if kind == "dead":
                        active.discard(w)
                    if group.mode == "ssp":
                        steps[w] = max(steps)
                        parked.discard(w)
                        ssp_drain()
                    elif group.mode == "bsp":
                        required.discard(w)
                        bsp_flush_if_ready()
                    if kind == "finish":
                        self._acks[w].release()
        except BaseException as exc:  # pragma: no cover - defensive
            self.server_error = exc
            for ack in self._acks:  # never leave a worker blocked on a push
                ack.release()
            self._epoch_armed.set()

    # -------------------------------------------------------------- teardown
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._thread is not None and self._thread.is_alive():
            self._local_ctrl.append(("stop", -1, None))
            self._thread.join(timeout=10)
        self._ctrl.close()
        self._finalizer()


def _release_segments(param_seg, grad_segs) -> None:
    # close and unlink attempted independently: a still-exported buffer
    # (BufferError on close) must not stop the name being unlinked — the
    # lingering mapping then dies with its last reference, not /dev/shm.
    for seg in [param_seg, *grad_segs]:
        try:
            seg.close()
        except Exception:  # pragma: no cover - exported views / already closed
            pass
        try:
            seg.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass
