"""``GraphFeature`` — the flattened k-hop neighborhood of §3.2.

A ``GraphFeature`` is the self-contained record GraphFlat emits for each
target node: the nodes within k hops (along reverse in-edge paths), their
features, the connecting edges with features/weights, and per-node hop
distances.  "Since the k-hop neighborhood w.r.t. a node helps discriminate
the node from others, we also call it GraphFeature" (§3.2.1).

The byte-level flattening ("protobuf strings" in the paper) lives in
``repro.proto``; this module is the in-memory form plus the batch *merge*
operation that GraphTrainer's vectorization phase performs (§3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GraphFeature", "merge_graph_features"]


@dataclass
class GraphFeature:
    """Flattened k-hop neighborhood w.r.t. one (or several) target nodes.

    Attributes
    ----------
    target_ids:
        ``(t,) int64`` global ids of the target node(s).  GraphFlat emits one
        target per feature; merged batches carry all batch targets.
    node_ids:
        ``(n,) int64`` global ids of every node in the neighborhood.  The
        targets are always present.
    x:
        ``(n, fn) float32`` node feature matrix.
    hops:
        ``(n,) int64`` — ``hops[i]`` is ``d(targets, node_i)``: the length of
        the shortest directed path from node ``i`` to the nearest target
        (0 for targets themselves).  Drives graph pruning (§3.3.2).
    edge_src / edge_dst:
        ``(m,) int64`` **local** indices into ``node_ids``.  Edge direction is
        ``src -> dst`` exactly as in the edge table.
    edge_feat:
        ``(m, fe) float32`` or ``None`` when the graph has no edge features.
    edge_weight:
        ``(m,) float32`` positive weights (``A_{v,u}``).
    node_type / edge_type:
        optional ``(n,)`` / ``(m,)`` int64 type ids for heterogeneous
        graphs (typed tables); ``None`` on homogeneous graphs — wire and
        shard encodings of untyped features are byte-identical to the
        pre-typed format.
    """

    target_ids: np.ndarray
    node_ids: np.ndarray
    x: np.ndarray
    hops: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_feat: np.ndarray | None = None
    edge_weight: np.ndarray | None = None
    node_type: np.ndarray | None = None
    edge_type: np.ndarray | None = None
    _pos: dict[int, int] = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __post_init__(self):
        self.target_ids = np.atleast_1d(np.asarray(self.target_ids, dtype=np.int64))
        self.node_ids = np.asarray(self.node_ids, dtype=np.int64)
        self.x = np.asarray(self.x, dtype=np.float32)
        self.hops = np.asarray(self.hops, dtype=np.int64)
        self.edge_src = np.asarray(self.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(self.edge_dst, dtype=np.int64)
        if self.edge_weight is None:
            self.edge_weight = np.ones(len(self.edge_src), dtype=np.float32)
        else:
            self.edge_weight = np.asarray(self.edge_weight, dtype=np.float32)
        if self.edge_feat is not None:
            self.edge_feat = np.asarray(self.edge_feat, dtype=np.float32)
        if self.node_type is not None:
            self.node_type = np.asarray(self.node_type, dtype=np.int64)
        if self.edge_type is not None:
            self.edge_type = np.asarray(self.edge_type, dtype=np.int64)
        self._validate()
        self._pos = {int(i): p for p, i in enumerate(self.node_ids)}

    def _validate(self) -> None:
        n, m = len(self.node_ids), len(self.edge_src)
        if len(np.unique(self.node_ids)) != n:
            raise ValueError("GraphFeature node_ids contain duplicates")
        if self.x.shape[0] != n:
            raise ValueError(f"x has {self.x.shape[0]} rows for {n} nodes")
        if self.hops.shape != (n,):
            raise ValueError("hops must have one entry per node")
        if self.edge_dst.shape != (m,) or self.edge_weight.shape != (m,):
            raise ValueError("edge arrays must be aligned")
        if m and (self.edge_src.max() >= n or self.edge_dst.max() >= n):
            raise ValueError("edge endpoints out of range")
        if m and (self.edge_src.min() < 0 or self.edge_dst.min() < 0):
            raise ValueError("edge endpoints must be non-negative")
        if self.edge_feat is not None and self.edge_feat.shape[0] != m:
            raise ValueError("edge_feat must have one row per edge")
        if self.node_type is not None and self.node_type.shape != (n,):
            raise ValueError("node_type must have one entry per node")
        if self.edge_type is not None and self.edge_type.shape != (m,):
            raise ValueError("edge_type must have one entry per edge")
        target_set = set(int(t) for t in self.target_ids)
        present = set(int(i) for i in self.node_ids)
        if not target_set <= present:
            raise ValueError("targets must be contained in node_ids")

    # ---------------------------------------------------------------- sizes
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    @property
    def feature_dim(self) -> int:
        return self.x.shape[1]

    @property
    def edge_feature_dim(self) -> int:
        return 0 if self.edge_feat is None else self.edge_feat.shape[1]

    @property
    def target_index(self) -> np.ndarray:
        """Local row indices of the targets inside ``node_ids``/``x``."""
        return np.fromiter(
            (self._pos[int(t)] for t in self.target_ids),
            dtype=np.int64,
            count=len(self.target_ids),
        )

    def local_index_of(self, node_id: int) -> int:
        return self._pos[int(node_id)]

    # ------------------------------------------------------------ utilities
    def sorted_by_destination(self) -> "GraphFeature":
        """Copy with edges stably sorted by destination (CSR-ready layout)."""
        order = np.argsort(self.edge_dst, kind="stable")
        return GraphFeature(
            self.target_ids,
            self.node_ids,
            self.x,
            self.hops,
            self.edge_src[order],
            self.edge_dst[order],
            None if self.edge_feat is None else self.edge_feat[order],
            self.edge_weight[order],
            self.node_type,
            None if self.edge_type is None else self.edge_type[order],
        )

    def max_hop(self) -> int:
        return int(self.hops.max(initial=0))


def merge_graph_features(features: list[GraphFeature]) -> GraphFeature:
    """Merge a batch of GraphFeatures into one subgraph (§3.3.1 step 1).

    Overlapping neighborhoods share nodes and edges; the merge dedupes nodes
    by global id and edges by ``(global_src, global_dst)`` (parallel edges
    inside a single neighborhood are assumed already distinct-by-endpoint —
    GraphFlat collapses duplicates the same way).  ``hops`` become the
    *minimum* distance to any target in the batch, which is exactly
    ``d(V_B, u)`` of the pruning section (§3.3.2).

    The result's edges are sorted by destination, matching the paper's
    adjacency-matrix contract.
    """
    if not features:
        raise ValueError("cannot merge an empty batch")
    if len(features) == 1:
        return features[0].sorted_by_destination()

    fe_dims = {f.edge_feature_dim for f in features}
    if len(fe_dims) != 1:
        raise ValueError(f"inconsistent edge feature dims in batch: {fe_dims}")
    fn_dims = {f.feature_dim for f in features}
    if len(fn_dims) != 1:
        raise ValueError(f"inconsistent node feature dims in batch: {fn_dims}")

    all_ids = np.concatenate([f.node_ids for f in features])
    merged_ids, first_occurrence = np.unique(all_ids, return_index=True)
    all_x = np.concatenate([f.x for f in features], axis=0)
    merged_x = all_x[first_occurrence]

    # hops = min over all batch members that contain the node
    all_hops = np.concatenate([f.hops for f in features])
    merged_hops = np.full(len(merged_ids), np.iinfo(np.int64).max, dtype=np.int64)
    slot = np.searchsorted(merged_ids, all_ids)
    np.minimum.at(merged_hops, slot, all_hops)

    # edges: translate to global ids, dedupe on (src, dst)
    g_src = np.concatenate([f.node_ids[f.edge_src] for f in features])
    g_dst = np.concatenate([f.node_ids[f.edge_dst] for f in features])
    g_w = np.concatenate([f.edge_weight for f in features])
    g_ef = (
        None
        if features[0].edge_feat is None
        else np.concatenate(
            [
                f.edge_feat
                if f.edge_feat is not None
                else np.zeros((f.num_edges, fe_dims.pop()), np.float32)
                for f in features
            ],
            axis=0,
        )
    )
    pair = np.stack([g_src, g_dst], axis=1)
    if len(pair):
        _, keep = np.unique(pair, axis=0, return_index=True)
        keep.sort()
    else:
        keep = np.empty(0, dtype=np.int64)
    l_src = np.searchsorted(merged_ids, g_src[keep])
    l_dst = np.searchsorted(merged_ids, g_dst[keep])

    node_type = None
    if all(f.node_type is not None for f in features):
        node_type = np.concatenate([f.node_type for f in features])[first_occurrence]
    edge_type = None
    if all(f.edge_type is not None for f in features):
        edge_type = np.concatenate([f.edge_type for f in features])[keep]

    targets = np.unique(np.concatenate([f.target_ids for f in features]))
    merged = GraphFeature(
        targets,
        merged_ids,
        merged_x,
        merged_hops,
        l_src,
        l_dst,
        None if g_ef is None else g_ef[keep],
        g_w[keep],
        node_type,
        edge_type,
    )
    return merged.sorted_by_destination()
