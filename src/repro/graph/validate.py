"""Structural validation for graphs and raw tables.

Industrial pipelines ingest tables produced by upstream jobs; silent
corruption (edges referencing missing nodes, NaN features, non-positive
weights) surfaces as mysteriously bad models.  These checks fail fast with
actionable messages and are run by GraphFlat before the Map phase.
"""

from __future__ import annotations

import numpy as np

from repro.graph.attributed import AttributedGraph
from repro.graph.tables import EdgeTable, NodeTable

__all__ = ["GraphValidationError", "validate_tables", "validate_graph"]


class GraphValidationError(ValueError):
    """Raised when a node/edge table pair is structurally inconsistent."""


def validate_tables(nodes: NodeTable, edges: EdgeTable) -> None:
    """Check the node/edge table pair GraphFlat is about to consume.

    Raises :class:`GraphValidationError` listing every violated property
    (all checks run; errors are aggregated so one pass reports everything).
    """
    problems: list[str] = []

    if not np.isfinite(nodes.features).all():
        bad = int(np.count_nonzero(~np.isfinite(nodes.features).all(axis=1)))
        problems.append(f"{bad} node feature rows contain NaN/Inf")

    known = set(int(i) for i in nodes.ids)
    missing_src = [int(s) for s in np.unique(edges.src) if int(s) not in known]
    missing_dst = [int(d) for d in np.unique(edges.dst) if int(d) not in known]
    if missing_src:
        problems.append(
            f"{len(missing_src)} edge source ids missing from node table "
            f"(e.g. {missing_src[:5]})"
        )
    if missing_dst:
        problems.append(
            f"{len(missing_dst)} edge destination ids missing from node table "
            f"(e.g. {missing_dst[:5]})"
        )

    if edges.features is not None and not np.isfinite(edges.features).all():
        bad = int(np.count_nonzero(~np.isfinite(edges.features).all(axis=1)))
        problems.append(f"{bad} edge feature rows contain NaN/Inf")

    if np.any(edges.weights <= 0) or not np.isfinite(edges.weights).all():
        problems.append("edge weights must be finite and positive")

    if problems:
        raise GraphValidationError("; ".join(problems))


def validate_graph(graph: AttributedGraph) -> None:
    """Validate an already-built in-memory graph (baseline path)."""
    validate_tables(graph.nodes, graph.edges)
    # CSR internal consistency
    in_ptr, in_src, _ = graph.in_csr
    out_ptr, out_dst, _ = graph.out_csr
    if in_ptr[-1] != graph.num_edges or out_ptr[-1] != graph.num_edges:
        raise GraphValidationError("CSR pointer totals disagree with edge count")
    if len(in_src) != graph.num_edges or len(out_dst) != graph.num_edges:
        raise GraphValidationError("CSR index arrays disagree with edge count")
    if np.any(np.diff(in_ptr) < 0) or np.any(np.diff(out_ptr) < 0):
        raise GraphValidationError("CSR pointers must be non-decreasing")
