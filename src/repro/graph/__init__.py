"""Graph data structures: columnar tables, CSR attributed graphs, subgraphs.

This package is substrate **S1** of the reproduction (see DESIGN.md): the
storage layer that the paper assumes as "a node table and an edge table" on a
distributed file system, plus the in-memory representation used by the
baseline in-memory systems and the dataset generators.
"""

from repro.graph.tables import EdgeTable, NodeTable
from repro.graph.attributed import AttributedGraph
from repro.graph.subgraph import GraphFeature, merge_graph_features
from repro.graph.validate import GraphValidationError, validate_graph, validate_tables

__all__ = [
    "NodeTable",
    "EdgeTable",
    "AttributedGraph",
    "GraphFeature",
    "merge_graph_features",
    "GraphValidationError",
    "validate_graph",
    "validate_tables",
]
