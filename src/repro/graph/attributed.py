"""In-memory directed attributed graph with CSR adjacency in both directions.

``AttributedGraph`` is the representation used by (a) the dataset generators,
(b) the full-graph in-memory baseline trainers (the DGL/PyG proxies of
Table 4), and (c) tests that compare AGL's subgraph pipeline against ground
truth.  AGL itself never materialises this object for the "industrial" path —
that is the whole point of GraphFlat — but the reproduction needs it as the
reference implementation.

Terminology follows the paper (§2.1): for node ``v``, the *in-edge neighbors*
``N+_v`` are sources of edges pointing at ``v`` (the nodes a GNN layer
aggregates from), and the *out-edge neighbors* ``N-_v`` are destinations of
edges leaving ``v``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.tables import EdgeTable, NodeTable

__all__ = ["AttributedGraph"]


class AttributedGraph:
    """Directed attributed graph over positional node indices ``0..n-1``.

    Construction re-indexes the arbitrary int64 ids of the node table to
    contiguous positions; both id spaces stay accessible (``node_ids`` maps
    position -> id, ``index_of`` maps id -> position).

    Two CSR structures are kept:

    * *in-CSR* — edges grouped by **destination** (rows = destinations).
      This is the layout GNN aggregation wants ("edges ... sorted by their
      destination nodes", §3.3.1) and the layout edge partitioning slices.
    * *out-CSR* — edges grouped by **source**, used for propagation along
      out-edges (GraphFlat / GraphInfer message passing).
    """

    def __init__(self, nodes: NodeTable, edges: EdgeTable):
        self.nodes = nodes
        self.edges = edges
        n = len(nodes)
        src_pos = nodes.index_of(edges.src) if len(edges) else np.empty(0, np.int64)
        dst_pos = nodes.index_of(edges.dst) if len(edges) else np.empty(0, np.int64)

        # in-CSR: sort edges by destination (stable, so src order within a
        # destination follows input order — matters for reproducible sampling)
        order_in = np.argsort(dst_pos, kind="stable")
        self._in_src = src_pos[order_in]
        self._in_dst = dst_pos[order_in]
        self._in_eid = order_in  # position into the original edge table
        self._in_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._in_ptr, dst_pos + 1, 1)
        np.cumsum(self._in_ptr, out=self._in_ptr)

        # out-CSR: sort edges by source
        order_out = np.argsort(src_pos, kind="stable")
        self._out_src = src_pos[order_out]
        self._out_dst = dst_pos[order_out]
        self._out_eid = order_out
        self._out_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(self._out_ptr, src_pos + 1, 1)
        np.cumsum(self._out_ptr, out=self._out_ptr)

    # ------------------------------------------------------------------ size
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def node_ids(self) -> np.ndarray:
        return self.nodes.ids

    @property
    def node_features(self) -> np.ndarray:
        return self.nodes.features

    @property
    def feature_dim(self) -> int:
        return self.nodes.feature_dim

    @property
    def edge_feature_dim(self) -> int:
        return self.edges.feature_dim

    def index_of(self, node_ids) -> np.ndarray:
        return self.nodes.index_of(node_ids)

    # ----------------------------------------------------------- adjacency
    def in_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, edge_table_positions)`` of edges pointing at ``v``."""
        lo, hi = self._in_ptr[v], self._in_ptr[v + 1]
        return self._in_src[lo:hi], self._in_eid[lo:hi]

    def out_edges(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``(destinations, edge_table_positions)`` of edges leaving ``v``."""
        lo, hi = self._out_ptr[v], self._out_ptr[v + 1]
        return self._out_dst[lo:hi], self._out_eid[lo:hi]

    def in_neighbors(self, v: int) -> np.ndarray:
        """``N+_v`` — positions of nodes pointing at ``v`` (may repeat)."""
        return self.in_edges(v)[0]

    def out_neighbors(self, v: int) -> np.ndarray:
        """``N-_v`` — positions of nodes ``v`` points at (may repeat)."""
        return self.out_edges(v)[0]

    def in_degrees(self) -> np.ndarray:
        return np.diff(self._in_ptr)

    def out_degrees(self) -> np.ndarray:
        return np.diff(self._out_ptr)

    # Layout accessors used by the vectorizer / baselines ------------------
    @property
    def in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(row_ptr, src, edge_ids)`` with rows = destination nodes."""
        return self._in_ptr, self._in_src, self._in_eid

    @property
    def out_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(row_ptr, dst, edge_ids)`` with rows = source nodes."""
        return self._out_ptr, self._out_dst, self._out_eid

    # -------------------------------------------------------------- queries
    def k_hop_ancestors(self, targets, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Reference BFS for the paper's k-hop neighborhood (Definition 1).

        Returns ``(node_positions, hop_distance)`` for every node ``u`` with a
        directed path ``u -> ... -> v`` of length ``<= k`` to some target
        ``v`` (distance = the minimum such length).  This walks *in-edges*
        backwards because GNN information flows along in-edges (Theorem 1).
        Used as ground truth by GraphFlat's tests.
        """
        targets = np.atleast_1d(np.asarray(targets, dtype=np.int64))
        dist = np.full(self.num_nodes, -1, dtype=np.int64)
        dist[targets] = 0
        frontier = targets
        for hop in range(1, k + 1):
            nxt = []
            for v in frontier:
                for u in self.in_neighbors(int(v)):
                    if dist[u] == -1:
                        dist[u] = hop
                        nxt.append(u)
            if not nxt:
                break
            frontier = np.asarray(nxt, dtype=np.int64)
        keep = np.flatnonzero(dist >= 0)
        return keep, dist[keep]

    def dense_adjacency(self) -> np.ndarray:
        """``A`` as a dense ``(n, n)`` float32 matrix: ``A[v, u] = w(u->v)``.

        Only for small graphs / tests — the whole paper exists because this
        does not scale.
        """
        adj = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float32)
        src = self.nodes.index_of(self.edges.src)
        dst = self.nodes.index_of(self.edges.dst)
        np.add.at(adj, (dst, src), self.edges.weights)
        return adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AttributedGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"fn={self.feature_dim}, fe={self.edge_feature_dim})"
        )
