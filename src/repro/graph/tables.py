"""Columnar node/edge tables — the raw input format of GraphFlat.

The paper (§3.2.1) assumes two inputs: a *node table* of ``(node id, node
feature)`` rows and an *edge table* of ``(source id, destination id, edge
feature)`` rows, both living on a distributed file system.  These classes are
the in-memory columnar form of those tables; ``repro.datasets.io`` reads and
writes them as TSV files so the MapReduce pipelines can stream them.

Node ids are arbitrary ``int64`` values (not required to be contiguous): in
industrial graphs ids are hashes.  All structural algorithms work on
positional indices obtained through :meth:`NodeTable.index_of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NodeTable", "EdgeTable"]


def _as_2d_float32(arr, n_rows: int, what: str) -> np.ndarray:
    out = np.asarray(arr, dtype=np.float32)
    if out.ndim == 1:
        out = out.reshape(n_rows, -1) if n_rows else out.reshape(0, 1)
    if out.ndim != 2:
        raise ValueError(f"{what} must be 2-D, got shape {out.shape}")
    if out.shape[0] != n_rows:
        raise ValueError(f"{what} has {out.shape[0]} rows, expected {n_rows}")
    return out


@dataclass
class NodeTable:
    """Columnar table of nodes: ids, dense features and optional labels.

    Attributes
    ----------
    ids:
        ``(n,) int64`` — unique node identifiers.
    features:
        ``(n, fn) float32`` — node feature matrix (``X`` in the paper).
    labels:
        optional ``(n,)`` int64 class ids for single-label tasks or
        ``(n, c) float32`` indicator matrix for multi-label tasks (PPI).
        ``-1`` in the int form means "unlabeled".
    types:
        optional ``(n,)`` int64 node-type ids for heterogeneous graphs
        (e.g. user/item); ``None`` on homogeneous graphs.
    """

    ids: np.ndarray
    features: np.ndarray
    labels: np.ndarray | None = None
    types: np.ndarray | None = None
    _pos: dict[int, int] = field(default=None, repr=False, compare=False)  # type: ignore[assignment]

    def __post_init__(self):
        self.ids = np.asarray(self.ids, dtype=np.int64)
        if self.ids.ndim != 1:
            raise ValueError(f"node ids must be 1-D, got shape {self.ids.shape}")
        self.features = _as_2d_float32(self.features, len(self.ids), "node features")
        if len(np.unique(self.ids)) != len(self.ids):
            raise ValueError("node ids contain duplicates")
        if self.labels is not None:
            self.labels = np.asarray(self.labels)
            if self.labels.shape[0] != len(self.ids):
                raise ValueError(
                    f"labels have {self.labels.shape[0]} rows, expected {len(self.ids)}"
                )
        if self.types is not None:
            self.types = np.asarray(self.types, dtype=np.int64)
            if self.types.shape != self.ids.shape:
                raise ValueError("node types must align with ids")
            if len(self.types) and self.types.min() < 0:
                raise ValueError("node type ids must be non-negative")
        self._pos = {int(i): p for p, i in enumerate(self.ids)}

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    def index_of(self, node_ids) -> np.ndarray:
        """Positional indices of ``node_ids`` (vectorised; KeyError if absent)."""
        node_ids = np.atleast_1d(np.asarray(node_ids, dtype=np.int64))
        try:
            return np.fromiter(
                (self._pos[int(i)] for i in node_ids), dtype=np.int64, count=len(node_ids)
            )
        except KeyError as exc:  # re-raise with context
            raise KeyError(f"node id {exc.args[0]} not in table") from None

    def __contains__(self, node_id: int) -> bool:
        return int(node_id) in self._pos

    def feature_of(self, node_id: int) -> np.ndarray:
        return self.features[self._pos[int(node_id)]]

    def rows(self):
        """Iterate ``(id, feature_vector, label_or_None)`` — mapper input."""
        for p, i in enumerate(self.ids):
            label = None if self.labels is None else self.labels[p]
            yield int(i), self.features[p], label

    def select(self, positions) -> "NodeTable":
        """New table with only the rows at ``positions`` (keeps id values)."""
        positions = np.asarray(positions, dtype=np.int64)
        labels = None if self.labels is None else self.labels[positions]
        types = None if self.types is None else self.types[positions]
        return NodeTable(self.ids[positions], self.features[positions], labels, types)

    def type_of(self, node_id: int) -> int | None:
        return None if self.types is None else int(self.types[self._pos[int(node_id)]])


@dataclass
class EdgeTable:
    """Columnar table of directed edges ``src -> dst`` with features/weights.

    ``Av,u > 0`` in the paper means an edge *from u to v*; here an edge row
    ``(src=u, dst=v)`` is exactly that edge, so ``dst``'s in-edge neighbors
    are the ``src`` values of rows with that ``dst``.
    """

    src: np.ndarray
    dst: np.ndarray
    features: np.ndarray | None = None
    weights: np.ndarray | None = None
    types: np.ndarray | None = None
    """Optional ``(m,)`` int64 edge-type ids (heterogeneous graphs)."""
    labels: np.ndarray | None = None
    """Optional ``(m,)`` int64 per-edge class ids for edge classification;
    ``-1`` means unlabeled."""

    def __post_init__(self):
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError(
                f"src/dst must be equal-length 1-D arrays, got {self.src.shape} / {self.dst.shape}"
            )
        if self.features is not None:
            self.features = _as_2d_float32(self.features, len(self.src), "edge features")
        if self.weights is None:
            self.weights = np.ones(len(self.src), dtype=np.float32)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float32)
            if self.weights.shape != self.src.shape:
                raise ValueError("edge weights must align with src/dst")
            if np.any(self.weights <= 0):
                raise ValueError("edge weights must be positive (A_{v,u} > 0)")
        if self.types is not None:
            self.types = np.asarray(self.types, dtype=np.int64)
            if self.types.shape != self.src.shape:
                raise ValueError("edge types must align with src/dst")
            if len(self.types) and self.types.min() < 0:
                raise ValueError("edge type ids must be non-negative")
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=np.int64)
            if self.labels.shape != self.src.shape:
                raise ValueError("edge labels must align with src/dst")

    def __len__(self) -> int:
        return len(self.src)

    @property
    def feature_dim(self) -> int:
        return 0 if self.features is None else self.features.shape[1]

    def rows(self):
        """Iterate ``(src, dst, feature_or_None, weight)`` — mapper input."""
        for p in range(len(self.src)):
            feat = None if self.features is None else self.features[p]
            yield int(self.src[p]), int(self.dst[p]), feat, float(self.weights[p])

    def select(self, positions) -> "EdgeTable":
        positions = np.asarray(positions, dtype=np.int64)
        feats = None if self.features is None else self.features[positions]
        types = None if self.types is None else self.types[positions]
        labels = None if self.labels is None else self.labels[positions]
        return EdgeTable(
            self.src[positions],
            self.dst[positions],
            feats,
            self.weights[positions],
            types,
            labels,
        )

    def coalesce(self) -> "EdgeTable":
        """Collapse duplicate ``(src, dst)`` rows into one edge.

        The paper's ``A_{v,u}`` is a single weighted matrix entry, so
        parallel edges are summed into one weight (interaction counts add);
        the first occurrence's feature vector is kept.  GraphFlat and
        GraphInfer coalesce their input so both pipelines see the identical
        adjacency — a prerequisite for the unbiased-inference guarantee.
        """
        if len(self.src) == 0:
            return self
        pair = np.stack([self.src, self.dst], axis=1)
        unique_pair, first_idx, inverse = np.unique(
            pair, axis=0, return_index=True, return_inverse=True
        )
        if len(unique_pair) == len(self.src):
            return self
        weights = np.zeros(len(unique_pair), dtype=np.float32)
        np.add.at(weights, inverse, self.weights)
        feats = None if self.features is None else self.features[first_idx]
        types = None if self.types is None else self.types[first_idx]
        labels = None if self.labels is None else self.labels[first_idx]
        return EdgeTable(unique_pair[:, 0], unique_pair[:, 1], feats, weights, types, labels)

    @staticmethod
    def symmetrize(table: "EdgeTable") -> "EdgeTable":
        """Treat an undirected edge list as directed: add the reversed copy.

        The paper decomposes each undirected edge ``(v, u)`` into two directed
        edges with the same edge feature (§2.1).  Existing direction
        duplicates are kept — weights express multiplicity.
        """
        feats = None
        if table.features is not None:
            feats = np.concatenate([table.features, table.features], axis=0)
        types = None
        if table.types is not None:
            types = np.concatenate([table.types, table.types])
        labels = None
        if table.labels is not None:
            labels = np.concatenate([table.labels, table.labels])
        return EdgeTable(
            np.concatenate([table.src, table.dst]),
            np.concatenate([table.dst, table.src]),
            feats,
            np.concatenate([table.weights, table.weights]),
            types,
            labels,
        )
