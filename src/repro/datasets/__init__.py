"""Offline dataset stand-ins — substrate **S11**.

No network access is available, so the three evaluation datasets are
replaced by synthetic generators that match the published statistics and —
more importantly — the *structural phenomena* each experiment depends on:

* :func:`cora_like` — citation-style graph: 2708 nodes, 1433-d sparse binary
  features, 7 classes, 140/500/1000 split (Kipf & Welling protocol);
* :func:`ppi_like` — 24 independent protein graphs, 50-d features, 121
  labels (multi-label), split 20/2/2 graphs (GraphSAGE protocol);
* :func:`uug_like` — power-law social graph with hub nodes, 2 classes and a
  small labeled fraction: a scaled-down User-User Graph.  Hubs are what
  GraphFlat's re-indexing/sampling exists for (§3.2.2).

Edge-task and heterogeneous generators (the task-plugin scenarios):

* :func:`labeled_edges_like` — planted communities with per-edge labels,
  for link prediction and edge classification;
* :func:`typed_like` — a user/item typed graph with typed edges and a
  learnable per-edge target.

All generators are seeded and pure — same seed, same dataset.
"""

from repro.datasets.base import GraphDataset
from repro.datasets.synthetic import (
    cora_like,
    labeled_edges_like,
    ppi_like,
    typed_like,
    uug_like,
)
from repro.datasets.io import read_edge_table, read_node_table, write_edge_table, write_node_table

__all__ = [
    "GraphDataset",
    "cora_like",
    "labeled_edges_like",
    "ppi_like",
    "typed_like",
    "uug_like",
    "read_node_table",
    "write_node_table",
    "read_edge_table",
    "write_edge_table",
]
