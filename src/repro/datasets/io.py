"""TSV readers/writers for node and edge tables.

This is the "raw input on the DFS" format of §3.2.1: GraphFlat takes "a node
table and an edge table" — here, tab-separated files that upstream jobs (or
the example scripts) produce.  Feature vectors are comma-joined floats so a
row stays one line; labels may be an int, a comma-joined indicator vector,
or absent.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.tables import EdgeTable, NodeTable

__all__ = ["write_node_table", "read_node_table", "write_edge_table", "read_edge_table"]


def _fmt_vec(vec: np.ndarray) -> str:
    return ",".join(repr(float(x)) for x in vec)


def _parse_vec(text: str) -> np.ndarray:
    """Comma-joined floats -> float32 vector (``np.fromstring`` emitted a
    ``DeprecationWarning`` per row; ``np.array`` over the split is the
    supported — and faster — replacement)."""
    return np.array(text.split(","), dtype=np.float32)


def write_node_table(path: str | Path, nodes: NodeTable) -> None:
    """Rows: ``id \\t feature_csv [\\t label]``."""
    with open(path, "w", encoding="utf-8") as fh:
        for node_id, feat, label in nodes.rows():
            parts = [str(node_id), _fmt_vec(feat)]
            if label is not None:
                if np.ndim(label) == 0:
                    parts.append(str(int(label)))
                else:
                    parts.append(_fmt_vec(np.asarray(label)))
            fh.write("\t".join(parts) + "\n")


def read_node_table(path: str | Path) -> NodeTable:
    ids, feats, labels = [], [], []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{line_no}: expected 2-3 columns, got {len(parts)}")
            ids.append(int(parts[0]))
            feats.append(_parse_vec(parts[1]))
            if len(parts) == 3:
                if "," in parts[2]:
                    labels.append(_parse_vec(parts[2]))
                else:
                    labels.append(int(parts[2]))
    label_arr = np.asarray(labels) if labels else None
    if label_arr is not None and len(label_arr) != len(ids):
        raise ValueError(f"{path}: some rows have labels and some do not")
    return NodeTable(np.asarray(ids), np.vstack(feats), label_arr)


def write_edge_table(path: str | Path, edges: EdgeTable) -> None:
    """Rows: ``src \\t dst \\t weight [\\t feature_csv]``."""
    with open(path, "w", encoding="utf-8") as fh:
        for src, dst, feat, weight in edges.rows():
            parts = [str(src), str(dst), repr(float(weight))]
            if feat is not None:
                parts.append(_fmt_vec(feat))
            fh.write("\t".join(parts) + "\n")


def read_edge_table(path: str | Path) -> EdgeTable:
    src, dst, weights, feats = [], [], [], []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) not in (3, 4):
                raise ValueError(f"{path}:{line_no}: expected 3-4 columns, got {len(parts)}")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            weights.append(float(parts[2]))
            if len(parts) == 4:
                feats.append(_parse_vec(parts[3]))
    if feats and len(feats) != len(src):
        raise ValueError(f"{path}: some rows have edge features and some do not")
    return EdgeTable(
        np.asarray(src),
        np.asarray(dst),
        np.vstack(feats) if feats else None,
        np.asarray(weights, dtype=np.float32),
    )
