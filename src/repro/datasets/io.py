"""TSV readers/writers for node and edge tables.

This is the "raw input on the DFS" format of §3.2.1: GraphFlat takes "a node
table and an edge table" — here, tab-separated files that upstream jobs (or
the example scripts) produce.  Feature vectors are comma-joined floats so a
row stays one line; labels may be an int, a comma-joined indicator vector,
or absent.

Heterogeneous and edge-task extensions ride as trailing ``key=value``
columns so every pre-extension file parses unchanged:

* node rows may end with ``type=<int>`` (node type for typed graphs);
* edge rows may end with ``label=<int>`` (edge-classification target) and/or
  ``type=<int>`` (edge type), in any order after the positional columns.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.tables import EdgeTable, NodeTable

__all__ = ["write_node_table", "read_node_table", "write_edge_table", "read_edge_table"]


def _fmt_vec(vec: np.ndarray) -> str:
    return ",".join(repr(float(x)) for x in vec)


def _parse_vec(text: str) -> np.ndarray:
    """Comma-joined floats -> float32 vector (``np.fromstring`` emitted a
    ``DeprecationWarning`` per row; ``np.array`` over the split is the
    supported — and faster — replacement)."""
    return np.array(text.split(","), dtype=np.float32)


def _split_kv(parts: list[str], path, line_no: int, allowed: tuple[str, ...]):
    """Split trailing ``key=value`` columns off a row.

    Returns ``(positional_parts, kv_dict)``; unknown keys raise so typos are
    reported instead of silently dropped."""
    kv: dict[str, int] = {}
    while parts and "=" in parts[-1] and not parts[-1].startswith("-"):
        key, _, value = parts[-1].partition("=")
        if key not in allowed:
            raise ValueError(
                f"{path}:{line_no}: unknown column {parts[-1]!r} "
                f"(allowed keys: {allowed})"
            )
        if key in kv:
            raise ValueError(f"{path}:{line_no}: duplicate column {key!r}")
        kv[key] = int(value)
        parts = parts[:-1]
    return parts, kv


def write_node_table(path: str | Path, nodes: NodeTable) -> None:
    """Rows: ``id \\t feature_csv [\\t label] [\\t type=<int>]``."""
    with open(path, "w", encoding="utf-8") as fh:
        for row, (node_id, feat, label) in enumerate(nodes.rows()):
            parts = [str(node_id), _fmt_vec(feat)]
            if label is not None:
                if np.ndim(label) == 0:
                    parts.append(str(int(label)))
                else:
                    parts.append(_fmt_vec(np.asarray(label)))
            if nodes.types is not None:
                parts.append(f"type={int(nodes.types[row])}")
            fh.write("\t".join(parts) + "\n")


def read_node_table(path: str | Path) -> NodeTable:
    ids, feats, labels, types = [], [], [], []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts, kv = _split_kv(line.split("\t"), path, line_no, ("type",))
            if len(parts) not in (2, 3):
                raise ValueError(f"{path}:{line_no}: expected 2-3 columns, got {len(parts)}")
            ids.append(int(parts[0]))
            feats.append(_parse_vec(parts[1]))
            if len(parts) == 3:
                if "," in parts[2]:
                    labels.append(_parse_vec(parts[2]))
                else:
                    labels.append(int(parts[2]))
            if "type" in kv:
                types.append(kv["type"])
    label_arr = np.asarray(labels) if labels else None
    if label_arr is not None and len(label_arr) != len(ids):
        raise ValueError(f"{path}: some rows have labels and some do not")
    type_arr = np.asarray(types, dtype=np.int64) if types else None
    if type_arr is not None and len(type_arr) != len(ids):
        raise ValueError(f"{path}: some rows have node types and some do not")
    return NodeTable(np.asarray(ids), np.vstack(feats), label_arr, types=type_arr)


def write_edge_table(path: str | Path, edges: EdgeTable) -> None:
    """Rows: ``src \\t dst \\t weight [\\t feature_csv] [\\t label=<int>]
    [\\t type=<int>]``."""
    with open(path, "w", encoding="utf-8") as fh:
        for row, (src, dst, feat, weight) in enumerate(edges.rows()):
            parts = [str(src), str(dst), repr(float(weight))]
            if feat is not None:
                parts.append(_fmt_vec(feat))
            if edges.labels is not None:
                parts.append(f"label={int(edges.labels[row])}")
            if edges.types is not None:
                parts.append(f"type={int(edges.types[row])}")
            fh.write("\t".join(parts) + "\n")


def read_edge_table(path: str | Path) -> EdgeTable:
    src, dst, weights, feats, labels, types = [], [], [], [], [], []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts, kv = _split_kv(line.split("\t"), path, line_no, ("label", "type"))
            if len(parts) not in (3, 4):
                raise ValueError(f"{path}:{line_no}: expected 3-4 columns, got {len(parts)}")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            weights.append(float(parts[2]))
            if len(parts) == 4:
                feats.append(_parse_vec(parts[3]))
            if "label" in kv:
                labels.append(kv["label"])
            if "type" in kv:
                types.append(kv["type"])
    if feats and len(feats) != len(src):
        raise ValueError(f"{path}: some rows have edge features and some do not")
    if labels and len(labels) != len(src):
        raise ValueError(f"{path}: some rows have edge labels and some do not")
    if types and len(types) != len(src):
        raise ValueError(f"{path}: some rows have edge types and some do not")
    return EdgeTable(
        np.asarray(src),
        np.asarray(dst),
        np.vstack(feats) if feats else None,
        np.asarray(weights, dtype=np.float32),
        labels=np.asarray(labels, dtype=np.int64) if labels else None,
        types=np.asarray(types, dtype=np.int64) if types else None,
    )
