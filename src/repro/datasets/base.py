"""``GraphDataset`` — node/edge tables + task metadata + splits."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.attributed import AttributedGraph
from repro.graph.tables import EdgeTable, NodeTable

__all__ = ["GraphDataset"]

_TASKS = ("multiclass", "multilabel", "binary")


@dataclass
class GraphDataset:
    """A complete supervised graph-learning task.

    ``splits`` maps ``"train" | "val" | "test"`` to arrays of node *ids*
    (not positions).  ``graph_ids`` marks the component for multi-graph
    datasets (PPI); ``None`` for single-graph datasets.
    """

    name: str
    nodes: NodeTable
    edges: EdgeTable
    splits: dict[str, np.ndarray]
    task: str
    num_classes: int
    graph_ids: np.ndarray | None = None
    _graph: AttributedGraph | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if self.task not in _TASKS:
            raise ValueError(f"task must be one of {_TASKS}, got {self.task!r}")
        for part in ("train", "val", "test"):
            if part not in self.splits:
                raise ValueError(f"missing split {part!r}")
            self.splits[part] = np.asarray(self.splits[part], dtype=np.int64)
        all_ids = np.concatenate([self.splits[p] for p in ("train", "val", "test")])
        if len(np.unique(all_ids)) != len(all_ids):
            raise ValueError("train/val/test splits overlap")

    # ------------------------------------------------------------ shortcuts
    @property
    def train_ids(self) -> np.ndarray:
        return self.splits["train"]

    @property
    def val_ids(self) -> np.ndarray:
        return self.splits["val"]

    @property
    def test_ids(self) -> np.ndarray:
        return self.splits["test"]

    @property
    def feature_dim(self) -> int:
        return self.nodes.feature_dim

    def labels_of(self, node_ids) -> np.ndarray:
        """Labels aligned with ``node_ids`` (int vector or indicator matrix)."""
        if self.nodes.labels is None:
            raise ValueError(f"dataset {self.name!r} has no labels")
        return self.nodes.labels[self.nodes.index_of(node_ids)]

    def to_graph(self) -> AttributedGraph:
        """Materialise (and cache) the in-memory graph — baselines/tests."""
        if self._graph is None:
            self._graph = AttributedGraph(self.nodes, self.edges)
        return self._graph

    def summary(self) -> dict:
        """Table 2-style statistics."""
        return {
            "name": self.name,
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "feature_dim": self.feature_dim,
            "classes": self.num_classes,
            "task": self.task,
            "train": len(self.train_ids),
            "val": len(self.val_ids),
            "test": len(self.test_ids),
            "graphs": 1 if self.graph_ids is None else int(self.graph_ids.max()) + 1,
        }
