"""Seeded synthetic generators for the paper's three datasets.

Each generator plants enough class-correlated structure (homophilous edges +
class-conditional features) that GNNs beat feature-only models, which is the
property the effectiveness experiments (Table 3) actually exercise.  Degree
distributions differ deliberately: ``cora_like``/``ppi_like`` are roughly
homogeneous while ``uug_like`` is power-law with explicit hub nodes, because
hubs are what GraphFlat's re-indexing and sampling exist for.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import GraphDataset
from repro.graph.tables import EdgeTable, NodeTable
from repro.utils.rng import new_rng

__all__ = ["cora_like", "labeled_edges_like", "ppi_like", "typed_like", "uug_like"]


def _homophilous_edges(
    rng: np.random.Generator,
    communities: np.ndarray,
    num_edges: int,
    intra_prob: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample undirected edge endpoints with community homophily.

    Each edge picks a source uniformly; with probability ``intra_prob`` the
    destination comes from the same community, otherwise from anywhere.
    Self-loops and duplicate pairs are removed (the count lands slightly
    below ``num_edges``, like real crawled graphs).
    """
    n = len(communities)
    order = np.argsort(communities, kind="stable")
    sorted_comm = communities[order]
    starts = np.searchsorted(sorted_comm, np.arange(communities.max() + 1))
    ends = np.searchsorted(sorted_comm, np.arange(communities.max() + 1), side="right")

    src = rng.integers(0, n, num_edges)
    intra = rng.random(num_edges) < intra_prob
    dst = rng.integers(0, n, num_edges)
    comm = communities[src[intra]]
    span = ends[comm] - starts[comm]
    dst_intra = order[starts[comm] + (rng.random(intra.sum()) * span).astype(np.int64)]
    dst[intra] = dst_intra

    keep = src != dst
    src, dst = src[keep], dst[keep]
    pair = np.stack([np.minimum(src, dst), np.maximum(src, dst)], axis=1)
    _, unique_idx = np.unique(pair, axis=0, return_index=True)
    unique_idx.sort()
    return src[unique_idx], dst[unique_idx]


def _split_ids(
    rng: np.random.Generator, ids: np.ndarray, sizes: tuple[int, int, int]
) -> dict[str, np.ndarray]:
    train_n, val_n, test_n = sizes
    if train_n + val_n + test_n > len(ids):
        raise ValueError("splits larger than available labeled ids")
    perm = rng.permutation(ids)
    return {
        "train": np.sort(perm[:train_n]),
        "val": np.sort(perm[train_n : train_n + val_n]),
        "test": np.sort(perm[train_n + val_n : train_n + val_n + test_n]),
    }


def cora_like(
    seed: int = 0,
    num_nodes: int = 2708,
    num_edges: int = 5429,
    feature_dim: int = 1433,
    num_classes: int = 7,
    intra_prob: float = 0.9,
    words_per_class: int = 60,
    words_per_doc: int = 18,
) -> GraphDataset:
    """Citation-network stand-in for Cora (Sen et al. 2008).

    Nodes are "papers" with sparse binary bag-of-words features; each class
    owns a block of ``words_per_class`` topic words that its papers sample
    preferentially, and citations are homophilous.  Split sizes follow the
    standard semi-supervised protocol: 140 train / 500 val / 1000 test.
    """
    rng = new_rng(seed)
    labels = rng.integers(0, num_classes, num_nodes)

    features = np.zeros((num_nodes, feature_dim), dtype=np.float32)
    shared_words = num_classes * words_per_class
    for v in range(num_nodes):
        own = labels[v] * words_per_class + rng.integers(0, words_per_class, words_per_doc)
        noise_count = max(1, words_per_doc // 3)
        noise = shared_words + rng.integers(0, max(feature_dim - shared_words, 1), noise_count)
        features[v, own] = 1.0
        features[v, np.minimum(noise, feature_dim - 1)] = 1.0

    src, dst = _homophilous_edges(rng, labels, num_edges, intra_prob)
    edges = EdgeTable.symmetrize(EdgeTable(src, dst))

    ids = np.arange(num_nodes, dtype=np.int64)
    nodes = NodeTable(ids, features, labels)
    # The canonical 140/500/1000 split, scaled down proportionally when a
    # smaller graph is requested (tests use miniature instances).
    ratio = min(1.0, num_nodes / 2708)
    sizes = (max(int(140 * ratio), 7), max(int(500 * ratio), 7), max(int(1000 * ratio), 7))
    splits = _split_ids(rng, ids, sizes)
    return GraphDataset("cora-like", nodes, edges, splits, "multiclass", num_classes)


def ppi_like(
    seed: int = 0,
    num_graphs: int = 24,
    nodes_per_graph: int = 2373,
    avg_degree: int = 14,
    feature_dim: int = 50,
    num_labels: int = 121,
    latent_dim: int = 12,
    scale: float = 1.0,
) -> GraphDataset:
    """Multi-graph multi-label stand-in for PPI (Zitnik & Leskovec 2017).

    24 independent "tissue" graphs; each node has a latent functional
    profile that drives both its 50-d features and its 121 binary labels, so
    labels are predictable from features *and* neighborhood.  Graphs 0-19
    train, 20-21 validate, 22-23 test — the GraphSAGE protocol.  ``scale``
    shrinks nodes-per-graph for cheap benchmarking (§4 Table 4 uses the
    shape, not the absolute size).
    """
    if not 0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    rng = new_rng(seed)
    n_per = max(16, int(nodes_per_graph * scale))

    # Shared projection from latent functional profiles to features/labels so
    # the task transfers across graphs (train graphs -> test graphs).
    w_feat = rng.standard_normal((latent_dim, feature_dim)).astype(np.float32)
    w_label = rng.standard_normal((latent_dim, num_labels)).astype(np.float32)
    label_bias = rng.uniform(-1.2, -0.2, num_labels).astype(np.float32)

    all_ids, all_x, all_y, all_gid = [], [], [], []
    all_src, all_dst = [], []
    next_id = 0
    for g in range(num_graphs):
        communities = rng.integers(0, max(2, latent_dim // 2), n_per)
        centers = rng.standard_normal((communities.max() + 1, latent_dim)).astype(np.float32)
        latent = centers[communities] + 0.6 * rng.standard_normal((n_per, latent_dim)).astype(
            np.float32
        )
        x = latent @ w_feat + 0.8 * rng.standard_normal((n_per, feature_dim)).astype(np.float32)
        logits = latent @ w_label + label_bias
        y = (logits > 0).astype(np.float32)

        m = n_per * avg_degree // 2
        src, dst = _homophilous_edges(rng, communities, m, 0.8)
        ids = np.arange(next_id, next_id + n_per, dtype=np.int64)
        all_ids.append(ids)
        all_x.append(x.astype(np.float32))
        all_y.append(y)
        all_gid.append(np.full(n_per, g, dtype=np.int64))
        all_src.append(src + next_id)
        all_dst.append(dst + next_id)
        next_id += n_per

    nodes = NodeTable(
        np.concatenate(all_ids), np.concatenate(all_x), np.concatenate(all_y)
    )
    edges = EdgeTable.symmetrize(
        EdgeTable(np.concatenate(all_src), np.concatenate(all_dst))
    )
    graph_ids = np.concatenate(all_gid)
    train_graphs = num_graphs - 4
    splits = {
        "train": nodes.ids[graph_ids < train_graphs],
        "val": nodes.ids[(graph_ids >= train_graphs) & (graph_ids < train_graphs + 2)],
        "test": nodes.ids[graph_ids >= train_graphs + 2],
    }
    return GraphDataset(
        "ppi-like", nodes, edges, splits, "multilabel", num_labels, graph_ids=graph_ids
    )


def labeled_edges_like(
    seed: int = 0,
    num_nodes: int = 300,
    num_edges: int = 1200,
    feature_dim: int = 8,
    num_communities: int = 3,
    intra_prob: float = 0.85,
    feature_scale: float = 2.0,
) -> tuple[NodeTable, EdgeTable]:
    """Edge-task stand-in: homophilous communities with per-edge labels.

    Nodes belong to ``num_communities`` planted communities whose membership
    is encoded (noisily) in the features; an edge's label is 1 when it stays
    inside a community and 0 when it crosses, so edge classification is
    learnable from the two endpoint embeddings, and the same structure makes
    observed edges distinguishable from random negative pairs (link
    prediction).  Returns ``(nodes, edges)`` — edge-level tasks derive their
    own targets, so there is no node split.
    """
    rng = new_rng(seed)
    communities = rng.integers(0, num_communities, num_nodes)
    centers = rng.standard_normal((num_communities, feature_dim)).astype(np.float32)
    features = (
        centers[communities] * feature_scale
        + rng.standard_normal((num_nodes, feature_dim)).astype(np.float32)
    )
    src, dst = _homophilous_edges(rng, communities, num_edges, intra_prob)
    labels = (communities[src] == communities[dst]).astype(np.int64)
    ids = np.arange(num_nodes, dtype=np.int64)
    return (
        NodeTable(ids, features),
        EdgeTable(src, dst, labels=labels),
    )


def typed_like(
    seed: int = 0,
    num_users: int = 150,
    num_items: int = 100,
    num_edges: int = 900,
    feature_dim: int = 8,
    num_interests: int = 3,
) -> tuple[NodeTable, EdgeTable]:
    """Typed (heterogeneous) graph stand-in: users and items.

    Node types: 0 = user, 1 = item.  Each user and item carries a latent
    interest; edges are user->item interactions whose *type* records the
    channel (0 = view, 1 = purchase) and whose *label* is 1 when the
    interest matches (a purchase-propensity-style target).  Matching
    interactions are mostly purchases, so the edge type is informative too.
    Returns ``(nodes, edges)``; features encode the interest noisily for
    both node types.
    """
    rng = new_rng(seed)
    n = num_users + num_items
    ids = np.arange(n, dtype=np.int64)
    node_types = np.concatenate(
        [np.zeros(num_users, dtype=np.int64), np.ones(num_items, dtype=np.int64)]
    )
    interest = rng.integers(0, num_interests, n)
    centers = rng.standard_normal((num_interests, feature_dim)).astype(np.float32)
    features = centers[interest] * 2.0 + rng.standard_normal((n, feature_dim)).astype(
        np.float32
    )

    src = rng.integers(0, num_users, num_edges).astype(np.int64)
    dst = (num_users + rng.integers(0, num_items, num_edges)).astype(np.int64)
    pair = np.stack([src, dst], axis=1)
    _, unique_idx = np.unique(pair, axis=0, return_index=True)
    unique_idx.sort()
    src, dst = src[unique_idx], dst[unique_idx]

    match = (interest[src] == interest[dst]).astype(np.int64)
    # Channel correlates with the match: matching pairs mostly purchase.
    purchase_prob = np.where(match == 1, 0.7, 0.15)
    edge_types = (rng.random(len(src)) < purchase_prob).astype(np.int64)
    return (
        NodeTable(ids, features, types=node_types),
        EdgeTable(src, dst, labels=match, types=edge_types),
    )


def uug_like(
    seed: int = 0,
    num_nodes: int = 20_000,
    avg_degree: int = 8,
    feature_dim: int = 64,
    num_hubs: int = 20,
    hub_degree: int = 2_000,
    labeled_fraction: float = 0.3,
    homophily: float = 0.85,
    feature_scale: float = 0.35,
    noise_edge_fraction: float = 0.0,
    zipf_exponent: float = 2.1,
    max_plain_degree: int = 50,
) -> GraphDataset:
    """Scaled-down User-User Graph: power-law social graph with hubs.

    The real UUG has 6.23e9 nodes / 3.38e11 edges (Table 2) — six orders of
    magnitude beyond a laptop.  This generator keeps what the experiments
    need: (a) a heavy-tailed degree distribution with explicit "hub" users
    whose in-degree is orders of magnitude above the median (§3.2.2's
    re-indexing target), (b) two-class node labels with homophilous edges
    and class-conditional features (AUC is meaningful), and (c) a small
    labeled fraction (training set << graph size, §3.1).  Edge weights model
    interaction counts; node ids are non-contiguous hashes, as in
    production.

    Tail-shape knobs (for partitioning/skew experiments):

    * ``zipf_exponent`` — exponent of the Zipf draw behind the plain (non-hub)
      degree distribution.  Lower values fatten the tail: more mid-degree
      nodes, so reducer load is lumpier even before hubs are added.  Must be
      > 1 (the Zipf distribution is undefined at or below 1).
    * ``max_plain_degree`` — cap on plain-node degree weight, keeping the
      tail distinct from the explicit hubs (``num_hubs`` / ``hub_degree``),
      which are stacked on top and recorded in ``ds.hub_ids``.

    Defaults (2.1 / 50) reproduce the historical generator draw-for-draw:
    a given seed yields bit-identical tables with the knobs untouched.
    """
    if zipf_exponent <= 1.0:
        raise ValueError("zipf_exponent must be > 1")
    if max_plain_degree < 1:
        raise ValueError("max_plain_degree must be >= 1")
    rng = new_rng(seed)
    labels = (rng.random(num_nodes) < 0.5).astype(np.int64)

    # Class-conditional features: two overlapping Gaussians whose separation
    # is controlled by ``feature_scale`` (small -> classes only separable
    # through neighborhood aggregation).
    centers = rng.standard_normal((2, feature_dim)).astype(np.float32) * feature_scale
    features = centers[labels] + rng.standard_normal((num_nodes, feature_dim)).astype(np.float32)

    # Power-law degrees via Zipf, then explicit hubs stacked on top.
    deg = rng.zipf(zipf_exponent, num_nodes).astype(np.int64)
    deg = np.minimum(deg, max_plain_degree)
    target_edges = num_nodes * avg_degree // 2
    deg = np.maximum(deg, 1)
    prob = deg / deg.sum()
    src = rng.choice(num_nodes, size=target_edges, p=prob)
    dst = rng.choice(num_nodes, size=target_edges, p=prob)
    # Homophily rewiring: for a fraction of edges, resample dst within class.
    same = np.flatnonzero(rng.random(target_edges) < homophily)
    by_class = [np.flatnonzero(labels == c) for c in (0, 1)]
    cls = labels[src[same]]
    sizes = np.array([len(by_class[0]), len(by_class[1])])
    pick = (rng.random(len(same)) * sizes[cls]).astype(np.int64)
    resampled = np.empty(len(same), dtype=np.int64)
    for c in (0, 1):
        mask = cls == c
        resampled[mask] = by_class[c][pick[mask]]
    dst[same] = resampled

    hubs = rng.choice(num_nodes, size=num_hubs, replace=False)
    hub_src, hub_dst = [], []
    for hub in hubs:
        followers = rng.choice(num_nodes, size=hub_degree, replace=False)
        hub_src.append(followers)
        hub_dst.append(np.full(hub_degree, hub, dtype=np.int64))
    src = np.concatenate([src, *hub_src])
    dst = np.concatenate([dst, *hub_dst])

    keep = src != dst
    src, dst = src[keep], dst[keep]
    weights = rng.integers(1, 6, len(src)).astype(np.float32)

    # Adversarial "noise" interactions: heavy-weight edges between random
    # users regardless of class.  Weighted/mean aggregation is polluted by
    # them; attention (GAT) can learn to ignore them — this is the role
    # different neighbors ("friend, colleague and so on") play in §4.2.1's
    # explanation of GAT's UUG win.
    if noise_edge_fraction > 0:
        n_noise = int(len(src) * noise_edge_fraction)
        noise_src = rng.integers(0, num_nodes, n_noise)
        noise_dst = rng.integers(0, num_nodes, n_noise)
        ok = noise_src != noise_dst
        src = np.concatenate([src, noise_src[ok]])
        dst = np.concatenate([dst, noise_dst[ok]])
        weights = np.concatenate(
            [weights, rng.integers(4, 9, ok.sum()).astype(np.float32)]
        )

    # Non-contiguous "hashed" ids, as produced by industrial ingest.
    ids = np.sort(rng.choice(np.int64(10) * num_nodes * 10, size=num_nodes, replace=False))
    # Coalesce parallel interactions into weighted edges (A_{v,u} is one entry).
    edges = EdgeTable.symmetrize(EdgeTable(ids[src], ids[dst], weights=weights)).coalesce()
    nodes = NodeTable(ids, features, labels)

    labeled = int(num_nodes * labeled_fraction)
    train_n = int(labeled * 0.8)
    val_n = int(labeled * 0.033)
    test_n = labeled - train_n - val_n
    splits = _split_ids(rng, ids, (train_n, val_n, test_n))
    ds = GraphDataset("uug-like", nodes, edges, splits, "binary", 2)
    # Stash hub ids for the GraphFlat load-balance experiments.
    ds.hub_ids = ids[hubs]  # type: ignore[attr-defined]
    return ds
