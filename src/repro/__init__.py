"""AGL reproduction: scalable industrial-purpose graph machine learning.

Full from-scratch reproduction of *AGL: A Scalable System for
Industrial-purpose Graph Machine Learning* (Zhang et al., VLDB 2020),
including every substrate the paper assumes: a MapReduce runtime, a
parameter-server framework, a numpy autograd tensor engine and a GNN model
zoo — see DESIGN.md for the system inventory.

Public entry points:

* :func:`repro.core.graphflat.graph_flat` — generate flattened k-hop
  neighborhoods (GraphFlat, §3.2);
* :class:`repro.core.trainer.GraphTrainer` — train over GraphFeatures with
  pipeline / pruning / edge-partitioning optimizations (§3.3);
* :func:`repro.core.infer.graph_infer` — MapReduce model inference with
  hierarchical model segmentation (§3.4);
* :mod:`repro.datasets` — offline stand-ins for Cora, PPI and the UUG graph;
* :mod:`repro.baselines` — in-memory full-graph comparators (DGL/PyG
  proxies) and the "original inference" baseline of Table 5.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
