"""Edge classification on a typed (heterogeneous) graph.

A user/item bipartite graph with typed nodes (0=user, 1=item) and typed
edges (0=view, 1=purchase): the task is predicting, for each user->item
edge, whether the user's interest matches the item's category.  The typed
columns ride the same tables, shards and wire formats as the homogeneous
pipelines (AGLF/AGLC v2 carry them only when present, so untyped shards
stay byte-identical), and ``task="edge_classification"`` routes every
stage — GraphFlat target extraction, the trainer's pairwise readout
``head(h_src * h_dst)``, and GraphInfer's per-edge logits — through the
task plugin.

Run:  python examples/edge_classification.py
"""

import tempfile

import numpy as np

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.core.trainer import GraphTrainer, TrainerConfig, open_sample_source
from repro.datasets import typed_like
from repro.mapreduce import DistFileSystem
from repro.metrics import accuracy
from repro.nn.gnn import GraphSAGEModel


def main():
    nodes, edges = typed_like(seed=3, num_users=150, num_items=100,
                              num_edges=900, feature_dim=8)
    n_types = int(nodes.types.max()) + 1
    e_types = int(edges.types.max()) + 1
    print(f"typed graph: {len(nodes)} nodes ({n_types} types), "
          f"{len(edges.src)} edges ({e_types} types), "
          f"{int(edges.labels.sum())} positive edge labels")

    with tempfile.TemporaryDirectory() as root:
        fs = DistFileSystem(root)
        flat_config = GraphFlatConfig(
            hops=2, max_neighbors=10, task="edge_classification",
            edge_targets=400, seed=0,
        )
        result = graph_flat(nodes, edges, config=flat_config, fs=fs,
                            dataset_name="ec/train")
        print(f"GraphFlat: {result.num_targets} labeled-edge samples, "
              f"task={result.task}")

        source = open_sample_source(fs, "ec/train")
        model = GraphSAGEModel(nodes.feature_dim, 16, 2, num_layers=2, seed=0)
        trainer = GraphTrainer(
            model,
            TrainerConfig(task="edge_classification", epochs=15,
                          batch_size=32, lr=0.01, seed=0),
        )
        history = trainer.fit(source, val_samples=source)
        print(f"GraphTrainer: loss {history[0]['loss']:.3f} -> "
              f"{history[-1]['loss']:.3f}, "
              f"accuracy {history[-1]['val_metric']:.3f}")

        # Classify every edge of the graph with the segmented-model pipeline
        # and compare against the generator's ground-truth labels.
        infer = graph_infer(
            model, nodes, edges, GraphInferConfig(task="edge_classification"),
        )
        co = edges.coalesce()
        logits = np.stack([infer.scores[i] for i in range(len(co.src))])
        acc = accuracy(logits, co.labels)
        print(f"GraphInfer: classified {len(co.src)} edges, "
              f"accuracy vs ground truth {acc:.3f}")


if __name__ == "__main__":
    main()
