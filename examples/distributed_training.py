"""Distributed training on parameter servers (§3.3, Figures 4/7/8).

Because GraphFlat made every sample self-contained, data-parallel training
needs no graph store: each worker owns a shard of the flattened samples and
talks only to the parameter servers.  This example runs the same model under
the three consistency modes on thread workers, re-runs BSP on real OS
process workers against the shared-memory parameter server (bit-identical
trajectory, zero transport bytes per pull), and then projects cluster-scale
speedup with the calibrated simulator.

Run:  python examples/distributed_training.py
"""

import functools

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.datasets import cora_like
from repro.nn.gnn import GCNModel
from repro.ps import ClusterModel, DistributedConfig, DistributedTrainer, simulate_speedup


def main():
    dataset = cora_like(seed=0, num_nodes=1000, num_edges=3000)
    flat_config = GraphFlatConfig(hops=2, sampling="uniform", max_neighbors=20)
    train = graph_flat(dataset.nodes, dataset.edges, dataset.train_ids, flat_config)
    val = graph_flat(dataset.nodes, dataset.edges, dataset.val_ids, flat_config)

    # functools.partial, not a lambda: process workers need a picklable factory
    factory = functools.partial(
        GCNModel, in_dim=dataset.feature_dim, hidden_dim=16,
        num_classes=dataset.num_classes, num_layers=2, seed=0,
    )
    config = TrainerConfig(batch_size=16, epochs=6, lr=0.02, task="multiclass")

    print("consistency-mode comparison (4 thread workers, 2 server shards):")
    for mode in ("async", "bsp", "ssp"):
        with DistributedTrainer(
            factory, config,
            DistributedConfig(num_workers=4, num_servers=2, mode=mode, staleness=2),
        ) as trainer:
            history = trainer.fit(train.samples, val_samples=val.samples)
            print(
                f"  {mode:<6} loss {history[0]['loss']:.3f} -> {history[-1]['loss']:.3f}, "
                f"val acc {history[-1]['val_metric']:.3f}, "
                f"{trainer.group.total_pushes} gradient pushes"
            )

    # The same BSP run on real OS processes against the shared-memory PS:
    # the gradient computation leaves the GIL behind, the trajectory does not
    # change, and a parameter pull moves zero serialized bytes.
    with DistributedTrainer(
        factory, config,
        DistributedConfig(num_workers=4, num_servers=2, mode="bsp",
                          worker_backend="processes"),
    ) as trainer:
        history = trainer.fit(train.samples, val_samples=val.samples)
        pulls = trainer.pull_stats()
        print(
            f"process workers (shm PS): loss {history[0]['loss']:.3f} -> "
            f"{history[-1]['loss']:.3f}, val acc {history[-1]['val_metric']:.3f}, "
            f"{pulls['refreshes']}/{pulls['pulls']} pulls refreshed, "
            f"{pulls['pull_bytes']} transport bytes"
        )

    # Project to cluster scale: measure one worker's per-batch compute, feed
    # the discrete-event PS model (the Figure 8 methodology).
    solo = GraphTrainer(factory(), config)
    solo.train_epoch(train.samples)
    cluster = ClusterModel(
        batch_compute_seconds=solo.timers["compute"].mean,
        batch_payload_mb=2 * factory().num_parameters() * 4 / 2**20,
        num_servers=10,
    )
    speedups = simulate_speedup(cluster, num_batches=5000, worker_counts=[10, 50, 100])
    print("projected cluster speedup:",
          ", ".join(f"{w} workers -> {s:.0f}x" for w, s in speedups.items()))


if __name__ == "__main__":
    main()
