"""Fraud / risk detection on a social interaction graph — the motivating
industrial workload (§1: "fraud detection", "loan default prediction").

The User-User Graph stand-in has power-law degrees with *hub* accounts
(merchants, bots) whose in-degree is orders of magnitude above the median.
This example exercises the two §3.2.2 mechanisms those hubs require:

* **re-indexing** — hub in-edges are split across reducers (load balance);
* **weighted sampling** — strong interactions are preferentially kept while
  neighborhoods stay bounded;

then trains a GAT (attention decides which interactions matter — §4.2.1's
explanation of GAT's win on UUG) and scores *every* account with GraphInfer.

Run:  python examples/fraud_detection.py
"""

import numpy as np

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.datasets import uug_like
from repro.metrics import roc_auc
from repro.nn.gnn import GATModel


def main():
    graph = uug_like(
        seed=0, num_nodes=3000, avg_degree=8, feature_dim=64,
        num_hubs=6, hub_degree=500,
        feature_scale=0.08, noise_edge_fraction=0.3, homophily=0.9,
    )
    degrees = graph.to_graph().in_degrees()
    print(
        f"graph: {len(graph.nodes)} users, {len(graph.edges)} interactions, "
        f"max in-degree {degrees.max()} vs median {int(np.median(degrees))}"
    )

    # Hub-aware flattening: accounts with >150 in-edges are re-indexed, and
    # at most 10 interactions are kept per account per hop, weighted by
    # interaction strength.
    flat_config = GraphFlatConfig(
        hops=2, sampling="weighted", max_neighbors=10,
        hub_threshold=150, reindex_fanout=8, seed=0,
    )
    train = graph_flat(graph.nodes, graph.edges, graph.train_ids[:600], flat_config)
    print(
        f"GraphFlat: {len(train.hub_nodes)} hub accounts re-indexed, "
        f"largest neighborhood {train.neighborhood_nodes.max()} nodes (bounded)"
    )

    model = GATModel(
        in_dim=graph.feature_dim, hidden_dim=8, num_classes=2,
        num_layers=2, num_heads=2, seed=0,
    )
    trainer = GraphTrainer(
        model, TrainerConfig(batch_size=32, epochs=8, lr=0.01, task="binary")
    )
    trainer.fit(train.samples)
    val = graph_flat(graph.nodes, graph.edges, graph.val_ids, flat_config)
    print(f"validation AUC: {trainer.evaluate(val.samples):.3f}")

    # Score the entire user base (labeled accounts are a small minority —
    # this is where GraphInfer's no-repetition inference pays off).
    scores = graph_infer(
        model, graph.nodes, graph.edges,
        GraphInferConfig(
            sampling="weighted", max_neighbors=10, hub_threshold=150, seed=0
        ),
    ).scores
    risk = {uid: float(s[1] - s[0]) for uid, s in scores.items()}

    test_scores = np.array([risk[int(u)] for u in graph.test_ids])
    print(f"test AUC from full-graph scores: "
          f"{roc_auc(test_scores, graph.labels_of(graph.test_ids)):.3f}")

    riskiest = sorted(risk, key=risk.get, reverse=True)[:5]
    print("5 highest-risk accounts:",
          ", ".join(f"{uid} ({risk[uid]:+.2f})" for uid in riskiest))


if __name__ == "__main__":
    main()
