"""Link prediction end-to-end through the task plugin layer.

The same three AGL pipelines — GraphFlat, GraphTrainer, GraphInfer — run
unchanged; only ``task="link_prediction"`` differs.  GraphFlat derives its
own targets from the edge table: every observed edge is a positive, and a
seeded sampler draws one non-edge negative per positive (deterministic
across retries, backends and re-runs).  Each sample's GraphFeature carries
the ordered ``[src, dst]`` target pair; the trainer scores a pair by the
dot product of the two endpoint embeddings (the dense head is bypassed),
and GraphInfer fans final-layer embeddings out to candidate edges and
applies the same score.

Run:  python examples/link_prediction.py
"""

import tempfile

import numpy as np

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.core.trainer import GraphTrainer, TrainerConfig, open_sample_source
from repro.datasets import labeled_edges_like
from repro.mapreduce import DistFileSystem
from repro.metrics import hits_at_k, roc_auc
from repro.nn.gnn import GraphSAGEModel


def main():
    # Planted communities: observed edges are mostly intra-community, so a
    # GNN can tell them apart from random (negative) pairs.
    nodes, edges = labeled_edges_like(seed=7, num_nodes=200, num_edges=900,
                                      feature_dim=8)

    with tempfile.TemporaryDirectory() as root:
        fs = DistFileSystem(root)
        flat_config = GraphFlatConfig(
            hops=2, max_neighbors=8, task="link_prediction",
            edge_targets=200, negative_ratio=1, seed=0,
        )
        result = graph_flat(nodes, edges, config=flat_config, fs=fs,
                            dataset_name="lp/train")
        print(f"GraphFlat: {result.num_targets} edge samples "
              f"(half positives, half seeded negatives), task={result.task}")

        source = open_sample_source(fs, "lp/train")
        model = GraphSAGEModel(nodes.feature_dim, 16, 2, num_layers=2, seed=0)
        trainer = GraphTrainer(
            model,
            TrainerConfig(task="link_prediction", epochs=12, batch_size=32,
                          lr=0.01, seed=0),
        )
        history = trainer.fit(source, val_samples=source)
        print(f"GraphTrainer: loss {history[0]['loss']:.3f} -> "
              f"{history[-1]['loss']:.3f}, AUC {history[-1]['val_metric']:.3f}, "
              f"hits@20 {trainer.evaluate(source, metric='hits@20'):.3f}")

        # Score fresh candidate pairs with the segmented-model pipeline: the
        # graph's own edges plus the same number of random non-edges.
        rng = np.random.default_rng(5)
        co = edges.coalesce()
        neg = rng.integers(0, len(nodes), size=(len(co.src), 2)).astype(np.int64)
        neg = neg[neg[:, 0] != neg[:, 1]]
        candidates = np.concatenate(
            [np.stack([co.src, co.dst], axis=1), neg]
        )
        infer = graph_infer(
            model, nodes, edges,
            GraphInferConfig(task="link_prediction"),
            candidates=candidates,
        )
        scores = np.array([infer.scores[i][0] for i in range(len(candidates))])
        labels = np.concatenate([np.ones(len(co.src)), np.zeros(len(neg))])
        print(f"GraphInfer: scored {infer.num_nodes} candidate edges, "
              f"AUC vs random pairs {roc_auc(scores, labels):.3f}, "
              f"hits@50 {hits_at_k(scores, labels, 50):.3f}")


if __name__ == "__main__":
    main()
