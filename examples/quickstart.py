"""Quickstart: the full AGL workflow in ~40 lines of user code.

    GraphFlat  ->  GraphTrainer  ->  GraphInfer      (Figure 1 / Figure 6)

Generates a small citation graph, flattens 2-hop neighborhoods for the
labeled nodes, trains a GCN from the flattened samples, evaluates it, and
finally runs segmented-model inference over *every* node of the graph.

Run:  python examples/quickstart.py
"""

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.datasets import cora_like
from repro.nn.gnn import GCNModel


def main():
    # A Cora-like citation network (2708 papers, 7 topics) — the node table
    # holds features + labels, the edge table holds citations.
    dataset = cora_like(seed=0, num_nodes=800, num_edges=2400)
    print(f"dataset: {dataset.summary()}")

    # --- GraphFlat: k-hop neighborhoods for the labeled nodes -------------
    flat_config = GraphFlatConfig(hops=2, sampling="uniform", max_neighbors=25)
    train = graph_flat(dataset.nodes, dataset.edges, dataset.train_ids, flat_config)
    test = graph_flat(dataset.nodes, dataset.edges, dataset.test_ids, flat_config)
    print(
        f"GraphFlat: {train.num_targets} train GraphFeatures, "
        f"mean {train.neighborhood_nodes.mean():.1f} nodes each"
    )

    # --- GraphTrainer: train a 2-layer GCN from the flattened samples -----
    model = GCNModel(
        in_dim=dataset.feature_dim, hidden_dim=16,
        num_classes=dataset.num_classes, num_layers=2, dropout=0.1, seed=0,
    )
    trainer = GraphTrainer(
        model, TrainerConfig(batch_size=32, epochs=40, lr=0.02, task="multiclass")
    )
    history = trainer.fit(train.samples)
    print(f"training: loss {history[0]['loss']:.3f} -> {history[-1]['loss']:.3f}")
    print(f"test accuracy: {trainer.evaluate(test.samples):.3f}")

    # --- GraphInfer: segmented-model inference over the whole graph -------
    result = graph_infer(
        model, dataset.nodes, dataset.edges,
        GraphInferConfig(sampling="uniform", max_neighbors=25),
    )
    some_node = int(dataset.test_ids[0])
    print(
        f"GraphInfer: scored {result.num_nodes} nodes with "
        f"{result.embedding_computations} embedding computations; "
        f"e.g. node {some_node} -> class "
        f"{int(result.scores[some_node].argmax())}"
    )


if __name__ == "__main__":
    main()
