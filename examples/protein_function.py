"""Inductive multi-label protein-function prediction (the PPI workload).

24 independent "tissue" graphs; the model trains on 20 of them and must
predict 121 functional labels on 2 *unseen* test graphs — the inductive
setting GraphSAGE was designed for.  Because every GraphFeature is a
self-contained subgraph, AGL handles the multi-graph dataset with zero
special casing: nodes of different tissues simply never share edges.

Run:  python examples/protein_function.py
"""

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.datasets import ppi_like
from repro.nn.gnn import GraphSAGEModel


def main():
    dataset = ppi_like(seed=0, scale=0.05)
    print(f"dataset: {dataset.summary()}")

    flat_config = GraphFlatConfig(hops=2, sampling="uniform", max_neighbors=12)
    train = graph_flat(
        dataset.nodes, dataset.edges, dataset.train_ids[:800], flat_config
    )
    test = graph_flat(dataset.nodes, dataset.edges, dataset.test_ids, flat_config)
    print(f"GraphFlat: {train.num_targets} train / {test.num_targets} test features")

    model = GraphSAGEModel(
        in_dim=dataset.feature_dim, hidden_dim=32,
        num_classes=dataset.num_classes,  # 121 labels
        num_layers=2, aggregator="mean", combine="add", seed=0,
    )
    trainer = GraphTrainer(
        model,
        TrainerConfig(batch_size=64, epochs=10, lr=0.01, task="multilabel"),
    )
    history = trainer.fit(train.samples)
    print(f"training: BCE loss {history[0]['loss']:.3f} -> {history[-1]['loss']:.3f}")

    # micro-F1 on proteins from tissues never seen during training
    print(f"inductive test micro-F1: {trainer.evaluate(test.samples):.3f}")

    # Compare aggregators (the GraphSAGE design space)
    for aggregator in ("mean", "max", "sum"):
        model = GraphSAGEModel(
            in_dim=dataset.feature_dim, hidden_dim=32,
            num_classes=dataset.num_classes, num_layers=2,
            aggregator=aggregator, seed=0,
        )
        trainer = GraphTrainer(
            model, TrainerConfig(batch_size=64, epochs=6, lr=0.01, task="multilabel")
        )
        trainer.fit(train.samples)
        print(f"  aggregator={aggregator:<5} test micro-F1 "
              f"{trainer.evaluate(test.samples):.3f}")


if __name__ == "__main__":
    main()
