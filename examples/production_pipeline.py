"""The production wiring: TSV tables -> DFS -> training -> scored output,
with worker failures injected along the way.

This mirrors how AGL runs at Ant (Figure 1): upstream jobs drop node/edge
tables on the distributed file system; GraphFlat materialises sharded
GraphFeature datasets; training workers stream their shard from the DFS;
GraphInfer writes a predictions dataset for downstream consumers.  The
MapReduce runtime here re-executes failed tasks — the output is identical
with failures injected, which is the fault-tolerance property the paper
gets from building on mature infrastructure.

Run:  python examples/production_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.core.infer.pipeline import decode_prediction
from repro.core.trainer import GraphTrainer, TrainerConfig, open_sample_source
from repro.datasets import cora_like, read_edge_table, read_node_table, write_edge_table, write_node_table
from repro.mapreduce import DistFileSystem, FailureInjector, LocalRuntime
from repro.nn.gnn import GCNModel


def main():
    workdir = Path(tempfile.mkdtemp(prefix="agl-"))
    print(f"workspace: {workdir}")

    # --- upstream: raw tables land as TSV files ---------------------------
    dataset = cora_like(seed=0, num_nodes=600, num_edges=1800)
    write_node_table(workdir / "nodes.tsv", dataset.nodes)
    write_edge_table(workdir / "edges.tsv", dataset.edges)
    nodes = read_node_table(workdir / "nodes.tsv")
    edges = read_edge_table(workdir / "edges.tsv")
    print(f"ingested {len(nodes)} nodes / {len(edges)} edges from TSV")

    # --- GraphFlat on a fault-injected runtime, output sharded on the DFS -
    fs = DistFileSystem(workdir / "dfs")
    runtime = LocalRuntime(
        backend="threads",
        max_attempts=8,
        failure_injector=FailureInjector(rate=0.1, seed=42),
    )
    flat_config = GraphFlatConfig(hops=2, max_neighbors=20, num_shards=4)
    graph_flat(nodes, edges, dataset.train_ids, flat_config, runtime, fs, "flat/train")
    graph_flat(nodes, edges, dataset.test_ids, flat_config, runtime, fs, "flat/test")
    print(
        f"GraphFlat: {fs.count_records('flat/train')} train records in "
        f"{fs.num_shards('flat/train')} {fs.layout('flat/train')} shards "
        f"({fs.size_bytes('flat/train') / 2**10:.0f} KiB); "
        f"{runtime.injector.injected} worker failures were injected and retried"
    )

    # --- training runs off the DFS shards through the layout-aware source
    # (mmap'd batch slicing for columnar shards, per-record decoding for
    # row shards — same samples either way) --------------------------------
    model = GCNModel(
        in_dim=nodes.feature_dim, hidden_dim=16,
        num_classes=dataset.num_classes, num_layers=2, seed=0,
    )
    trainer = GraphTrainer(
        model, TrainerConfig(batch_size=32, epochs=30, lr=0.02, task="multiclass")
    )
    trainer.fit(open_sample_source(fs, "flat/train"))
    accuracy = trainer.evaluate(open_sample_source(fs, "flat/test"))
    print(f"test accuracy: {accuracy:.3f}")

    # --- GraphInfer writes the scored dataset for downstream jobs ---------
    graph_infer(
        model, nodes, edges,
        GraphInferConfig(max_neighbors=20, num_shards=4),
        runtime, fs, "scores/latest",
    )
    first = next(iter(fs.read_dataset("scores/latest")))
    node_id, scores = decode_prediction(first)
    print(
        f"GraphInfer: {fs.count_records('scores/latest')} scored nodes on the DFS; "
        f"e.g. node {node_id} -> class {int(scores.argmax())}"
    )
    print(f"datasets on the DFS: {fs.list_datasets()}")


if __name__ == "__main__":
    main()
