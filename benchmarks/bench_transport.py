"""Shuffle-transport grid: local spill vs TCP peering vs shared-dir push.

Same seeded GraphFlat workload per row — only the path the map-side run
bytes travel changes.  ``local`` is the intra-host fast path (reducers
read the spill files in place; zero transport bytes), ``tcp`` fetches each
partition's runs over the frame wire protocol from the shuffle peer
server, and ``shared-dir`` pushes runs into per-partition peer directories
under a shared mount at write time.

Reported per cell: wall clock, bytes spilled, and bytes moved by the
transport (sent/received as accounted in ``RunStats``).  Output equality
is asserted per cell — a transport that changed pipeline bytes would be a
bug, not a data point.  Deterministic by construction (seeded graph,
seeded sampling), so the grid is comparable across CI runs.
"""

from __future__ import annotations

import tempfile
import time

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.datasets import uug_like
from repro.mapreduce import LocalRuntime

from .conftest import emit

WORKER_GRID = (2, 4)
TRANSPORTS = ("local", "tcp", "shared-dir")


def bench_transport_grid():
    ds = uug_like(
        seed=7, num_nodes=2000, avg_degree=8, feature_dim=8, num_hubs=4,
        hub_degree=200,
    )
    targets = ds.train_ids[:100]

    def config(reducers):
        return GraphFlatConfig(
            hops=2, max_neighbors=6, hub_threshold=10**9,
            num_reducers=reducers, seed=0,
        )

    # One serial baseline per cluster width: output shard order is
    # partition-major, so runs only compare within the same reducer count.
    baselines = {
        2 * workers: graph_flat(ds.nodes, ds.edges, targets, config(2 * workers))
        for workers in WORKER_GRID
    }

    lines = [
        "GraphFlat shuffle-transport grid (uug-like 2k nodes, threads "
        "backend, binary spill codec;",
        "bytes moved = RunStats.transport_bytes_sent/received summed over "
        "rounds)",
        "",
        f"  {'workers':>7} {'reducers':>8} {'transport':>10} {'wall':>7} "
        f"{'spilled':>9} {'sent':>9} {'received':>9}",
    ]
    for workers in WORKER_GRID:
        reducers = 2 * workers
        for name in TRANSPORTS:
            with tempfile.TemporaryDirectory() as spill:
                with LocalRuntime(
                    backend="threads", max_workers=workers,
                    shuffle_codec="binary", spill_dir=spill,
                    shuffle_transport=name,
                ) as runtime:
                    start = time.perf_counter()
                    result = graph_flat(
                        ds.nodes, ds.edges, targets, config(reducers), runtime
                    )
                    wall = time.perf_counter() - start
            assert result.samples == baselines[reducers].samples, (
                f"{name}@{workers}w changed pipeline output"
            )
            spilled = sum(rs.shuffle_bytes_written for rs in result.round_stats)
            sent = sum(rs.transport_bytes_sent for rs in result.round_stats)
            received = sum(rs.transport_bytes_received for rs in result.round_stats)
            lines.append(
                f"  {workers:>7} {reducers:>8} {name:>10} {wall:6.2f}s "
                f"{spilled / 2**20:8.2f}M {sent / 2**20:8.2f}M "
                f"{received / 2**20:8.2f}M"
            )
        lines.append("")

    lines.append(
        "output: byte-identical across every cell (asserted); local moves "
        "zero transport bytes by construction."
    )
    emit("transport_grid", "\n".join(lines))
