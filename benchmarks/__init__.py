"""Experiment harness: one bench module per paper table/figure (pytest-benchmark)."""
