"""Table 4 — time-cost per epoch on PPI, standalone mode.

Grid: {GCN, GraphSAGE, GAT} x {1, 2, 3} layers x
{PyG-proxy, DGL-proxy, AGL_base, AGL+pruning, AGL+partition, AGL+both}.

AGL variants train from GraphFlat samples exactly as §3.3 describes (the
pipeline strategy is always on — it is AGL_base's baseline too, per the
paper); the proxies are in-memory full-batch epochs.  pytest-benchmark's
own table carries the raw timings; the summary file prints the Table 4
layout with seconds per epoch.

Shapes to reproduce (§4.2.1): pruning is a no-op at 1 layer but wins at
2-3 layers; partition wins everywhere; both together is best; GAT's dense
attention mutes the partition win; PyG-proxy (scatter) is the slowest
aggregation everywhere.
"""

from __future__ import annotations

import pytest

from repro.baselines import FullGraphConfig, FullGraphTrainer
from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import GraphTrainer, TrainerConfig, open_sample_source
from repro.mapreduce import DistFileSystem
from repro.nn.gnn import build_model

from .conftest import emit

RESULTS: dict[tuple[str, int, str], float] = {}
INGEST_RESULTS: dict[tuple[str, str, int], float] = {}

MODELS = ["gcn", "graphsage", "gat"]
DEPTHS = [1, 2, 3]
VARIANTS = [
    "pyg-proxy",
    "dgl-proxy",
    "agl_base",
    "agl+pruning",
    "agl+partition",
    "agl+pruning&partition",
]

AGL_FLAGS = {
    "agl_base": dict(pruning=False, edge_partition=False),
    "agl+pruning": dict(pruning=True, edge_partition=False),
    "agl+partition": dict(pruning=False, edge_partition=True),
    "agl+pruning&partition": dict(pruning=True, edge_partition=True),
}

HIDDEN = 16
HEADS = 4


def make_model(name: str, in_dim: int, classes: int, depth: int):
    kwargs = dict(
        in_dim=in_dim, hidden_dim=HIDDEN, num_classes=classes,
        num_layers=depth, seed=0,
    )
    if name == "gat":
        kwargs["num_heads"] = HEADS
    return build_model(name, **kwargs)


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("model_name", MODELS)
def bench_table4(benchmark, bench_ppi, ppi_flat_by_hops, model_name, depth, variant):
    ds = bench_ppi
    model = make_model(model_name, ds.feature_dim, ds.num_classes, depth)

    if variant in ("pyg-proxy", "dgl-proxy"):
        aggregation = "scatter" if variant == "pyg-proxy" else "fused"
        trainer = FullGraphTrainer(
            model, ds, FullGraphConfig(lr=0.01, task="multilabel", aggregation=aggregation)
        )
        epoch = trainer.train_epoch
    else:
        samples = ppi_flat_by_hops[depth]
        trainer = GraphTrainer(
            model,
            TrainerConfig(
                batch_size=64, lr=0.01, task="multilabel", seed=0,
                num_partitions=4, **AGL_FLAGS[variant],
            ),
        )
        epoch = lambda: trainer.train_epoch(samples)

    benchmark.pedantic(epoch, rounds=3, warmup_rounds=1, iterations=1)
    RESULTS[(model_name, depth, variant)] = benchmark.stats["mean"]


# --------------------------------------------------------------------------
# Trainer ingest: DFS shard layout x preprocessing pool.  The grid measures
# the *storage-layer* cost the columnar refactor removes: a row epoch must
# varint-decode every sample before vectorizing, a columnar epoch slices
# batches straight out of the mmap'd shard matrices.

INGEST_GRID = [
    ("row", "threads", 1),
    ("row", "threads", 2),
    ("columnar", "threads", 1),
    ("columnar", "threads", 2),
    ("columnar", "processes", 2),
]


@pytest.fixture(scope="session")
def ppi_dfs_by_layout(tmp_path_factory, bench_ppi):
    """The Table 4 PPI training set written to a DFS in both layouts."""
    ds = bench_ppi
    fs = DistFileSystem(tmp_path_factory.mktemp("table4-dfs"))
    for layout in ("row", "columnar"):
        config = GraphFlatConfig(
            hops=2, max_neighbors=15, hub_threshold=10**9, seed=0,
            num_shards=4, dataset_layout=layout,
        )
        graph_flat(
            ds.nodes, ds.edges, ds.train_ids[:600], config, fs=fs,
            dataset_name=f"flat/{layout}",
        )
    return fs


@pytest.mark.parametrize("layout,backend,workers", INGEST_GRID)
def bench_table4_ingest(benchmark, bench_ppi, ppi_dfs_by_layout, layout, backend, workers):
    ds = bench_ppi
    fs = ppi_dfs_by_layout
    model = make_model("gcn", ds.feature_dim, ds.num_classes, 2)
    trainer = GraphTrainer(
        model,
        TrainerConfig(
            batch_size=64, lr=0.01, task="multilabel", seed=0,
            prefetch_backend=backend, prefetch_workers=workers,
        ),
    )

    def epoch_from_dfs():
        # Source opened inside the timed region: the row layout pays its
        # full per-record decode here, columnar only the header parse.
        trainer.train_epoch(open_sample_source(fs, f"flat/{layout}"))

    benchmark.pedantic(epoch_from_dfs, rounds=3, warmup_rounds=1, iterations=1)
    INGEST_RESULTS[(layout, backend, workers)] = benchmark.stats["mean"]


def bench_table4_ingest_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Trainer ingest from DFS shards (GCN-2L/16 on PPI-like, 600 targets,",
        "epoch wall-clock incl. dataset open; shard layout x prefetch pool):",
        "",
        f"{'layout':<10}{'prefetch':<22}{'s/epoch':>10}",
        "-" * 42,
    ]
    for (layout, backend, workers), secs in INGEST_RESULTS.items():
        lines.append(f"{layout:<10}{f'{backend} x{workers}':<22}{secs:>10.3f}")
    row_ref = INGEST_RESULTS.get(("row", "threads", 1))
    col_proc = INGEST_RESULTS.get(("columnar", "processes", 2))
    if row_ref and col_proc:
        lines += [
            "",
            f"columnar + process prefetch vs row + thread prefetch: "
            f"{row_ref / col_proc:.2f}x faster epoch",
            "(row epochs re-decode every record through the varint codec in a",
            "single GIL-bound thread; columnar epochs slice batches out of the",
            "mmap'd shard matrices and shard vectorization across the pool).",
        ]
    emit("table4_training_ingest", "\n".join(lines))


def bench_table4_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    header = f"{'variant':<24}" + "".join(
        f"{m}-{d}L".rjust(10) for m in MODELS for d in DEPTHS
    )
    lines = [
        "Time-cost (s) per epoch on PPI-like (8% scale, 600 train targets),"
        " standalone:",
        header,
        "-" * len(header),
    ]
    for variant in VARIANTS:
        cells = []
        for m in MODELS:
            for d in DEPTHS:
                value = RESULTS.get((m, d, variant))
                cells.append(f"{value:.3f}".rjust(10) if value else "n/a".rjust(10))
        lines.append(f"{variant:<24}" + "".join(cells))
    lines += [
        "",
        "paper shape: +pruning helps only at >=2 layers; +partition helps",
        "everywhere (less for GAT); combined is fastest AGL; scatter (PyG",
        "proxy) slowest aggregation.",
    ]
    emit("table4_training_efficiency", "\n".join(lines))
