"""§4.2.2's memory claim — worker working set vs. whole-graph residency.

"The training task only needs 5.5 GB memory for each worker (550 GB in
total), which is far less than the memory cost for storing the entire graph
(35.5 TB)."

We quantify the same ratio at our scale, analytically over the actual
buffers (array ``nbytes``, no allocator noise):

* whole-graph resident bytes — what a DGL/PyG-style system must hold
  (features + labels + CSR structure + edge weights);
* AGL's peak per-batch working set — the largest vectorized batch
  (X_B + per-layer adjacency + targets) seen during an epoch;
* the flattened dataset on the DFS — AGL's disk trade-off (GraphFeatures
  duplicate overlapping neighborhoods on *disk*, which is the paper's
  explicit design choice: "store those k-hop neighborhoods ... in disk
  without too much cost").
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import BatchPipeline, decode_samples
from repro.nn.gnn import EdgeBlock

from .conftest import emit


def graph_resident_bytes(ds) -> int:
    graph = ds.to_graph()
    total = graph.node_features.nbytes + graph.nodes.ids.nbytes
    if graph.nodes.labels is not None:
        total += graph.nodes.labels.nbytes
    in_ptr, in_src, in_eid = graph.in_csr
    out_ptr, out_dst, out_eid = graph.out_csr
    total += in_ptr.nbytes + in_src.nbytes + in_eid.nbytes
    total += out_ptr.nbytes + out_dst.nbytes + out_eid.nbytes
    total += graph.edges.weights.nbytes
    return total


def block_bytes(block: EdgeBlock) -> int:
    total = block.src.nbytes + block.dst.nbytes + block.weight.nbytes
    if block.edge_feat is not None:
        total += block.edge_feat.nbytes
    return total


def bench_memory_footprint(benchmark, bench_uug):
    ds = bench_uug
    config = GraphFlatConfig(
        hops=2, max_neighbors=10, hub_threshold=200, sampling="weighted", seed=0
    )
    flat = graph_flat(ds.nodes, ds.edges, ds.train_ids[:800], config)
    disk_bytes = sum(len(r) for r in flat.samples)
    samples = decode_samples(flat.samples)
    batches = [samples[i : i + 32] for i in range(0, len(samples), 32)]

    def peak_batch_bytes() -> int:
        peak = 0
        for batch, labels in BatchPipeline(batches, num_layers=2, enabled=False):
            size = batch.x.nbytes + batch.target_index.nbytes
            unique_blocks = {id(b): b for b in batch.layer_blocks}.values()
            size += sum(block_bytes(b) for b in unique_blocks)
            if labels is not None:
                size += labels.nbytes
            peak = max(peak, size)
        return peak

    peak = benchmark.pedantic(peak_batch_bytes, rounds=1, iterations=1)
    resident = graph_resident_bytes(ds)

    lines = [
        f"Memory footprint on uug-like ({len(ds.nodes)} nodes, {len(ds.edges)} edges):",
        "",
        f"  whole graph resident (DGL/PyG style):  {resident / 2**20:9.2f} MiB",
        f"  AGL peak per-batch working set:        {peak / 2**20:9.2f} MiB",
        f"  AGL flattened dataset (on DISK):       {disk_bytes / 2**20:9.2f} MiB",
        "",
        f"  worker-memory ratio: {resident / peak:.0f}x smaller than whole-graph",
        "",
        "paper: 5.5 GB per worker vs 35.5 TB whole graph (~6,500x); the ratio",
        "grows with graph size because the batch working set is O(batch x",
        "neighborhood) regardless of |V|.  The disk-side GraphFeature blow-up",
        "(features duplicated across overlapping neighborhoods) is the",
        "deliberate trade: disk is cheap, worker RAM is the scaling limit.",
    ]
    emit("memory_footprint", "\n".join(lines))


# ---------------------------------------------------------------------------
# Dataflow memory grid: peak reducer buffer + RSS under the external-sorted
# spill path, each cell in a fresh interpreter (see _memory_cell.py).
# ---------------------------------------------------------------------------
_CELL_SCRIPT = Path(__file__).parent / "_memory_cell.py"

GRID = [
    ("graphflat", dict(workers=2, scale=1)),
    ("graphflat", dict(workers=8, scale=1)),
    ("graphflat", dict(workers=8, scale=8)),
    ("train", dict(workers=8, transport="pickle")),
    ("train", dict(workers=8, transport="shm")),
]


def _run_cell(stage: str, **options) -> dict:
    cmd = [sys.executable, str(_CELL_SCRIPT), stage]
    for key, value in options.items():
        cmd += [f"--{key}", str(value)]
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, timeout=1800, check=True
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def bench_dataflow_memory_grid(benchmark):
    """Constant-memory dataflow at 8 workers: as the GraphFlat input grows
    8x, spilled bytes grow with it but the reducer-side buffering
    high-water mark stays pinned at the run bound; the trainer rows compare
    the shm batch handoff against whole-batch pickling."""

    def run_grid():
        return [(stage, opts, _run_cell(stage, **opts)) for stage, opts in GRID]

    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    lines = [
        "Dataflow memory grid (fresh interpreter per cell; processes backend):",
        "",
        f"  {'stage':<10} {'cell':<22} {'wall':>8} {'records':>8} "
        f"{'spill':>10} {'peak-red':>9} {'rss':>9} {'rss-kids':>9}",
    ]
    for stage, opts, cell in cells:
        tag = " ".join(f"{k}={v}" for k, v in opts.items())
        spill = cell.get("spilled_mib")
        peak = cell.get("peak_reducer_buffer_mib")
        lines.append(
            f"  {stage:<10} {tag:<22} {cell['wall_s']:7.2f}s "
            f"{cell['records']:8d} "
            f"{(f'{spill:8.1f}M' if spill is not None else '       -')} "
            f"{(f'{peak:7.2f}M' if peak is not None else '      -')} "
            f"{cell['rss_self_mib']:7.1f}M {cell['rss_children_mib']:7.1f}M"
        )
    flats = [c for s, _, c in cells if s == "graphflat"]
    if len(flats) >= 3:
        growth = flats[2]["spilled_mib"] / max(flats[1]["spilled_mib"], 1e-9)
        buffer_growth = flats[2]["peak_reducer_buffer_mib"] / max(
            flats[1]["peak_reducer_buffer_mib"], 1e-9
        )
        lines += [
            "",
            f"  8x input: spilled bytes grow {growth:.1f}x, peak reducer "
            f"buffer grows {buffer_growth:.2f}x (bounded by the run size, "
            "not the shard).",
        ]
    emit("dataflow_memory_grid", "\n".join(lines))
