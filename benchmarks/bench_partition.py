"""Shuffle-partitioner grid: reducer skew, hash vs degree-aware plan.

Same seeded power-law GraphFlat workload per row — only the partition
function and the cluster width change.  Hubs are left un-reindexed
(``hub_threshold`` above every degree) so the whole hub load rides a single
key: the regime where ``crc32 % n`` piles hubs onto whichever reducer they
happen to collide with, and exactly what the degree-aware plan fixes by
LPT-packing heavy keys across reducers.

Reported per cell: wall clock and the records/bytes skew factor (max
partition load / mean) over the *planner-governed* rounds — every round but
the last, because the final round is pinned to hash partitioning by the
output-order determinism contract (see ``GraphFlatConfig.partitioner``).

Output equality is asserted per cell: a partitioner that changed pipeline
bytes would be a bug, not a data point.  Deterministic by construction
(seeded graph, seeded sampling), so the grid is comparable across CI runs.
"""

from __future__ import annotations

import time

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.datasets import uug_like
from repro.mapreduce import LocalRuntime

from .conftest import emit

WORKER_GRID = (2, 4)
PARTITIONERS = ("hash", "planned")


def _governed_skew(round_stats):
    """Worst and mean skew over the rounds the plan actually governs."""
    governed = round_stats[:-1]
    rec = [rs.records_skew() for rs in governed]
    byt = [rs.bytes_skew() for rs in governed]
    populated = [s for s in rec if s] or [0.0]
    return max(rec), sum(populated) / len(populated), max(byt)


def bench_partition_grid():
    ds = uug_like(
        seed=7, num_nodes=3000, avg_degree=8, feature_dim=8, num_hubs=6,
        hub_degree=400,
    )
    targets = ds.train_ids[:120]

    def config(partitioner, reducers):
        return GraphFlatConfig(
            hops=2, max_neighbors=6, hub_threshold=10**9,
            num_reducers=reducers, seed=0, partitioner=partitioner,
        )

    # One serial hash baseline per cluster width: output shard order is
    # partition-major, so runs only compare within the same reducer count.
    baselines = {
        2 * workers: graph_flat(
            ds.nodes, ds.edges, targets, config("hash", 2 * workers)
        )
        for workers in WORKER_GRID
    }

    lines = [
        "GraphFlat shuffle-partitioner grid "
        "(uug-like 3k nodes, 6 un-reindexed hubs of in-degree ~400,",
        "processes backend, binary spill codec; skew = max partition load / "
        "mean over planner-governed rounds)",
        "",
        f"  {'workers':>7} {'reducers':>8} {'partitioner':>11} "
        f"{'wall':>7} {'rec-skew max':>12} {'rec-skew mean':>13} "
        f"{'byte-skew max':>13}",
    ]
    skew_by_cell = {}
    for workers in WORKER_GRID:
        reducers = 2 * workers
        for name in PARTITIONERS:
            with LocalRuntime(
                backend="processes", max_workers=workers, shuffle_codec="binary"
            ) as runtime:
                start = time.perf_counter()
                result = graph_flat(
                    ds.nodes, ds.edges, targets, config(name, reducers), runtime
                )
                wall = time.perf_counter() - start
            assert result.samples == baselines[reducers].samples, (
                f"{name}@{workers}w changed pipeline output"
            )
            rec_max, rec_mean, byte_max = _governed_skew(result.round_stats)
            skew_by_cell[(name, workers)] = rec_max
            lines.append(
                f"  {workers:>7} {reducers:>8} {name:>11} {wall:6.2f}s "
                f"{rec_max:12.3f} {rec_mean:13.3f} {byte_max:13.3f}"
            )
        lines.append("")

    for workers in WORKER_GRID:
        if workers >= 4:
            assert (
                skew_by_cell[("planned", workers)]
                < skew_by_cell[("hash", workers)]
            ), "degree-aware plan must reduce reducer skew at >= 4 workers"
    lines.append(
        "output: byte-identical across every cell (asserted); the final "
        "round of each run stays hash-partitioned by contract."
    )
    emit("partition_grid", "\n".join(lines))
