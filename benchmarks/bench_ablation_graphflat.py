"""Ablation (§3.2.2) — hub re-indexing and the sampling framework.

Two claims:

1. **Re-indexing** bounds the largest reduce group (a hub's in-edge records
   no longer land on a single reducer), fixing the load imbalance of the
   merge rounds.
2. **Sampling** bounds neighborhood size: without it, hub-adjacent k-hop
   neighborhoods blow up (the OOM risk of §3.2.2); each strategy caps them
   at ~1 + m + m^2 nodes.
"""

from __future__ import annotations

import pytest

from repro.core.graphflat import GraphFlatConfig, graph_flat

from .conftest import emit

REINDEX: dict[str, int] = {}
SAMPLING: dict[str, dict] = {}


@pytest.mark.parametrize("reindex", [False, True], ids=["plain", "reindexed"])
def bench_reindexing_load_balance(benchmark, bench_uug, reindex):
    ds = bench_uug
    config = GraphFlatConfig(
        hops=1,
        max_neighbors=10,
        sampling="uniform",
        hub_threshold=200 if reindex else 10**9,
        reindex_fanout=8,
        num_reducers=8,
    )

    def run():
        return graph_flat(ds.nodes, ds.edges, ds.train_ids[:200], config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    merge_rounds = [s for s in result.round_stats if "reduce" in s.job]
    REINDEX["reindexed" if reindex else "plain"] = max(
        s.max_group_values for s in merge_rounds
    )


@pytest.mark.parametrize("strategy", ["none", "uniform", "weighted", "topk"])
def bench_sampling_neighborhood_size(benchmark, bench_uug, strategy):
    ds = bench_uug
    config = GraphFlatConfig(
        hops=2,
        sampling=strategy if strategy != "none" else "uniform",
        max_neighbors=10**9 if strategy == "none" else 10,
        hub_threshold=200,
        num_reducers=8,
    )

    def run():
        return graph_flat(ds.nodes, ds.edges, ds.train_ids[:120], config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    SAMPLING[strategy] = {
        "mean_nodes": float(result.neighborhood_nodes.mean()),
        "max_nodes": int(result.neighborhood_nodes.max()),
        "max_edges": int(result.neighborhood_edges.max()),
        "seconds": benchmark.stats["mean"],
    }


def bench_graphflat_ablation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Hub re-indexing — largest reduce group (records under one key):"]
    for label in ("plain", "reindexed"):
        if label in REINDEX:
            lines.append(f"  {label:<10} {REINDEX[label]:>8}")
    if {"plain", "reindexed"} <= REINDEX.keys():
        lines.append(
            f"  reduction: {REINDEX['plain'] / max(REINDEX['reindexed'], 1):.1f}x "
            "(bounds reducer skew and OOM, Figure 3)"
        )
    lines += [
        "",
        "Sampling framework — 2-hop neighborhood sizes (120 targets, hubs present):",
        f"  {'strategy':<10}{'mean nodes':>12}{'max nodes':>11}{'max edges':>11}{'flat s':>9}",
    ]
    for strategy in ("none", "uniform", "weighted", "topk"):
        if strategy in SAMPLING:
            s = SAMPLING[strategy]
            lines.append(
                f"  {strategy:<10}{s['mean_nodes']:>12.1f}{s['max_nodes']:>11}"
                f"{s['max_edges']:>11}{s['seconds']:>9.2f}"
            )
    lines.append("")
    lines.append("claim: capped strategies bound size to ~1 + m + m^2 (m=10 -> 111).")
    emit("ablation_graphflat", "\n".join(lines))
