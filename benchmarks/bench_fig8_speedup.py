"""Figure 8 — speedup vs number of workers.

Three parts (see DESIGN.md substitution #2 / #6):

1. **Measured (GraphFlat)**: actual wall-clock of the GraphFlat pipeline
   under the ``processes`` MapReduce backend at 1/2/4/8 workers against the
   serial backend, on the synthetic benchmark graph.  This is the paper's
   Fig. 8 GraphFlat claim run for real: same bytes out, different wall
   clock.  Interpretation requires ``os.cpu_count()`` context — on a
   single-core container every extra worker is pure serialization overhead,
   while the per-round spill pickling parallelizes across cores on real
   hardware.
2. **Measured (training)**: per-batch model-computation time and parameter
   payload are measured on this machine with the real trainer.
3. **Simulated**: the measured costs drive the discrete-event cluster model
   (FCFS parameter-server shards, worker jitter) for 1..100 workers — the
   regime the paper measures on a physical cluster.

Shape to reproduce: near-linear speedup with slope ~0.8 (paper: 78x at 100
workers), slope degrading gracefully as PS shards saturate.
"""

from __future__ import annotations

import functools
import os
import time

import numpy as np

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.mapreduce import LocalRuntime
from repro.nn.gnn import GATModel
from repro.ps import ClusterModel, DistributedConfig, DistributedTrainer, simulate_speedup

from .conftest import emit

WORKER_COUNTS = [1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
FLAT_WORKER_COUNTS = [1, 2, 4]
SHUFFLE_CODECS = ["pickle", "binary"]
DIST_WORKER_COUNTS = [1, 2, 4, 8]
DIST_BACKENDS = ["threads", "processes"]


def bench_fig8_graphflat_worker_scaling(benchmark, bench_uug):
    """GraphFlat wall-clock scaling: serial vs ``processes`` x 1/2/4 workers
    x {pickle, binary} shuffle codec, with bytes-spilled accounting.

    The codec column is the point of the comparison: the process backend's
    dominant cost is shuffle-record serialization, so the flat binary codec
    must cut both bytes spilled and wall-clock at every worker count while
    keeping output byte-identical."""
    ds = bench_uug
    targets = ds.train_ids[:800]
    config = GraphFlatConfig(
        hops=2, max_neighbors=10, hub_threshold=200, sampling="weighted",
        num_reducers=8, seed=0,
    )

    def run_serial():
        return graph_flat(ds.nodes, ds.edges, targets, config)

    baseline = benchmark.pedantic(run_serial, rounds=1, warmup_rounds=1, iterations=1)
    t0 = time.perf_counter()
    serial_result = run_serial()
    serial_seconds = time.perf_counter() - t0

    rows = [("serial", "-", 1, serial_seconds, 1.0, 0.0, True)]
    for codec in SHUFFLE_CODECS:
        for workers in FLAT_WORKER_COUNTS:
            with LocalRuntime(
                backend="processes", max_workers=workers, shuffle_codec=codec
            ) as runtime:
                t0 = time.perf_counter()
                result = graph_flat(ds.nodes, ds.edges, targets, config, runtime)
                seconds = time.perf_counter() - t0
            spilled_mib = sum(
                rs.shuffle_bytes_written for rs in result.round_stats
            ) / 2**20
            rows.append(
                (
                    "processes", codec, workers, seconds,
                    serial_seconds / seconds, spilled_mib,
                    result.samples == serial_result.samples,
                )
            )
    assert baseline.samples == serial_result.samples

    lines = [
        f"host cores: {os.cpu_count()} (speedup is bounded by physical cores;",
        "the per-round spill serialization runs inside the workers and",
        "parallelizes with them, so single-core hosts only see its cost —",
        "which is exactly what the binary codec shrinks)",
        "",
        f"{'backend':>10}{'codec':>8}{'workers':>9}{'seconds':>10}"
        f"{'speedup':>9}{'spill MiB':>11}{'identical':>11}",
        "-" * 68,
    ]
    for backend, codec, workers, seconds, speedup, spilled, identical in rows:
        lines.append(
            f"{backend:>10}{codec:>8}{workers:>9}{seconds:>10.2f}{speedup:>9.2f}"
            f"{spilled:>11.1f}{str(identical):>11}"
        )
    lines += [
        "",
        "acceptance shape: binary < pickle on both seconds and spill MiB at",
        "every worker count; >1.5x speedup at 4 workers on >= 4 cores;",
        "byte-identical output everywhere.",
    ]
    emit("fig8_graphflat_scaling", "\n".join(lines))


def bench_fig8_training_worker_scaling(benchmark, bench_uug, uug_flat):
    """Distributed-training wall-clock: thread vs process workers x
    1/2/4/8, BSP parameter servers.

    The backward pass is the last GIL-bound pipeline stage, so thread
    workers cannot beat one worker no matter the count; process workers
    against the shared-memory PS shard it across cores.  The pull columns
    are the transport story: the local transport copies the full model
    every refresh, the shm transport's refresh is a slab view (0 transport
    bytes).  BSP losses must be identical between backends at equal worker
    counts (asserted).
    """
    ds = bench_uug
    samples = uug_flat["train"]
    factory = functools.partial(
        GATModel, ds.feature_dim, 8, 2, num_layers=2, num_heads=2, seed=0
    )
    config = TrainerConfig(batch_size=32, epochs=2, lr=0.01, task="binary", seed=0)

    def run(backend: str, workers: int):
        with DistributedTrainer(
            factory,
            config,
            DistributedConfig(num_workers=workers, num_servers=2, mode="bsp",
                              worker_backend=backend, seed=0),
        ) as trainer:
            history = trainer.fit(samples)
            return history, trainer.pull_stats()

    benchmark.pedantic(lambda: run("threads", 1), rounds=1, iterations=1)

    rows = []
    losses: dict[tuple[str, int], float] = {}
    base_seconds: dict[str, float] = {}
    for backend in DIST_BACKENDS:
        for workers in DIST_WORKER_COUNTS:
            history, pulls = run(backend, workers)
            # epoch 0 pays one-time worker spawn/import under processes;
            # epoch 1 is the steady state the speedup claim is about
            warm = history[-1]["seconds"]
            base_seconds.setdefault(backend, warm)
            per_pull = pulls["pull_bytes"] / max(pulls["refreshes"], 1)
            rows.append(
                (backend, workers, warm, base_seconds[backend] / warm,
                 history[-1]["loss"], pulls["refreshes"], per_pull)
            )
            losses[(backend, workers)] = history[-1]["loss"]
    for workers in DIST_WORKER_COUNTS:
        assert losses[("threads", workers)] == losses[("processes", workers)], (
            "BSP trajectory must be backend-independent"
        )

    lines = [
        f"host cores: {os.cpu_count()} (process-worker speedup is bounded by",
        "physical cores; thread workers are GIL-bound in the backward pass",
        "at any count, which is precisely the point of this table)",
        "",
        f"{'backend':>10}{'workers':>9}{'epoch s':>10}{'speedup':>9}"
        f"{'bsp loss':>10}{'pulls':>7}{'B/pull':>10}",
        "-" * 65,
    ]
    for backend, workers, seconds, speedup, loss, refreshes, per_pull in rows:
        lines.append(
            f"{backend:>10}{workers:>9}{seconds:>10.2f}{speedup:>9.2f}"
            f"{loss:>10.4f}{refreshes:>7}{per_pull:>10.0f}"
        )
    lines += [
        "",
        "acceptance shape: identical BSP loss at equal worker counts across",
        "backends; B/pull ~0 for the shm transport (view refresh) vs the",
        "full model size for the local copy path; >= 2x epoch speedup at 4",
        "process workers vs 1 on >= 4 physical cores.",
    ]
    emit("fig8_training_worker_scaling", "\n".join(lines))


def bench_fig8(benchmark, bench_uug, uug_flat):
    ds = bench_uug
    samples = uug_flat["train"]
    model = GATModel(ds.feature_dim, 8, 2, num_layers=2, num_heads=2, seed=0)
    trainer = GraphTrainer(
        model, TrainerConfig(batch_size=32, epochs=1, lr=0.01, task="binary", seed=0)
    )

    def one_epoch():
        trainer.train_epoch(samples)

    benchmark.pedantic(one_epoch, rounds=2, warmup_rounds=1, iterations=1)

    num_batches = int(np.ceil(len(samples) / 32))
    compute_per_batch = trainer.timers["compute"].mean
    payload_mb = 2 * model.num_parameters() * 4 / 2**20  # pull + push

    cluster = ClusterModel(
        batch_compute_seconds=compute_per_batch,
        batch_payload_mb=payload_mb,
        num_servers=10,
    )
    # an epoch at paper-relevant batch volume (every worker stays busy even
    # at 100 workers)
    epoch_batches = max(num_batches, 40) * 25
    speedups = simulate_speedup(cluster, epoch_batches, WORKER_COUNTS, seed=0)

    slope = np.polyfit(WORKER_COUNTS, [speedups[w] for w in WORKER_COUNTS], 1)[0]
    lines = [
        "Calibration (measured on this machine):",
        f"  per-batch model computation: {compute_per_batch * 1e3:.1f} ms",
        f"  pull+push payload:           {payload_mb:.3f} MiB "
        f"({model.num_parameters()} parameters)",
        f"  simulated epoch size:        {epoch_batches} batches, 10 PS shards",
        "",
        f"{'workers':>8}{'speedup':>10}{'efficiency':>12}",
        "-" * 30,
    ]
    for w in WORKER_COUNTS:
        lines.append(f"{w:>8}{speedups[w]:>10.1f}{speedups[w] / w:>12.2f}")
    lines += [
        "",
        f"linear-fit slope: {slope:.2f}  (paper: ~0.8, 78x at 100 workers)",
        f"speedup at 100 workers: {speedups[100]:.0f}x",
    ]
    emit("fig8_speedup", "\n".join(lines))
