"""Table 5 — inference efficiency on the User-User Graph.

Compares the **Original** inference module (GraphFlat materialises every
node's GraphFeature, then the full model forwards over each batch of them —
recomputing shared neighborhoods per target) against **GraphInfer** (model
segmentation + message passing: every embedding computed exactly once).

Columns mirror the paper: wall time, CPU time (process seconds — the paper's
core*min analogue), and a memory-cost proxy (bytes of materialised
GraphFeature state vs. bytes of propagated embeddings).  The shape to
reproduce: GraphInfer wins total time by a multiple (paper: ~4x), plus large
CPU (~2x) and memory (~4x) savings, and its embedding-computation count is
exactly |V| * K while the Original's grows with neighborhood overlap.

The second table is the slice-transport axis: GraphInfer under the
``processes`` backend at 1/2/4 workers with model slices shipped either
pickled into every reducer or published once into a shared-memory slab
(``slice_transport="shm"``).  The quantity the slab removes is the
serialized parameter bytes per task attempt — reported per transport —
while output stays byte-identical.
"""

from __future__ import annotations

import pickle
import time

from repro.baselines import OriginalInference
from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, broadcast_slices, graph_infer, segment_model
from repro.core.trainer import decode_samples
from repro.nn.gnn import GATModel

from .conftest import emit

SAMPLING = dict(sampling="weighted", max_neighbors=10, hub_threshold=200, seed=0)


def bench_table5_inference(benchmark, bench_uug):
    ds = bench_uug
    # 2-layer GAT producing 8-dimensional embeddings, as in the paper's
    # UUG inference experiment.
    model = GATModel(ds.feature_dim, 8, 2, num_layers=2, num_heads=2, seed=0)

    measurements: dict[str, dict] = {}

    def run_original():
        wall0, cpu0 = time.perf_counter(), time.process_time()
        flat = graph_flat(
            ds.nodes, ds.edges, None, GraphFlatConfig(hops=2, **SAMPLING)
        )
        flat_wall = time.perf_counter() - wall0
        flat_cpu = time.process_time() - cpu0
        feature_bytes = sum(len(r) for r in flat.samples)

        samples = decode_samples(flat.samples)
        wall1, cpu1 = time.perf_counter(), time.process_time()
        result = OriginalInference(model, batch_size=64).run(samples)
        fwd_wall = time.perf_counter() - wall1
        fwd_cpu = time.process_time() - cpu1
        measurements["original"] = {
            "flat_wall": flat_wall,
            "flat_cpu": flat_cpu,
            "fwd_wall": fwd_wall,
            "fwd_cpu": fwd_cpu,
            "bytes": feature_bytes,
            "embeddings": result.embedding_computations,
            "scores": result.scores,
        }

    def run_graphinfer():
        wall0, cpu0 = time.perf_counter(), time.process_time()
        result = graph_infer(
            model, ds.nodes, ds.edges, GraphInferConfig(**SAMPLING)
        )
        measurements["graphinfer"] = {
            "wall": time.perf_counter() - wall0,
            "cpu": time.process_time() - cpu0,
            # propagated state: one embedding per (node, layer) crossing the
            # shuffle — |V| * K * hidden * 4 bytes, a conservative upper bound
            "bytes": len(ds.nodes) * model.num_layers * 16 * 4,
            "embeddings": result.embedding_computations,
            "scores": result.scores,
        }

    def run_transport_grid():
        """GraphInfer processes backend: slice-transport x worker-count."""
        rows = []
        for workers in (1, 2, 4):
            for transport in ("pickle", "shm"):
                config = GraphInferConfig(
                    backend="processes", num_workers=workers,
                    slice_transport=transport, **SAMPLING,
                )
                wall0 = time.perf_counter()
                result = graph_infer(model, ds.nodes, ds.edges, config)
                rows.append({
                    "workers": workers,
                    "transport": transport,
                    "wall": time.perf_counter() - wall0,
                    "scores": result.scores,
                })
        measurements["transport_grid"] = rows

    def run_both():
        run_original()
        run_graphinfer()
        run_transport_grid()

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    orig = measurements["original"]
    gi = measurements["graphinfer"]
    total_orig_wall = orig["flat_wall"] + orig["fwd_wall"]
    total_orig_cpu = orig["flat_cpu"] + orig["fwd_cpu"]

    lines = [
        f"Inference over uug-like: {len(ds.nodes)} nodes, {len(ds.edges)} edges,",
        "2-layer GAT, 8-dim embeddings, consistent weighted sampling.",
        "",
        f"{'Method':<12}{'Phase':<22}{'Time(s)':>10}{'CPU(s)':>10}"
        f"{'State(MB)':>11}{'EmbComps':>10}",
        "-" * 75,
        f"{'Original':<12}{'GraphFlat':<22}{orig['flat_wall']:>10.2f}"
        f"{orig['flat_cpu']:>10.2f}{orig['bytes'] / 2**20:>11.1f}{'-':>10}",
        f"{'':<12}{'Forward propagation':<22}{orig['fwd_wall']:>10.2f}"
        f"{orig['fwd_cpu']:>10.2f}{'-':>11}{orig['embeddings']:>10}",
        f"{'':<12}{'Total':<22}{total_orig_wall:>10.2f}{total_orig_cpu:>10.2f}"
        f"{orig['bytes'] / 2**20:>11.1f}{orig['embeddings']:>10}",
        f"{'GraphInfer':<12}{'Total':<22}{gi['wall']:>10.2f}{gi['cpu']:>10.2f}"
        f"{gi['bytes'] / 2**20:>11.1f}{gi['embeddings']:>10}",
        "",
        f"speedup (total time):   {total_orig_wall / gi['wall']:.2f}x   (paper: ~4.1x)",
        f"CPU saving:             {100 * (1 - gi['cpu'] / total_orig_cpu):.0f}%"
        "     (paper: ~50%)",
        f"state saving:           {100 * (1 - gi['bytes'] / orig['bytes']):.0f}%"
        "     (paper: ~76% memory)",
        f"embedding computations: {orig['embeddings']} vs {gi['embeddings']}"
        f"  ({orig['embeddings'] / gi['embeddings']:.1f}x repetition removed)",
    ]

    # Per-task slice payloads: what one pickled reducer carries under each
    # transport (the broadcast slab's whole point is the shm column).
    slices = segment_model(model)
    slab, located = broadcast_slices(slices)
    pickled_bytes = max(len(pickle.dumps(s)) for s in slices)
    locator_bytes = max(len(pickle.dumps(s)) for s in located)
    slab.close()

    lines += [
        "",
        "GraphInfer slice transport x process workers "
        "(largest per-task slice payload: "
        f"pickle {pickled_bytes} B, shm locator {locator_bytes} B):",
        "",
        f"{'Workers':<10}{'Transport':<12}{'Time(s)':>10}",
        "-" * 32,
    ]
    for row in measurements["transport_grid"]:
        lines.append(
            f"{row['workers']:<10}{row['transport']:<12}{row['wall']:>10.2f}"
        )

    # sanity: the two modules agree on the scores they produce
    probe = next(iter(gi["scores"]))
    import numpy as np

    assert np.allclose(
        gi["scores"][probe], orig["scores"][probe], rtol=1e-3, atol=1e-4
    ), "GraphInfer and Original disagree — unbiased-inference property violated"
    # and every transport x worker combination is byte-identical to the
    # in-process GraphInfer run
    for row in measurements["transport_grid"]:
        assert set(row["scores"]) == set(gi["scores"])
        assert all(
            np.array_equal(row["scores"][k], v) for k, v in gi["scores"].items()
        ), f"transport {row['transport']} x{row['workers']} diverged"
    emit("table5_inference", "\n".join(lines))
