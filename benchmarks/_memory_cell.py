"""One cell of the dataflow-memory grid, run in a fresh interpreter.

A fresh process per cell makes ``ru_maxrss`` meaningful: the high-water
mark covers exactly this cell's stage (plus its pool children), not
whatever a previous cell allocated.  Invoked by ``bench_memory_footprint``
as ``python benchmarks/_memory_cell.py <stage> [options]``; prints one JSON
object on stdout.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time


def _rss_mib() -> dict:
    # ru_maxrss is KiB on Linux.
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return {"rss_self_mib": self_kb / 1024, "rss_children_mib": child_kb / 1024}


def run_graphflat(args) -> dict:
    from repro.core.graphflat import GraphFlatConfig, graph_flat
    from repro.datasets import cora_like
    from repro.mapreduce import DistFileSystem

    ds = cora_like(
        seed=0, num_nodes=800 * args.scale, num_edges=2400 * args.scale
    )
    targets = ds.nodes.ids[: 400 * args.scale]
    with tempfile.TemporaryDirectory() as tmp:
        config = GraphFlatConfig(
            hops=2,
            max_neighbors=15,
            backend="processes",
            num_workers=args.workers,
            num_reducers=max(args.workers, 4),
            spill_dir=f"{tmp}/spill",
            dataset_sink="reducer",
            # Small runs force real external sorting even at bench scale.
            spill_run_records=2048,
            spill_run_bytes=1 << 18,
        )
        fs = DistFileSystem(f"{tmp}/dfs")
        start = time.perf_counter()
        result = graph_flat(ds.nodes, ds.edges, targets, config, fs=fs, dataset_name="flat")
        wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "records": result.num_targets,
        "peak_reducer_buffer_mib": max(
            rs.peak_reducer_buffer_bytes for rs in result.round_stats
        )
        / 2**20,
        "spilled_mib": sum(rs.shuffle_bytes_written for rs in result.round_stats)
        / 2**20,
        "combined_records": sum(rs.combined_records for rs in result.round_stats),
        **_rss_mib(),
    }


def run_train(args) -> dict:
    from repro.core.graphflat import GraphFlatConfig, graph_flat
    from repro.core.trainer import GraphTrainer, TrainerConfig, decode_samples
    from repro.datasets import cora_like
    from repro.nn.gnn import build_model

    ds = cora_like(seed=0, num_nodes=800 * args.scale, num_edges=2400 * args.scale)
    flat_config = GraphFlatConfig(hops=2, max_neighbors=15)
    samples = decode_samples(
        graph_flat(ds.nodes, ds.edges, ds.train_ids, flat_config).samples
    )
    model = build_model(
        "gcn",
        in_dim=samples[0].graph_feature.feature_dim,
        hidden_dim=16,
        num_classes=int(max(s.label for s in samples)) + 1,
        num_layers=2,
        seed=0,
    )
    trainer = GraphTrainer(
        model,
        TrainerConfig(
            batch_size=32,
            epochs=2,
            pipeline=True,
            prefetch_backend="processes",
            prefetch_workers=args.workers,
            prefetch_transport=args.transport,
        ),
    )
    start = time.perf_counter()
    trainer.fit(samples)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "records": len(samples), **_rss_mib()}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("stage", choices=["graphflat", "train"])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--transport", default="auto")
    args = parser.parse_args()
    out = run_graphflat(args) if args.stage == "graphflat" else run_train(args)
    json.dump(out, sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
