"""Figure 7 — convergence under distributed training.

GAT on uug-like, asynchronous parameter servers, worker counts scaled from
the paper's {1, 10, 20, 30} to {1, 2, 4, 8} (small box), and since PR 4
both worker backends: threads sharing a local PS group, and real OS
processes against the shared-memory PS.  The *dynamics* — stale
asynchronous gradients — are real in both cases; the process axis shows
they survive the transport change.

Shape to reproduce: every (backend, worker-count) pair converges to the
same AUC plateau; more workers need slightly more epochs to get there.
"""

from __future__ import annotations

import functools

import pytest

from repro.core.trainer import TrainerConfig
from repro.nn.gnn import GATModel
from repro.ps import DistributedConfig, DistributedTrainer

from .conftest import emit

WORKER_COUNTS = [1, 2, 4, 8]
BACKENDS = ["threads", "processes"]
EPOCHS = 10
CURVES: dict[tuple[str, int], list[float]] = {}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def bench_fig7(benchmark, bench_uug, uug_flat, backend, workers):
    ds = bench_uug

    def run():
        factory = functools.partial(
            GATModel, ds.feature_dim, 8, 2, num_layers=2, num_heads=2, seed=0
        )
        # lr follows the distributed-SGD convention of scaling *down* with
        # gradient staleness: async updates at W workers are up to W-1 steps
        # stale, so the single-worker lr is divided by sqrt(W) to keep the
        # effective noise comparable (the paper's convergence experiment
        # similarly needs "more training epochs in the distributed mode").
        with DistributedTrainer(
            factory,
            TrainerConfig(
                batch_size=32, epochs=EPOCHS, lr=0.01 / workers**0.5,
                task="binary", seed=0,
            ),
            DistributedConfig(
                num_workers=workers, num_servers=2, mode="async",
                worker_backend=backend,
            ),
        ) as trainer:
            history = trainer.fit(uug_flat["train"], val_samples=uug_flat["val"])
        return [h["val_metric"] for h in history]

    CURVES[(backend, workers)] = benchmark.pedantic(run, rounds=1, iterations=1)


def bench_fig7_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Validation AUC per epoch, async parameter servers "
        f"(workers scaled {WORKER_COUNTS} vs paper's 1/10/20/30; "
        "lr scaled 1/sqrt(W) for staleness).",
        "threads = thread workers on the local PS transport; "
        "processes = OS-process workers on the shared-memory transport.",
    ]
    for backend in BACKENDS:
        header = f"{'epoch':>6}" + "".join(f"{w:>4d} wkr" for w in WORKER_COUNTS)
        lines += ["", f"-- {backend} --", header, "-" * len(header)]
        for epoch in range(EPOCHS):
            row = f"{epoch + 1:>6}"
            for w in WORKER_COUNTS:
                curve = CURVES.get((backend, w), [])
                row += f"{curve[epoch]:>8.3f}" if epoch < len(curve) else f"{'-':>8}"
            lines.append(row)
    finals = {key: curve[-1] for key, curve in CURVES.items() if curve}
    if finals:
        spread = max(finals.values()) - min(finals.values())
        lines += [
            "",
            f"final-AUC spread across backends x worker counts: {spread:.3f} "
            "(paper shape: all counts reach the same plateau)",
        ]
    emit("fig7_convergence", "\n".join(lines))
