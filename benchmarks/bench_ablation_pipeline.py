"""Ablation (§3.3.2, training pipeline) — overlap of preprocessing with
model computation.

Claim: "the two stages operate in a parallel manner ... the total training
time is nearly equal to that of performing model computation only."

What we can verify on a 2-core container:

* **mechanism** — with the pipeline on, preprocessing intervals genuinely
  run concurrently with model-computation intervals (measured via interval
  timers); sequential mode has zero overlap by construction;
* **decomposition** — the paper's regime (preprocessing cheaper than
  compute) holds for the heavy models, so with free cores the pipelined
  epoch tends to max(preprocess, compute) ≈ compute.

What we cannot honestly show here: a large wall-clock win — both cores are
already saturated by the compute stage, so CPython's preprocessing thread
steals cycles rather than using idle ones.  On the paper's cluster each
worker has spare cores and disk-bound reads (which release the GIL), which
is where the claim's speedup materialises.  The report states both.
"""

from __future__ import annotations

import pytest

from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.nn.gnn import GCNModel
from repro.utils.timer import Timer, TimerRegistry

from .conftest import emit

RESULTS: dict[bool, dict[str, float]] = {}


@pytest.mark.parametrize("pipeline", [False, True], ids=["sequential", "pipelined"])
def bench_pipeline_ablation(benchmark, bench_uug, uug_flat, pipeline):
    ds = bench_uug
    samples = uug_flat["train"]
    model = GCNModel(ds.feature_dim, 64, 2, num_layers=2, seed=0)
    trainer = GraphTrainer(
        model,
        TrainerConfig(
            batch_size=32, epochs=1, lr=0.01, task="binary", seed=0,
            pipeline=pipeline, prefetch=4,
        ),
    )
    trainer.timers = TimerRegistry(keep_intervals=True)

    def one_epoch():
        trainer.timers.reset()
        trainer.train_epoch(samples)

    benchmark.pedantic(one_epoch, rounds=3, warmup_rounds=1, iterations=1)
    pre, comp = trainer.timers["preprocess"], trainer.timers["compute"]
    RESULTS[pipeline] = {
        "wall": benchmark.stats["mean"],
        "preprocess": pre.total,
        "compute": comp.total,
        "overlap": Timer.overlap_seconds(pre, comp),
    }


def bench_pipeline_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    seq, par = RESULTS.get(False), RESULTS.get(True)
    lines = ["Two-stage training pipeline ablation (GCN-2L/64, uug-like):", ""]
    for label, r in [("sequential", seq), ("pipelined", par)]:
        if r is None:
            continue
        lines.append(
            f"{label:<12} wall/epoch={r['wall']:.3f}s  "
            f"preprocess={r['preprocess']:.3f}s  compute={r['compute']:.3f}s  "
            f"overlap={r['overlap']:.3f}s"
        )
    if seq and par:
        lines += [
            "",
            f"mechanism: {par['overlap']:.3f}s of preprocessing ran concurrently "
            f"with model computation (sequential mode: {seq['overlap']:.3f}s) — "
            "the two stages do operate in parallel (§3.3.2).",
            f"regime: preprocess/compute = "
            f"{seq['preprocess'] / max(seq['compute'], 1e-9):.2f} "
            "(paper assumes < 1, so the pipeline can hide preprocessing).",
            "hardware note: this container has 2 cores that the compute stage "
            "already saturates, so the overlap does not translate into a "
            "wall-clock win here; on cluster workers with idle cores and "
            "disk-bound reads (GIL-free) it does — see EXPERIMENTS.md A1.",
        ]
    emit("ablation_pipeline", "\n".join(lines))
