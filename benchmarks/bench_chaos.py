"""Chaos soak grid: pipeline overhead and accounting under injected faults.

Every row runs the same seeded GraphFlat / GraphInfer workload on the
processes backend while a :class:`~repro.mapreduce.fault.FaultPlan` injects
one fault kind; the table reports the wall-clock overhead relative to the
fault-free run next to the runtime's own fault-tolerance accounting
(injections, attempts, deadline timeouts, speculative duplicates).  Output
equality with the clean run is asserted per cell — a chaos row that changed
pipeline output is a bug, not a data point.

Deterministic by construction (seeded fault plan, seeded graph), so the
grid is comparable across CI runs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.datasets import uug_like
from repro.mapreduce import FAULT_KINDS, FaultPlan, LocalRuntime
from repro.nn.gnn import build_model

from .conftest import emit

# rate per kind: hang is rarest because each injection costs a full
# task deadline of wall clock; read faults are cheap (one retried read).
CHAOS_RATES = {
    "crash": 0.15,
    "hang": 0.15,
    "slow": 0.15,
    "corrupt-run": 0.3,
    "truncate-run": 0.3,
}
# Must sit comfortably above the honest duration of the slowest task at
# this scale: the deadline only exists to reap injected hangs, and a budget
# tighter than real work perma-fails healthy tasks.
HANG_TIMEOUT_S = 2.0
SLOW_S = 0.05


def _runtime(plan: FaultPlan | None, kind: str | None) -> LocalRuntime:
    return LocalRuntime(
        backend="processes",
        max_workers=2,
        max_attempts=10,
        failure_injector=plan,
        shuffle_codec="binary",
        task_timeout_s=HANG_TIMEOUT_S if kind == "hang" else None,
        speculation_factor=1.5 if kind == "slow" else None,
    )


def _row(stats_list, wall_s, clean_wall_s, plan, kind):
    stats = stats_list
    attempts = sum(rs.map_attempts + rs.reduce_attempts for rs in stats)
    timeouts = sum(rs.timeouts for rs in stats)
    launched = sum(rs.speculative_launched for rs in stats)
    won = sum(rs.speculative_won for rs in stats)
    injected = plan.injected_by_kind[kind] if plan is not None else 0
    overhead = wall_s / clean_wall_s if clean_wall_s else float("nan")
    return (
        f"  {kind or 'clean':<13} {wall_s:6.2f}s {overhead:6.2f}x "
        f"{injected:8d} {attempts:8d} {timeouts:8d} {won:3d}/{launched}"
    )


def bench_chaos_grid():
    ds = uug_like(
        seed=3, num_nodes=1200, avg_degree=6, feature_dim=8, num_hubs=3,
        hub_degree=80,
    )
    targets = ds.train_ids[:60]
    flat_config = GraphFlatConfig(
        hops=2, max_neighbors=6, hub_threshold=40, num_reducers=4, seed=0
    )
    infer_config = GraphInferConfig(
        max_neighbors=6, hub_threshold=40, num_reducers=4, seed=0
    )
    model = build_model(
        "gcn", in_dim=8, hidden_dim=8, num_classes=2, num_layers=2, seed=0
    )

    header = (
        f"  {'fault':<13} {'wall':>7} {'ovhd':>7} {'injected':>8} "
        f"{'attempts':>8} {'timeouts':>8} spec-won"
    )
    sections = []
    for pipeline in ("graphflat", "graphinfer"):
        lines = [f"{pipeline} (processes backend, 2 workers, seeded faults):",
                 "", header]
        clean_wall = None
        clean_out = None
        for kind in (None, *FAULT_KINDS):
            plan = (
                FaultPlan(
                    {kind: CHAOS_RATES[kind]}, seed=0, slow_s=SLOW_S,
                    hang_limit_s=30.0,
                )
                if kind is not None
                else None
            )
            start = time.monotonic()
            with _runtime(plan, kind) as runtime:
                if pipeline == "graphflat":
                    result = graph_flat(ds.nodes, ds.edges, targets, flat_config, runtime)
                    out = result.samples
                else:
                    result = graph_infer(model, ds.nodes, ds.edges, infer_config, runtime)
                    out = result.scores
            wall = time.monotonic() - start
            if kind is None:
                clean_wall, clean_out = wall, out
            else:
                assert plan.injected_by_kind[kind] > 0, (pipeline, kind)
                if pipeline == "graphflat":
                    assert out == clean_out, (pipeline, kind)
                else:
                    assert set(out) == set(clean_out)
                    for node_id, scores in clean_out.items():
                        assert np.array_equal(out[node_id], scores), (kind, node_id)
            lines.append(
                _row(result.round_stats, wall, clean_wall, plan, kind)
            )
        lines.append("")
        lines.append("  every chaos row byte-identical to the clean run")
        sections.append("\n".join(lines))

    emit("chaos_grid", "\n\n".join(sections))


if __name__ == "__main__":
    bench_chaos_grid()
