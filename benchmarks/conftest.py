"""Shared fixtures for the experiment harness.

Datasets and GraphFlat outputs are session-scoped: every benchmark in a run
sees the identical data, and expensive flattening happens once.  Scales are
chosen so the whole suite finishes in minutes on two cores while preserving
each experiment's *shape* (see EXPERIMENTS.md for the scale mapping).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import decode_samples
from repro.datasets import cora_like, ppi_like, uug_like

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Write a paper-style table to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def bench_cora():
    """Full-size Cora-like (the paper's smallest dataset runs unscaled)."""
    return cora_like(seed=0)


@pytest.fixture(scope="session")
def bench_ppi():
    """PPI-like at 8% scale: 24 graphs, ~4.5k nodes, ~53k directed edges."""
    return ppi_like(seed=0, scale=0.08)


@pytest.fixture(scope="session")
def bench_uug():
    """UUG-like at laptop scale: 4k nodes, power-law + hubs, 2 classes.

    Weak raw features + heavy-weight cross-class noise edges make the task
    aggregation-bound, which is what gives GAT its Table 3 margin on the
    real UUG (different neighbor types deserve different weights, §4.2.1).
    """
    return uug_like(seed=0, num_nodes=4000, avg_degree=8, feature_dim=64,
                    num_hubs=8, hub_degree=600, feature_scale=0.06,
                    noise_edge_fraction=0.4, homophily=0.92)


def flatten(ds, targets, hops, max_neighbors=15, hub_threshold=10**9, sampling="uniform"):
    config = GraphFlatConfig(
        hops=hops, max_neighbors=max_neighbors, hub_threshold=hub_threshold,
        sampling=sampling, seed=0,
    )
    return decode_samples(graph_flat(ds.nodes, ds.edges, targets, config).samples)


@pytest.fixture(scope="session")
def ppi_flat_by_hops(bench_ppi):
    """PPI train/test GraphFeatures for k = 1, 2, 3 (Table 4 needs each)."""
    ds = bench_ppi
    train_ids = ds.train_ids[:600]
    return {
        hops: flatten(ds, train_ids, hops, max_neighbors=15) for hops in (1, 2, 3)
    }


@pytest.fixture(scope="session")
def uug_flat(bench_uug):
    """UUG train/val GraphFeatures with hub-aware sampling (2-hop)."""
    ds = bench_uug
    kwargs = dict(hops=2, max_neighbors=10, hub_threshold=200, sampling="weighted")
    return {
        "train": flatten(ds, ds.train_ids[:800], **kwargs),
        "val": flatten(ds, ds.val_ids, **kwargs),
        "test": flatten(ds, ds.test_ids[:400], **kwargs),
    }
