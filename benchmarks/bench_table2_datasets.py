"""Table 2 — dataset summary.

Regenerates the paper's dataset statistics table for the three offline
stand-ins, at both benchmark scale and (for reference) the generators'
full-published-scale parameters.  Benchmarked: generation cost.
"""

from __future__ import annotations

from repro.datasets import cora_like

from .conftest import emit


def bench_table2_dataset_summary(benchmark, bench_cora, bench_ppi, bench_uug):
    # benchmark the one dataset we generate at full published size
    benchmark.pedantic(lambda: cora_like(seed=1), rounds=2, iterations=1)

    rows = [("Indices", "Cora-like", "PPI-like", "UUG-like")]
    summaries = [bench_cora.summary(), bench_ppi.summary(), bench_uug.summary()]
    for label, key in [
        ("#Nodes", "nodes"),
        ("#Edges", "edges"),
        ("#Node feature", "feature_dim"),
        ("#Classes", "classes"),
        ("#Train set", "train"),
        ("#Validation set", "val"),
        ("#Test set", "test"),
        ("#Graphs", "graphs"),
    ]:
        rows.append((label,) + tuple(str(s[key]) for s in summaries))
    width = [max(len(r[i]) for r in rows) for i in range(4)]
    table = "\n".join(
        "  ".join(cell.ljust(width[i]) for i, cell in enumerate(row)) for row in rows
    )
    table += (
        "\n\npaper scale: Cora 2708/5429, PPI 56944/818716 (24 graphs),"
        "\nUUG 6.23e9/3.38e11 — UUG-like keeps the hub/power-law/2-class shape"
        "\nat 4k nodes (substitution #4 in DESIGN.md)."
    )
    emit("table2_datasets", table)
