"""Table 3 — effectiveness of GNNs trained with different systems.

Grid: {Cora-like, PPI-like, UUG-like} x {GCN, GraphSAGE, GAT} x
{PyG-proxy, DGL-proxy, AGL}.  The proxies are the in-memory full-graph
trainers (scatter / fused aggregation, see repro.baselines); AGL is the
full GraphFlat -> GraphTrainer pipeline.  On UUG-like the proxies run with
the same relative memory budget that made DGL/PyG OOM on the real UUG, and
report OOM — reproducing the paper's missing entries.

Shape to reproduce: per (dataset, model) all runnable systems land within
~0.01-0.02 of each other; on UUG only AGL runs and GAT beats GCN/SAGE.
"""

from __future__ import annotations

import pytest

from repro.baselines import FullGraphConfig, FullGraphTrainer
from repro.baselines.fullgraph import GraphTooLargeError
from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.nn.gnn import build_model

from .conftest import emit, flatten

RESULTS: dict[tuple[str, str, str], str] = {}

MODELS = ["gcn", "graphsage", "gat"]
SYSTEMS = ["pyg-proxy", "dgl-proxy", "agl"]

# (hidden, heads) per dataset roughly follows §4.1.2: embedding 16 on Cora,
# 64 on PPI (16 x 4 heads), small for UUG's 8-dim embeddings.  ``proxy_epochs``
# matches the *step* budget: AGL takes ~10 mini-batch steps per epoch on PPI,
# so the full-batch proxies get proportionally more epochs (§4.1.2 tunes all
# systems comparably).
RECIPES = {
    "cora": dict(
        hidden=16, heads=2, task="multiclass", epochs=60, lr=0.02, batch=140,
        proxy_epochs=60,
    ),
    "ppi": dict(
        hidden=16, heads=4, task="multilabel", epochs=8, lr=0.01, batch=64,
        proxy_epochs=80,
    ),
    "uug": dict(
        hidden=8, heads=2, task="binary", epochs=6, lr=0.01, batch=32,
        proxy_epochs=60,
    ),
}


def make_model(name: str, in_dim: int, classes: int, recipe: dict) -> object:
    kwargs = dict(
        in_dim=in_dim, hidden_dim=recipe["hidden"], num_classes=classes,
        num_layers=2, seed=0,
    )
    if name == "gat":
        kwargs["num_heads"] = recipe["heads"]
    return build_model(name, **kwargs)


@pytest.fixture(scope="module")
def table3_data(bench_cora, bench_ppi, bench_uug):
    cora_train = flatten(bench_cora, bench_cora.train_ids, hops=2, max_neighbors=25)
    cora_test = flatten(bench_cora, bench_cora.test_ids, hops=2, max_neighbors=25)
    ppi_train = flatten(bench_ppi, bench_ppi.train_ids[:600], hops=2, max_neighbors=15)
    ppi_test = flatten(bench_ppi, bench_ppi.test_ids, hops=2, max_neighbors=15)
    uug_kwargs = dict(hops=2, max_neighbors=10, hub_threshold=200, sampling="weighted")
    uug_train = flatten(bench_uug, bench_uug.train_ids[:800], **uug_kwargs)
    uug_test = flatten(bench_uug, bench_uug.test_ids[:400], **uug_kwargs)
    return {
        "cora": (bench_cora, cora_train, cora_test),
        "ppi": (bench_ppi, ppi_train, ppi_test),
        "uug": (bench_uug, uug_train, uug_test),
    }


@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("dataset", ["cora", "ppi", "uug"])
@pytest.mark.parametrize("system", SYSTEMS)
def bench_table3(benchmark, table3_data, dataset, model_name, system):
    ds, train, test = table3_data[dataset]
    recipe = RECIPES[dataset]
    classes = ds.num_classes

    def run() -> str:
        model = make_model(model_name, ds.feature_dim, classes, recipe)
        if system in ("pyg-proxy", "dgl-proxy"):
            aggregation = "scatter" if system == "pyg-proxy" else "fused"
            # The paper's DGL/PyG could not hold UUG in memory; apply the
            # equivalent relative budget (half the node count) here.
            budget = 2000 if dataset == "uug" else None
            try:
                trainer = FullGraphTrainer(
                    model, ds,
                    FullGraphConfig(
                        epochs=recipe["proxy_epochs"],
                        lr=recipe["lr"], task=recipe["task"],
                        aggregation=aggregation, max_nodes_in_memory=budget,
                    ),
                )
            except GraphTooLargeError:
                return "OOM"
            trainer.fit()
            return f"{trainer.evaluate('test'):.3f}"
        trainer = GraphTrainer(
            model,
            TrainerConfig(
                batch_size=recipe["batch"], epochs=recipe["epochs"],
                lr=recipe["lr"], task=recipe["task"], seed=0,
            ),
        )
        trainer.fit(train)
        return f"{trainer.evaluate(test):.3f}"

    RESULTS[(dataset, model_name, system)] = benchmark.pedantic(
        run, rounds=1, iterations=1
    )


def bench_table3_report(benchmark, table3_data):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    metric = {"cora": "Accuracy", "ppi": "micro-F1", "uug": "AUC"}
    header = f"{'Dataset':<18}{'Method':<12}" + "".join(f"{s:>12}" for s in SYSTEMS)
    lines = [header, "-" * len(header)]
    for dataset in ["cora", "ppi", "uug"]:
        for model_name in MODELS:
            cells = [
                RESULTS.get((dataset, model_name, system), "n/a") for system in SYSTEMS
            ]
            label = f"{dataset}-like ({metric[dataset]})" if model_name == "gcn" else ""
            lines.append(
                f"{label:<18}{model_name:<12}" + "".join(f"{c:>12}" for c in cells)
            )
    lines.append("")
    lines.append("paper shape: systems within ~0.01 of each other per model;")
    lines.append("DGL/PyG OOM on UUG; GAT clearly best on UUG (0.867 vs 0.681/0.708).")
    emit("table3_effectiveness", "\n".join(lines))
