"""Task-zoo grid: every registered task through the full pipeline.

One seeded workload per task — node classification on the cora-like
citation graph, link prediction and edge classification on the
planted-community edge-labeled graph — flattened at 2 and 4 workers
(threads backend, binary spill codec), then trained and evaluated with
the task's default metric.  Reported per cell: GraphFlat wall clock,
sample count, training wall clock, and quality (accuracy / AUC).

Byte-identity across worker counts is asserted per task: the task plugin
layer must inherit the backend-independence guarantee, not weaken it.
Deterministic by construction (seeded graphs, seeded negative sampling,
seeded training), so the grid is comparable across CI runs.
"""

from __future__ import annotations

import tempfile
import time

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import GraphTrainer, TrainerConfig, open_sample_source
from repro.datasets import cora_like, labeled_edges_like
from repro.mapreduce import DistFileSystem, LocalRuntime
from repro.nn.gnn import GraphSAGEModel

from .conftest import emit

WORKER_GRID = (2, 4)


def _workloads():
    cora = cora_like(seed=0, num_nodes=1200, num_edges=4200)
    edge_ds = labeled_edges_like(
        seed=7, num_nodes=800, num_edges=3600, feature_dim=16
    )
    return {
        "node_classification": dict(
            nodes=cora.nodes, edges=cora.edges, targets=cora.train_ids,
            feature_dim=cora.nodes.feature_dim, num_classes=7,
            flat=dict(), metric="accuracy",
            train=dict(epochs=16, batch_size=64, lr=0.01),
        ),
        # the parameter-free dot-product readout needs a gentler learning
        # rate than the dense heads: larger steps collapse the embeddings
        "link_prediction": dict(
            nodes=edge_ds[0], edges=edge_ds[1], targets=None,
            feature_dim=16, num_classes=2,
            flat=dict(edge_targets=400, negative_ratio=1), metric="auc",
            train=dict(epochs=32, batch_size=32, lr=0.005),
        ),
        "edge_classification": dict(
            nodes=edge_ds[0], edges=edge_ds[1], targets=None,
            feature_dim=16, num_classes=2,
            flat=dict(edge_targets=800), metric="accuracy",
            train=dict(epochs=16, batch_size=64, lr=0.01),
        ),
    }


def bench_task_grid():
    workloads = _workloads()
    lines = [
        "Task-zoo pipeline grid (threads backend, binary spill codec, "
        "GraphSAGE 2-layer;",
        "quality = the task's default metric on the training samples — "
        "tracked for drift, not leaderboard)",
        "",
        f"  {'task':>20} {'workers':>7} {'samples':>8} {'flat':>7} "
        f"{'train':>7} {'metric':>8} {'quality':>8}",
    ]
    for task, spec in workloads.items():
        samples_by_workers = {}
        for workers in WORKER_GRID:
            # reducer count pinned across worker counts: the shard layout
            # (and therefore the trainer's read order) stays identical, so
            # the quality column must not move between worker rows.
            config = GraphFlatConfig(
                hops=2, max_neighbors=8, num_reducers=8, seed=0,
                task=task, **spec["flat"],
            )
            with tempfile.TemporaryDirectory() as root:
                fs = DistFileSystem(root)
                with LocalRuntime(
                    backend="threads", max_workers=workers,
                    shuffle_codec="binary",
                ) as runtime:
                    start = time.perf_counter()
                    result = graph_flat(
                        spec["nodes"], spec["edges"], spec["targets"],
                        config, runtime, fs=fs, dataset_name="bench",
                    )
                    flat_wall = time.perf_counter() - start
                samples_by_workers[workers] = result.samples

                source = open_sample_source(fs, "bench")
                model = GraphSAGEModel(
                    spec["feature_dim"], 16, spec["num_classes"],
                    num_layers=2, seed=0,
                )
                trainer_task = (
                    task if task != "node_classification" else "multiclass"
                )
                trainer = GraphTrainer(
                    model,
                    TrainerConfig(task=trainer_task, seed=0, **spec["train"]),
                )
                start = time.perf_counter()
                trainer.fit(source)
                train_wall = time.perf_counter() - start
                quality = trainer.evaluate(source)
            lines.append(
                f"  {task:>20} {workers:>7} {result.num_targets:>8} "
                f"{flat_wall:6.2f}s {train_wall:6.2f}s "
                f"{spec['metric']:>8} {quality:8.3f}"
            )
        assert (
            samples_by_workers[WORKER_GRID[0]]
            == samples_by_workers[WORKER_GRID[-1]]
        ), f"{task}: worker count changed GraphFlat bytes"
        lines.append("")

    lines.append(
        "shards: byte-identical across worker counts for every task "
        "(asserted)."
    )
    emit("tasks_grid", "\n".join(lines))


if __name__ == "__main__":
    bench_task_grid()
