"""Ablation (§3.2.2, continued) — sampling's quality/cost trade-off.

The paper motivates sampling with load balance and OOM safety, and notes
"the skewed data may also lead to a poor accuracy of the trained GNN
model".  This bench sweeps ``max_neighbors`` on the hub-heavy uug-like
graph and reports, per cap: GraphFlat cost, dataset size, and the trained
model's validation AUC — showing that a modest cap loses little accuracy
while bounding every systems cost.
"""

from __future__ import annotations

import pytest

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import GraphTrainer, TrainerConfig, decode_samples
from repro.nn.gnn import GCNModel

from .conftest import emit

CAPS = [2, 5, 10, None]
RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("cap", CAPS, ids=lambda c: f"cap{c}" if c else "unbounded")
def bench_sampling_quality(benchmark, bench_uug, cap):
    ds = bench_uug
    config = GraphFlatConfig(
        hops=2,
        sampling="weighted",
        max_neighbors=cap if cap is not None else 10**9,
        hub_threshold=200,
        seed=0,
    )

    def flatten_and_train():
        train = graph_flat(ds.nodes, ds.edges, ds.train_ids[:600], config)
        val = graph_flat(ds.nodes, ds.edges, ds.val_ids, config)
        model = GCNModel(ds.feature_dim, 16, 2, num_layers=2, seed=0)
        trainer = GraphTrainer(
            model, TrainerConfig(batch_size=32, epochs=6, lr=0.01, task="binary", seed=0)
        )
        trainer.fit(train.samples)
        return {
            "auc": trainer.evaluate(val.samples),
            "bytes": sum(len(r) for r in train.samples),
            "max_nodes": int(train.neighborhood_nodes.max()),
        }

    out = benchmark.pedantic(flatten_and_train, rounds=1, iterations=1)
    out["seconds"] = benchmark.stats["mean"]
    RESULTS["unbounded" if cap is None else str(cap)] = out


def bench_sampling_quality_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Sampling quality/cost trade-off (weighted sampling, GCN-2L, uug-like):",
        f"{'max_neighbors':>14}{'val AUC':>9}{'flat+train s':>14}{'data MiB':>10}{'max nodes':>11}",
        "-" * 58,
    ]
    for cap in ["2", "5", "10", "unbounded"]:
        if cap in RESULTS:
            r = RESULTS[cap]
            lines.append(
                f"{cap:>14}{r['auc']:>9.3f}{r['seconds']:>14.1f}"
                f"{r['bytes'] / 2**20:>10.1f}{r['max_nodes']:>11}"
            )
    lines += [
        "",
        "claim: a moderate cap keeps accuracy within noise of unbounded",
        "neighborhoods while bounding GraphFlat cost, record size and the",
        "largest neighborhood (OOM safety on hub graphs).",
    ]
    emit("ablation_sampling_quality", "\n".join(lines))
