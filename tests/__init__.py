"""Test package marker: modules here use relative imports (``from .helpers
import ...``), which need ``tests`` to be an importable package."""
