"""Property-based checks of the core pipelines over random graphs.

These are the strongest correctness statements in the suite: for *arbitrary*
small directed weighted graphs,

* GraphFlat's neighborhoods equal BFS ground truth (Theorem 1's premise);
* GraphInfer equals the full-graph batched forward (the §3.4 guarantee);
* sampling caps bound neighborhood growth geometrically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import graph_infer
from repro.graph import AttributedGraph, EdgeTable, NodeTable
from repro.nn import no_grad
from repro.nn.gnn import BatchInputs, EdgeBlock, GCNModel
from repro.proto import decode_sample


def random_graph(seed: int, n: int, m: int) -> tuple[NodeTable, EdgeTable]:
    rng = np.random.default_rng(seed)
    ids = np.sort(rng.choice(1000, size=n, replace=False)).astype(np.int64)
    nodes = NodeTable(ids, rng.standard_normal((n, 3)).astype(np.float32))
    if m:
        src = ids[rng.integers(0, n, m)]
        dst = ids[rng.integers(0, n, m)]
        keep = src != dst
        edges = EdgeTable(
            src[keep], dst[keep], weights=rng.uniform(0.5, 3.0, keep.sum()).astype(np.float32)
        ).coalesce()
    else:
        edges = EdgeTable(np.zeros(0, np.int64), np.zeros(0, np.int64))
    return nodes, edges


class TestGraphFlatMatchesBFS:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(2, 22),
        m=st.integers(0, 60),
        hops=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_nodes_and_hops(self, seed, n, m, hops):
        nodes, edges = random_graph(seed, n, m)
        graph = AttributedGraph(nodes, edges)
        targets = nodes.ids[:3]
        config = GraphFlatConfig(hops=hops, max_neighbors=10**9, hub_threshold=10**9)
        result = graph_flat(nodes, edges, targets, config)
        for record in result.samples:
            tid, _, gf = decode_sample(record)
            keep, dist = graph.k_hop_ancestors(graph.index_of(tid), hops)
            expected = {int(graph.node_ids[p]): int(d) for p, d in zip(keep, dist)}
            got = {int(i): int(h) for i, h in zip(gf.node_ids, gf.hops)}
            assert got == expected


class TestInferMatchesBatchedForward:
    @given(seed=st.integers(0, 2**16), n=st.integers(2, 20), m=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_gcn_scores(self, seed, n, m):
        nodes, edges = random_graph(seed, n, m)
        model = GCNModel(3, 5, 2, num_layers=2, seed=1)
        model.eval()

        graph = AttributedGraph(nodes, edges)
        in_ptr, in_src, in_eid = graph.in_csr
        dst = np.repeat(np.arange(n, dtype=np.int64), np.diff(in_ptr))
        block = EdgeBlock(in_src, dst, n, graph.edges.weights[in_eid])
        batch = BatchInputs(graph.node_features, np.arange(n), [block, block])
        with no_grad():
            ref = model(batch).data

        result = graph_infer(model, nodes, edges)
        for row, node_id in enumerate(graph.node_ids):
            np.testing.assert_allclose(
                result.scores[int(node_id)], ref[row], rtol=1e-3, atol=1e-4
            )


class TestSamplingBound:
    @given(
        seed=st.integers(0, 2**16),
        cap=st.integers(1, 4),
        hops=st.integers(1, 2),
        strategy=st.sampled_from(["uniform", "weighted", "topk"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_geometric_cap(self, seed, cap, hops, strategy):
        nodes, edges = random_graph(seed, 20, 80)
        config = GraphFlatConfig(
            hops=hops, max_neighbors=cap, sampling=strategy, hub_threshold=10**9
        )
        result = graph_flat(nodes, edges, nodes.ids[:4], config)
        bound = sum(cap**i for i in range(hops + 1))
        assert result.neighborhood_nodes.max() <= bound


class TestEndToEndDeterminism:
    @pytest.mark.parametrize("strategy", ["uniform", "weighted"])
    def test_same_seed_same_bytes(self, strategy):
        nodes, edges = random_graph(3, 18, 60)
        config = GraphFlatConfig(
            hops=2, max_neighbors=3, sampling=strategy, hub_threshold=10**9, seed=11
        )
        a = graph_flat(nodes, edges, nodes.ids[:5], config).samples
        b = graph_flat(nodes, edges, nodes.ids[:5], config).samples
        assert a == b

    def test_different_seed_different_sample(self):
        nodes, edges = random_graph(3, 18, 120)
        base = dict(hops=2, max_neighbors=2, sampling="uniform", hub_threshold=10**9)
        a = graph_flat(nodes, edges, nodes.ids[:5], GraphFlatConfig(seed=1, **base)).samples
        b = graph_flat(nodes, edges, nodes.ids[:5], GraphFlatConfig(seed=2, **base)).samples
        assert a != b
