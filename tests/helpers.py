"""Test utilities: finite-difference gradient checking for the autograd ops."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numeric_grad", "check_gradients"]


def numeric_grad(fn, value: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(value)`` w.r.t. ``value``."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = float(fn(value))
        flat[i] = orig - eps
        down = float(fn(value))
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradients(build_loss, arrays: dict[str, np.ndarray], rtol=5e-2, atol=5e-3):
    """Compare autograd gradients of ``build_loss(tensors) -> Tensor`` (a
    scalar) against finite differences for every array in ``arrays``.

    ``build_loss`` receives a dict of fresh ``Tensor`` leaves each call, so
    it must be a pure function of them.
    """
    tensors = {k: Tensor(v.copy(), requires_grad=True) for k, v in arrays.items()}
    loss = build_loss(tensors)
    if loss.data.ndim != 0 and loss.data.size != 1:
        raise AssertionError("build_loss must return a scalar")
    loss.backward()

    for name, value in arrays.items():
        def scalar_fn(v, name=name):
            local = {
                k: Tensor(v.copy() if k == name else arrays[k].copy()) for k in arrays
            }
            return build_loss(local).data

        expected = numeric_grad(scalar_fn, value.astype(np.float64).copy())
        got = tensors[name].grad
        assert got is not None, f"no gradient for {name}"
        np.testing.assert_allclose(
            got, expected, rtol=rtol, atol=atol, err_msg=f"gradient mismatch for {name}"
        )
