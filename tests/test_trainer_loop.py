"""GraphTrainer loop: convergence, optimization-flag invariance, PS parity,
prediction/evaluation plumbing."""

import numpy as np
import pytest

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import GraphTrainer, TrainerConfig
from repro.nn.gnn import GCNModel, GraphSAGEModel
from repro.ps import ParameterServerGroup


@pytest.fixture(scope="module")
def mini_cora():
    from repro.datasets import cora_like

    return cora_like(seed=7, num_nodes=300, num_edges=900)


@pytest.fixture(scope="module")
def cora_flat(mini_cora):
    ds = mini_cora
    config = GraphFlatConfig(hops=2, max_neighbors=30, hub_threshold=10**9)
    train = graph_flat(ds.nodes, ds.edges, ds.train_ids, config).samples
    val = graph_flat(ds.nodes, ds.edges, ds.val_ids, config).samples
    return train, val


def make_model(ds, seed=0):
    return GCNModel(ds.feature_dim, 12, ds.num_classes, num_layers=2, seed=seed)


class TestConvergence:
    def test_loss_decreases_and_accuracy_beats_chance(self, mini_cora, cora_flat):
        train, val = cora_flat
        trainer = GraphTrainer(
            make_model(mini_cora),
            TrainerConfig(batch_size=8, epochs=15, lr=0.01, seed=0),
        )
        history = trainer.fit(train, val_samples=val)
        assert history[-1]["loss"] < history[0]["loss"] * 0.5
        assert history[-1]["val_metric"] > 2.0 / mini_cora.num_classes

    def test_multilabel_task(self, mini_ppi):
        ds = mini_ppi
        config = GraphFlatConfig(hops=1, max_neighbors=15, hub_threshold=10**9)
        train = graph_flat(ds.nodes, ds.edges, ds.train_ids[:80], config).samples
        model = GraphSAGEModel(ds.feature_dim, 16, ds.num_classes, num_layers=1, seed=0)
        trainer = GraphTrainer(
            model, TrainerConfig(batch_size=16, epochs=8, lr=0.01, task="multilabel")
        )
        history = trainer.fit(train)
        assert history[-1]["loss"] < history[0]["loss"]
        assert 0.0 <= trainer.evaluate(train) <= 1.0

    def test_binary_auc_improves(self, mini_uug):
        ds = mini_uug
        config = GraphFlatConfig(hops=1, max_neighbors=10, hub_threshold=50)
        train = graph_flat(ds.nodes, ds.edges, ds.train_ids[:150], config).samples
        val = graph_flat(ds.nodes, ds.edges, ds.val_ids, config).samples
        model = GCNModel(ds.feature_dim, 8, 2, num_layers=1, seed=0)
        trainer = GraphTrainer(
            model, TrainerConfig(batch_size=32, epochs=10, lr=0.02, task="binary")
        )
        trainer.fit(train)
        assert trainer.evaluate(val) > 0.6


class TestOptimizationFlagInvariance:
    """Table 4's strategies must change speed, never results."""

    @pytest.mark.parametrize(
        "flags",
        [
            dict(pruning=False, edge_partition=False, pipeline=False),
            dict(pruning=True, edge_partition=False, pipeline=False),
            dict(pruning=False, edge_partition=True, pipeline=True),
            dict(pruning=True, edge_partition=True, pipeline=True),
        ],
    )
    def test_same_training_trajectory(self, mini_cora, cora_flat, flags):
        train, _ = cora_flat
        trainer = GraphTrainer(
            make_model(mini_cora, seed=5),
            TrainerConfig(batch_size=8, epochs=2, lr=0.01, seed=9, **flags),
        )
        history = trainer.fit(train[:40])
        # identical seeds + flag-invariant math -> identical losses
        baseline = GraphTrainer(
            make_model(mini_cora, seed=5),
            TrainerConfig(batch_size=8, epochs=2, lr=0.01, seed=9),
        ).fit(train[:40])
        for ours, ref in zip(history, baseline):
            assert ours["loss"] == pytest.approx(ref["loss"], rel=1e-4)


class TestPSParity:
    def test_single_async_worker_matches_standalone(self, mini_cora, cora_flat):
        """One async PS worker applies exactly the same Adam sequence as the
        standalone optimizer — numerical parity checks the PS wiring."""
        train, _ = cora_flat
        subset = train[:32]
        standalone = GraphTrainer(
            make_model(mini_cora, seed=3),
            TrainerConfig(batch_size=8, epochs=2, lr=0.01, seed=3, shuffle=False),
        )
        standalone.fit(subset)

        model = make_model(mini_cora, seed=3)
        group = ParameterServerGroup(num_servers=3, num_workers=1, lr=0.01, mode="async")
        group.initialize(model.state_dict())
        ps_trainer = GraphTrainer(
            model,
            TrainerConfig(batch_size=8, epochs=2, lr=0.01, seed=3, shuffle=False),
            ps_client=group.client(0),
        )
        ps_trainer.fit(subset)
        final = group.pull()
        for name, value in standalone.model.state_dict().items():
            np.testing.assert_allclose(final[name], value, rtol=1e-4, atol=1e-5)


class TestPlumbing:
    def test_predict_returns_aligned_ids(self, cora_flat):
        train, _ = cora_flat
        trainer = GraphTrainer(
            make_model_from(train), TrainerConfig(batch_size=16, epochs=0)
        )
        ids, logits = trainer.predict(train[:20])
        assert len(ids) == logits.shape[0]
        from repro.core.trainer import decode_samples

        expected = {s.target_id for s in decode_samples(train[:20])}
        assert set(ids.tolist()) == expected

    def test_empty_training_rejected(self, mini_cora):
        trainer = GraphTrainer(make_model(mini_cora), TrainerConfig())
        with pytest.raises(ValueError):
            trainer.train_epoch([])

    def test_bad_config(self):
        with pytest.raises(ValueError):
            TrainerConfig(task="regression")
        with pytest.raises(ValueError):
            TrainerConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)

    def test_timers_capture_both_stages(self, mini_cora, cora_flat):
        train, _ = cora_flat
        trainer = GraphTrainer(
            make_model(mini_cora), TrainerConfig(batch_size=8, epochs=1)
        )
        trainer.fit(train[:32])
        totals = trainer.timers.totals()
        assert totals["preprocess"] > 0 and totals["compute"] > 0


class TestCheckpointResume:
    """save_checkpoint/load_checkpoint through a real file: resuming
    mid-``fit`` must reproduce the uninterrupted run exactly — model,
    optimizer state and the data-order RNG all round-trip."""

    def _trainer(self, mini_cora, epochs):
        return GraphTrainer(
            make_model(mini_cora, seed=11),
            TrainerConfig(batch_size=8, epochs=epochs, lr=0.01, seed=13),
        )

    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_resume_mid_fit_matches_uninterrupted(
        self, mini_cora, cora_flat, tmp_path, optimizer
    ):
        train, _ = cora_flat
        subset = train[:48]

        straight = GraphTrainer(
            make_model(mini_cora, seed=11),
            TrainerConfig(batch_size=8, epochs=4, lr=0.01, seed=13, optimizer=optimizer),
        )
        straight.fit(subset)

        first = GraphTrainer(
            make_model(mini_cora, seed=11),
            TrainerConfig(batch_size=8, epochs=2, lr=0.01, seed=13, optimizer=optimizer),
        )
        first.fit(subset)
        first.save_checkpoint(tmp_path / "ckpt.pkl")

        resumed = GraphTrainer(
            make_model(mini_cora, seed=99),  # different init: must be overwritten
            TrainerConfig(batch_size=8, epochs=2, lr=0.01, seed=13, optimizer=optimizer),
        )
        resumed.load_checkpoint(tmp_path / "ckpt.pkl")
        assert [h["loss"] for h in resumed.history] == [
            h["loss"] for h in straight.history[:2]
        ]
        resumed.fit(subset)  # two more epochs from the restored RNG state

        assert [h["loss"] for h in resumed.history] == [
            h["loss"] for h in straight.history
        ]
        for name, value in straight.model.state_dict().items():
            np.testing.assert_array_equal(resumed.model.state_dict()[name], value)

    def test_optimizer_kind_mismatch_rejected(self, mini_cora, cora_flat, tmp_path):
        train, _ = cora_flat
        adam = self._trainer(mini_cora, epochs=1)
        adam.fit(train[:16])
        adam.save_checkpoint(tmp_path / "ckpt.pkl")
        sgd = GraphTrainer(
            make_model(mini_cora),
            TrainerConfig(batch_size=8, epochs=1, optimizer="sgd"),
        )
        with pytest.raises(ValueError):
            sgd.load_checkpoint(tmp_path / "ckpt.pkl")


def make_model_from(records):
    """Build a model whose input dim matches the decoded samples."""
    from repro.core.trainer import decode_samples

    sample = decode_samples(records[:1])[0]
    return GCNModel(sample.graph_feature.feature_dim, 12, 7, num_layers=2, seed=0)
