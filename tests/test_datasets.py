"""Dataset generators: published statistics, learnability structure,
hub phenomena, IO round trips."""

import numpy as np
import pytest

from repro.datasets import (
    cora_like,
    ppi_like,
    read_edge_table,
    read_node_table,
    uug_like,
    write_edge_table,
    write_node_table,
)
from repro.datasets.base import GraphDataset
from repro.graph.tables import EdgeTable, NodeTable


class TestCoraLike:
    def test_published_statistics(self):
        ds = cora_like()
        s = ds.summary()
        assert s["nodes"] == 2708
        assert s["feature_dim"] == 1433
        assert s["classes"] == 7
        assert (s["train"], s["val"], s["test"]) == (140, 500, 1000)

    def test_features_binary_sparse(self):
        ds = cora_like()
        assert set(np.unique(ds.nodes.features)) <= {0.0, 1.0}
        density = ds.nodes.features.mean()
        assert density < 0.05  # bag-of-words sparsity

    def test_homophily_planted(self):
        ds = cora_like()
        graph = ds.to_graph()
        src = graph.index_of(ds.edges.src)
        dst = graph.index_of(ds.edges.dst)
        same = (ds.nodes.labels[src] == ds.nodes.labels[dst]).mean()
        assert same > 0.6  # citations mostly intra-topic

    def test_deterministic(self):
        a, b = cora_like(seed=3), cora_like(seed=3)
        np.testing.assert_allclose(a.nodes.features, b.nodes.features)
        np.testing.assert_array_equal(a.edges.src, b.edges.src)

    def test_different_seeds_differ(self):
        assert not np.array_equal(cora_like(seed=1).edges.src, cora_like(seed=2).edges.src)


class TestPpiLike:
    def test_structure(self):
        ds = ppi_like(scale=0.05)
        s = ds.summary()
        assert s["graphs"] == 24
        assert s["classes"] == 121
        assert ds.task == "multilabel"
        assert ds.nodes.labels.shape[1] == 121

    def test_split_by_graph(self):
        ds = ppi_like(scale=0.05)
        gid_of = dict(zip(ds.nodes.ids.tolist(), ds.graph_ids.tolist()))
        assert {gid_of[int(i)] for i in ds.val_ids} == {20, 21}
        assert {gid_of[int(i)] for i in ds.test_ids} == {22, 23}

    def test_no_cross_graph_edges(self):
        ds = ppi_like(scale=0.05, num_graphs=5)
        gid_of = dict(zip(ds.nodes.ids.tolist(), ds.graph_ids.tolist()))
        for s, d in zip(ds.edges.src.tolist(), ds.edges.dst.tolist()):
            assert gid_of[s] == gid_of[d]

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            ppi_like(scale=0.0)


class TestUugLike:
    def test_hub_degrees_dominate(self, mini_uug):
        graph = mini_uug.to_graph()
        degrees = graph.in_degrees()
        assert degrees.max() > 10 * np.median(degrees[degrees > 0])
        hub_pos = graph.index_of(mini_uug.hub_ids)
        assert degrees[hub_pos].min() > 50

    def test_binary_task_with_small_labeled_fraction(self, mini_uug):
        ds = mini_uug
        labeled = len(ds.train_ids) + len(ds.val_ids) + len(ds.test_ids)
        assert labeled < len(ds.nodes) / 2
        assert set(np.unique(ds.nodes.labels)) == {0, 1}

    def test_non_contiguous_hashed_ids(self, mini_uug):
        ids = mini_uug.nodes.ids
        assert np.any(np.diff(ids) > 1)

    def test_no_duplicate_directed_edges(self, mini_uug):
        pair = np.stack([mini_uug.edges.src, mini_uug.edges.dst], axis=1)
        assert len(np.unique(pair, axis=0)) == len(pair)

    def test_homophilous_classes(self, mini_uug):
        ds = mini_uug
        graph = ds.to_graph()
        src = graph.index_of(ds.edges.src)
        dst = graph.index_of(ds.edges.dst)
        same = (ds.nodes.labels[src] == ds.nodes.labels[dst]).mean()
        assert same > 0.55

    def test_tail_knob_defaults_are_draw_identical(self):
        """``zipf_exponent=2.1, max_plain_degree=50`` must reproduce the
        historical generator bit-for-bit: the knobs ride on the same rng
        stream, so defaults change nothing for any seed."""
        a = uug_like(seed=3, num_nodes=300, num_hubs=2, hub_degree=40)
        b = uug_like(
            seed=3, num_nodes=300, num_hubs=2, hub_degree=40,
            zipf_exponent=2.1, max_plain_degree=50,
        )
        np.testing.assert_array_equal(a.edges.src, b.edges.src)
        np.testing.assert_array_equal(a.edges.dst, b.edges.dst)
        np.testing.assert_array_equal(a.edges.weights, b.edges.weights)
        np.testing.assert_array_equal(a.nodes.features, b.nodes.features)

    def test_tail_knobs_reshape_degree_distribution(self):
        """``max_plain_degree=1`` flattens the plain-degree weights to
        uniform, so in-degree concentration collapses versus the power-law
        default; any other exponent/cap changes the draw."""

        def top5_share(ds):
            _, counts = np.unique(ds.edges.dst, return_counts=True)
            counts = np.sort(counts)[::-1]
            k = max(1, int(0.05 * len(counts)))
            return counts[:k].sum() / counts.sum()

        base = dict(seed=3, num_nodes=2000, num_hubs=0, hub_degree=0, homophily=0.0)
        powerlaw = uug_like(**base)
        uniform = uug_like(**base, max_plain_degree=1)
        assert top5_share(uniform) < top5_share(powerlaw) / 2
        fat = uug_like(**base, zipf_exponent=1.5)
        assert not np.array_equal(fat.edges.dst, powerlaw.edges.dst)

    def test_tail_knob_validation(self):
        with pytest.raises(ValueError, match="zipf_exponent"):
            uug_like(seed=0, num_nodes=50, zipf_exponent=1.0)
        with pytest.raises(ValueError, match="max_plain_degree"):
            uug_like(seed=0, num_nodes=50, max_plain_degree=0)


class TestGraphDataset:
    def test_split_overlap_rejected(self):
        nodes = NodeTable(np.arange(10), np.zeros((10, 2)), np.zeros(10, np.int64))
        edges = EdgeTable(np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            GraphDataset(
                "x", nodes, edges,
                {"train": np.array([1, 2]), "val": np.array([2]), "test": np.array([3])},
                "multiclass", 2,
            )

    def test_unknown_task_rejected(self):
        nodes = NodeTable(np.arange(3), np.zeros((3, 1)))
        edges = EdgeTable(np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            GraphDataset(
                "x", nodes, edges,
                {"train": np.array([0]), "val": np.array([1]), "test": np.array([2])},
                "ranking", 2,
            )

    def test_labels_of(self, mini_cora):
        ids = mini_cora.train_ids[:5]
        labels = mini_cora.labels_of(ids)
        assert labels.shape == (5,)


class TestTableIO:
    def test_node_table_round_trip(self, tmp_path, tiny_tables):
        nodes, _ = tiny_tables
        path = tmp_path / "nodes.tsv"
        write_node_table(path, nodes)
        back = read_node_table(path)
        np.testing.assert_array_equal(back.ids, nodes.ids)
        np.testing.assert_allclose(back.features, nodes.features)
        np.testing.assert_array_equal(back.labels, nodes.labels)

    def test_multilabel_round_trip(self, tmp_path):
        nodes = NodeTable(
            np.array([1, 2]),
            np.array([[0.5, 1.5], [2.5, 3.5]], dtype=np.float32),
            np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32),
        )
        path = tmp_path / "nodes.tsv"
        write_node_table(path, nodes)
        back = read_node_table(path)
        np.testing.assert_allclose(back.labels, nodes.labels)

    def test_edge_table_round_trip(self, tmp_path, tiny_tables):
        _, edges = tiny_tables
        path = tmp_path / "edges.tsv"
        write_edge_table(path, edges)
        back = read_edge_table(path)
        np.testing.assert_array_equal(back.src, edges.src)
        np.testing.assert_array_equal(back.dst, edges.dst)
        np.testing.assert_allclose(back.weights, edges.weights)
        np.testing.assert_allclose(back.features, edges.features)

    def test_malformed_row_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\t0.5\n2\n")
        with pytest.raises(ValueError, match=":2"):
            read_node_table(path)

    def test_parsing_is_warning_free(self, tmp_path, tiny_tables):
        """Regression: the old ``np.fromstring`` parser emitted a
        ``DeprecationWarning`` on every TSV row."""
        import warnings

        nodes, edges = tiny_tables
        write_node_table(tmp_path / "nodes.tsv", nodes)
        write_edge_table(tmp_path / "edges.tsv", edges)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            back_nodes = read_node_table(tmp_path / "nodes.tsv")
            back_edges = read_edge_table(tmp_path / "edges.tsv")
        np.testing.assert_allclose(back_nodes.features, nodes.features)
        np.testing.assert_allclose(back_edges.features, edges.features)
