"""Multi-host transport layer acceptance tests.

The contract under test: a shuffle transport changes *where run bytes
travel*, never *what the job outputs* — ``local``, ``tcp`` and
``shared-dir`` are byte-identical on every backend and partitioner, the
wire grammar is the spill frame grammar (CRC verified end-to-end), and the
spill-session sweep never reaps another host's sessions off a shared
mount.
"""

from __future__ import annotations

import os
import socket
import threading

import pytest

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.mapreduce import LocalRuntime, MapReduceJob
from repro.nn.gnn import build_model
from repro.proto.framing import FrameCorruptionError
from repro.transport import (
    SHUFFLE_TRANSPORTS,
    BroadcastServer,
    ClusterSpec,
    HostSpec,
    ShufflePeerServer,
    connect,
    fetch_payload,
    host_tag,
    make_shuffle_transport,
)


# ----------------------------------------------------------------- wire layer
class TestWire:
    def _server(self, handler):
        """One-connection echo-style server; returns (host, port, thread)."""
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()[:2]

        def serve():
            sock, _ = listener.accept()
            try:
                handler(sock)
            finally:
                sock.close()
                listener.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return host, port, thread

    def test_frame_round_trip_and_counters(self):
        from repro.transport.wire import Conn

        def echo(sock):
            conn = Conn(sock)
            kind, payload = conn.recv()
            conn.send(kind, payload[::-1])

        host, port, thread = self._server(echo)
        with connect(host, port) as conn:
            kind, payload = conn.request(b"ping", b"abcdef")
            assert (kind, payload) == (b"ping", b"fedcba")
            assert conn.bytes_sent > len(b"ping") + len(b"abcdef")
            assert conn.bytes_received > len(b"ping") + len(b"fedcba")
        thread.join(timeout=5)

    def test_corrupted_frame_raises(self):
        from repro.proto.framing import write_frame
        import io

        buf = io.BytesIO()
        write_frame(buf, b"pull", b"payload-bytes")
        wire = bytearray(buf.getvalue())

        def corrupt(sock):
            bad = bytes(wire[:-1]) + bytes([wire[-1] ^ 0xFF])  # flip CRC byte
            sock.sendall(bad)

        host, port, thread = self._server(corrupt)
        with connect(host, port) as conn:
            with pytest.raises(FrameCorruptionError):
                conn.recv()
        thread.join(timeout=5)

    def test_request_on_closed_peer_raises_reset(self):
        def hangup(sock):
            pass  # close immediately

        host, port, thread = self._server(hangup)
        with connect(host, port) as conn:
            with pytest.raises(ConnectionResetError):
                conn.request(b"pull", b"x")
        thread.join(timeout=5)


# -------------------------------------------------------------- cluster spec
class TestClusterSpec:
    def test_port_plan(self):
        spec = HostSpec.parse("10.0.0.7:7077")
        assert (spec.host, spec.port) == ("10.0.0.7", 7077)
        assert spec.control_port == 7077
        assert spec.ps_port == 7078
        assert spec.shuffle_port == 7079
        assert spec.broadcast_port == 7080

    def test_ephemeral_ports_stay_ephemeral(self):
        spec = HostSpec("127.0.0.1", 0)
        assert spec.ps_port == spec.shuffle_port == spec.broadcast_port == 0

    def test_parse_roster(self):
        cluster = ClusterSpec.parse("hostA:7077, hostB:7077,hostC:9000")
        assert len(cluster.hosts) == 3
        assert cluster.coordinator == HostSpec("hostA", 7077)

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            HostSpec.parse("no-port")
        with pytest.raises(ValueError):
            HostSpec.parse("host:not-a-number")
        with pytest.raises(ValueError):
            ClusterSpec.parse(" , ")
        with pytest.raises(ValueError):
            HostSpec("h", 65534)  # base + 3 overflows the port space

    def test_host_tag_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_TAG", "rack-7/node.3")
        assert host_tag() == "rack7node3"  # filesystem-safe
        monkeypatch.delenv("REPRO_HOST_TAG")
        assert host_tag()  # falls back to the real hostname

    def test_factory_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="unknown shuffle transport"):
            make_shuffle_transport("carrier-pigeon")


# ---------------------------------------------------------------- peer server
class TestShufflePeerServer:
    def test_serves_only_registered_roots(self, tmp_path):
        served = tmp_path / "served"
        served.mkdir()
        (served / "job.m00000.p00000.r0.agls").write_bytes(b"run-bytes")
        secret = tmp_path / "secret"
        secret.mkdir()
        (secret / "passwd").write_bytes(b"hunter2")

        server = ShufflePeerServer()
        server.register_root(str(served))
        try:
            from repro.proto.framing import decode_value, encode_value

            with connect(server.host, server.port) as conn:
                conn.send(b"fetch", encode_value((str(served), "job.m*")))
                kind, payload = conn.recv()
                assert kind == b"run:job.m00000.p00000.r0.agls"
                assert payload == b"run-bytes"
                kind, payload = conn.recv()
                assert kind == b"done"
                assert decode_value(payload)[0] == ["job.m00000.p00000.r0.agls"]

            with connect(server.host, server.port) as conn:
                conn.send(b"fetch", encode_value((str(secret), "passwd")))
                kind, payload = conn.recv()
                assert kind == b"error"

            # traversal out of a registered root is refused too
            with connect(server.host, server.port) as conn:
                conn.send(b"fetch", encode_value((str(served), "../secret/*")))
                kind, payload = conn.recv()
                assert kind == b"error"
        finally:
            server.close()

    def test_byte_counters_accumulate(self, tmp_path):
        (tmp_path / "job.m00000.p00000.r0.agls").write_bytes(b"x" * 1000)
        server = ShufflePeerServer()
        server.register_root(str(tmp_path))
        try:
            from repro.proto.framing import encode_value

            with connect(server.host, server.port) as conn:
                conn.send(b"fetch", encode_value((str(tmp_path), "job.m*")))
                while conn.recv()[0] != b"done":
                    pass
            # handler thread folds counters in as the connection closes
            deadline = 50
            while server.take_stats() == (0, 0) and deadline:
                import time

                time.sleep(0.02)
                deadline -= 1
            assert deadline, "server never accounted the fetch"
        finally:
            server.close()


# ------------------------------------------------------------- broadcast TCP
class TestBroadcastServer:
    def test_fetch_round_trip_and_missing(self):
        server = BroadcastServer()
        try:
            server.publish("slices", b"payload-1")
            assert fetch_payload(server.host, server.port, "slices") == b"payload-1"
            with pytest.raises(KeyError):
                fetch_payload(server.host, server.port, "nope")
        finally:
            server.close()

    def test_republish_identical_ok_conflicting_rejected(self):
        server = BroadcastServer()
        try:
            server.publish("b", b"same")
            server.publish("b", b"same")  # idempotent
            with pytest.raises(ValueError, match="already published"):
                server.publish("b", b"different")
        finally:
            server.close()

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
    def test_fetch_broadcast_republishes_locally(self):
        from repro.ps.shm import attach_shared_memory
        from repro.transport import fetch_broadcast

        server = BroadcastServer()
        try:
            server.publish("spec", b"spec-bytes")
            bcast = fetch_broadcast(server.host, server.port, "spec")
            try:
                seg = attach_shared_memory(bcast.name)
                try:
                    assert bytes(seg.buf[: bcast.nbytes]) == b"spec-bytes"
                finally:
                    seg.close()
            finally:
                bcast.close()
        finally:
            server.close()


# ------------------------------------------------------- byte-identity matrix
def split_mapper(key, value):
    for word in value.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


WC_CORPUS = [(i, "alpha beta gamma delta epsilon " * 4) for i in range(40)]
WC_JOB = MapReduceJob(
    name="wc", mapper=split_mapper, reducer=sum_reducer, num_reducers=3
)

MATRIX_BACKENDS = ("serial", "threads", "processes")


@pytest.fixture(scope="module")
def hub_graph():
    from repro.datasets import uug_like

    return uug_like(
        seed=5, num_nodes=120, avg_degree=4, feature_dim=6, num_hubs=2, hub_degree=30
    )


def flat_config(**overrides):
    base = dict(hops=2, max_neighbors=4, hub_threshold=8, num_reducers=4, seed=0)
    base.update(overrides)
    return GraphFlatConfig(**base)


@pytest.fixture(scope="module")
def flat_baseline(hub_graph):
    ds = hub_graph
    return graph_flat(ds.nodes, ds.edges, ds.train_ids[:20], flat_config())


class TestByteIdentityMatrix:
    @pytest.mark.parametrize("backend", MATRIX_BACKENDS)
    @pytest.mark.parametrize("transport", SHUFFLE_TRANSPORTS)
    def test_wordcount_identical(self, tmp_path, transport, backend):
        baseline = LocalRuntime().run(WC_JOB, WC_CORPUS)
        with LocalRuntime(
            backend=backend, max_workers=2,
            spill_dir=tmp_path, shuffle_transport=transport,
        ) as runtime:
            out = runtime.run(WC_JOB, WC_CORPUS)
        assert out == baseline
        stats = runtime.last_stats
        if transport == "local":
            assert stats.transport_bytes_sent == 0
            assert stats.transport_bytes_received == 0
        else:
            assert stats.transport_bytes_sent > 0

    @pytest.mark.parametrize("partitioner", ("hash", "planned"))
    @pytest.mark.parametrize("transport", ("tcp", "shared-dir"))
    def test_graphflat_identical(
        self, hub_graph, flat_baseline, tmp_path, transport, partitioner
    ):
        ds = hub_graph
        with LocalRuntime(
            backend="threads", max_workers=2, spill_dir=tmp_path,
            shuffle_transport=transport,
        ) as runtime:
            result = graph_flat(
                ds.nodes, ds.edges, ds.train_ids[:20],
                flat_config(partitioner=partitioner), runtime,
            )
        assert result.hub_nodes == flat_baseline.hub_nodes
        assert result.samples == flat_baseline.samples  # encoded wire bytes

    @pytest.mark.parametrize("transport", ("tcp", "shared-dir"))
    def test_graphinfer_scores_identical(self, hub_graph, tmp_path, transport):
        import numpy as np

        ds = hub_graph
        model = build_model(
            "gcn", in_dim=6, hidden_dim=8, num_classes=2, num_layers=2, seed=0
        )
        config = GraphInferConfig(
            max_neighbors=4, hub_threshold=8, num_reducers=4, seed=0
        )
        baseline = graph_infer(model, ds.nodes, ds.edges, config)
        with LocalRuntime(
            backend="threads", max_workers=2, spill_dir=tmp_path,
            shuffle_transport=transport,
        ) as runtime:
            result = graph_infer(model, ds.nodes, ds.edges, config, runtime)
        assert set(result.scores) == set(baseline.scores)
        for node_id, scores in baseline.scores.items():
            assert np.array_equal(result.scores[node_id], scores)

    def test_config_knobs_reach_runtime(self, hub_graph, flat_baseline):
        """The pipeline configs grow the same transport knobs as the CLI."""
        ds = hub_graph
        result = graph_flat(
            ds.nodes, ds.edges, ds.train_ids[:20],
            flat_config(backend="threads", num_workers=2, shuffle_transport="tcp"),
        )
        assert result.samples == flat_baseline.samples
        assert sum(rs.transport_bytes_sent for rs in result.round_stats) > 0

    def test_shared_dir_requires_spill_dir(self):
        with pytest.raises(ValueError, match="spill_dir"):
            LocalRuntime(shuffle_transport="shared-dir")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown shuffle transport"):
            LocalRuntime(shuffle_transport="bogus")
        with pytest.raises(ValueError, match="shuffle_transport"):
            GraphFlatConfig(shuffle_transport="bogus")
        with pytest.raises(ValueError, match="shuffle_transport"):
            GraphInferConfig(shuffle_transport="bogus")


# ------------------------------------------------------- session sweep scope
class TestHostScopedSweep:
    def _run_session(self, spill_dir):
        with LocalRuntime(
            backend="threads", max_workers=2, spill_dir=spill_dir
        ) as runtime:
            runtime.run(WC_JOB, WC_CORPUS)

    def test_sweep_skips_foreign_host_sessions(self, tmp_path, monkeypatch):
        """A dead session directory tagged with another host's tag must
        survive this host's sweep: its pid namespace is not ours to probe
        (shared-dir mounts see every host's sessions)."""
        monkeypatch.setenv("REPRO_HOST_TAG", "hosta")
        foreign = tmp_path / f"mr999999.h{'hostb'}.deadbeef"
        foreign.mkdir()
        (foreign / "job.m00000.p00000.r0.agls").write_bytes(b"not ours")
        stale_local = tmp_path / "mr999999.hhosta.cafef00d"
        stale_local.mkdir()
        legacy = tmp_path / "mr999998.0ldst7le"
        legacy.mkdir()

        self._run_session(tmp_path)

        assert foreign.exists(), "foreign host's session was reaped"
        assert not stale_local.exists(), "own dead session should be reaped"
        assert not legacy.exists(), "legacy (untagged) sessions are local"

    def test_session_dirs_carry_host_tag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_HOST_TAG", "taggy")
        from repro.mapreduce.runtime import _session_prefix

        prefix = _session_prefix()
        assert prefix == f"mr{os.getpid()}.htaggy."
