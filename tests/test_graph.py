"""Graph substrate: tables, CSR adjacency, GraphFeature merge, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    AttributedGraph,
    EdgeTable,
    GraphFeature,
    GraphValidationError,
    NodeTable,
    merge_graph_features,
    validate_graph,
    validate_tables,
)


class TestNodeTable:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            NodeTable(np.array([1, 1]), np.zeros((2, 3)))

    def test_index_of_vectorised(self):
        table = NodeTable(np.array([5, 9, 2]), np.zeros((3, 1)))
        np.testing.assert_array_equal(table.index_of([2, 5]), [2, 0])

    def test_index_of_missing_raises(self):
        table = NodeTable(np.array([5]), np.zeros((1, 1)))
        with pytest.raises(KeyError):
            table.index_of([7])

    def test_label_alignment_enforced(self):
        with pytest.raises(ValueError):
            NodeTable(np.array([1, 2]), np.zeros((2, 1)), labels=np.array([0]))

    def test_select_keeps_ids(self):
        table = NodeTable(np.array([5, 9, 2]), np.eye(3), labels=np.array([1, 0, 1]))
        sub = table.select([2, 0])
        np.testing.assert_array_equal(sub.ids, [2, 5])
        np.testing.assert_array_equal(sub.labels, [1, 1])


class TestEdgeTable:
    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            EdgeTable(np.array([1]), np.array([2]), weights=np.array([0.0]))

    def test_symmetrize_doubles(self):
        table = EdgeTable(np.array([1, 2]), np.array([2, 3]))
        sym = EdgeTable.symmetrize(table)
        assert len(sym) == 4
        pairs = set(zip(sym.src.tolist(), sym.dst.tolist()))
        assert (3, 2) in pairs and (2, 1) in pairs

    def test_symmetrize_copies_features(self):
        table = EdgeTable(np.array([1]), np.array([2]), features=np.array([[7.0]]))
        sym = EdgeTable.symmetrize(table)
        np.testing.assert_allclose(sym.features, [[7.0], [7.0]])


class TestAttributedGraph:
    def test_in_out_neighbors(self, tiny_tables):
        graph = AttributedGraph(*tiny_tables)
        a = graph.index_of([10])[0]
        b, c = graph.index_of([11])[0], graph.index_of([12])[0]
        assert set(graph.in_neighbors(a).tolist()) == {b, c}
        e = graph.index_of([14])[0]
        assert set(graph.out_neighbors(a).tolist()) == {e}

    def test_degrees_total_edges(self, tiny_tables):
        graph = AttributedGraph(*tiny_tables)
        assert graph.in_degrees().sum() == graph.num_edges
        assert graph.out_degrees().sum() == graph.num_edges

    def test_dense_adjacency_weights(self, tiny_tables):
        graph = AttributedGraph(*tiny_tables)
        adj = graph.dense_adjacency()
        a, c = graph.index_of([10])[0], graph.index_of([12])[0]
        assert adj[a, c] == 2.0  # C -> A weight 2

    def test_k_hop_ancestors(self, tiny_tables):
        graph = AttributedGraph(*tiny_tables)
        a = graph.index_of([10])[0]
        keep, dist = graph.k_hop_ancestors([a], 2)
        found = {int(graph.node_ids[k]): int(d) for k, d in zip(keep, dist)}
        # A<-B, A<-C (1 hop); B<-D, C<-D (2 hops)
        assert found == {10: 0, 11: 1, 12: 1, 13: 2}

    def test_csr_matches_edge_list(self, rng):
        n, m = 30, 120
        nodes = NodeTable(np.arange(n), rng.standard_normal((n, 2)))
        edges = EdgeTable(rng.integers(0, n, m), rng.integers(0, n, m))
        graph = AttributedGraph(nodes, edges)
        for v in range(n):
            expected = np.sort(edges.src[edges.dst == v])
            np.testing.assert_array_equal(np.sort(graph.in_neighbors(v)), expected)


class TestValidation:
    def test_valid_tables_pass(self, tiny_tables):
        validate_tables(*tiny_tables)
        validate_graph(AttributedGraph(*tiny_tables))

    def test_missing_endpoint_reported(self):
        nodes = NodeTable(np.array([1]), np.zeros((1, 1)))
        edges = EdgeTable(np.array([1]), np.array([99]))
        with pytest.raises(GraphValidationError, match="destination"):
            validate_tables(nodes, edges)

    def test_nan_features_reported(self):
        nodes = NodeTable(np.array([1]), np.array([[np.nan]]))
        edges = EdgeTable(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        with pytest.raises(GraphValidationError, match="NaN"):
            validate_tables(nodes, edges)

    def test_multiple_problems_aggregated(self):
        nodes = NodeTable(np.array([1]), np.array([[np.nan]]))
        edges = EdgeTable(np.array([8]), np.array([9]))
        with pytest.raises(GraphValidationError) as err:
            validate_tables(nodes, edges)
        assert str(err.value).count(";") >= 2


class TestGraphFeature:
    def make(self, ids, targets, edges, hops=None):
        ids = np.asarray(ids)
        n = len(ids)
        hops = np.zeros(n, dtype=np.int64) if hops is None else np.asarray(hops)
        src = np.asarray([e[0] for e in edges], dtype=np.int64)
        dst = np.asarray([e[1] for e in edges], dtype=np.int64)
        return GraphFeature(targets, ids, np.eye(n, 3, dtype=np.float32), hops, src, dst)

    def test_target_must_be_present(self):
        with pytest.raises(ValueError):
            self.make([4, 5], [6], [])

    def test_edge_range_checked(self):
        with pytest.raises(ValueError):
            self.make([4, 5], [4], [(0, 9)])

    def test_target_index(self):
        gf = self.make([4, 5, 6], [6, 4], [])
        np.testing.assert_array_equal(gf.target_index, [2, 0])

    def test_sorted_by_destination(self):
        gf = self.make([4, 5, 6], [4], [(2, 1), (1, 0), (2, 0)])
        s = gf.sorted_by_destination()
        assert np.all(np.diff(s.edge_dst) >= 0)
        assert s.num_edges == 3

    def test_merge_dedupes_nodes_and_edges(self):
        a = self.make([1, 2], [1], [(1, 0)], hops=[0, 1])
        b = self.make([2, 3], [2], [(1, 0)], hops=[0, 1])  # edge 3->2
        merged = merge_graph_features([a, b])
        assert merged.num_nodes == 3
        assert merged.num_edges == 2
        np.testing.assert_array_equal(np.sort(merged.target_ids), [1, 2])

    def test_merge_takes_min_hops(self):
        a = self.make([1, 2], [1], [], hops=[0, 2])
        b = self.make([2], [2], [], hops=[0])
        merged = merge_graph_features([a, b])
        hop_of_2 = merged.hops[merged.node_ids == 2][0]
        assert hop_of_2 == 0  # node 2 is itself a target in b

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_graph_features([])

    @given(seed=st.integers(0, 2**16), parts=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_merge_node_set_is_union(self, seed, parts):
        rng = np.random.default_rng(seed)
        gfs = []
        for _ in range(parts):
            n = rng.integers(1, 8)
            ids = np.sort(rng.choice(40, size=n, replace=False))
            hops = rng.integers(0, 3, n)
            target_pos = rng.integers(0, n)
            hops[target_pos] = 0
            gfs.append(
                GraphFeature(
                    [ids[target_pos]],
                    ids,
                    rng.standard_normal((n, 2)).astype(np.float32),
                    hops,
                    np.zeros(0, np.int64),
                    np.zeros(0, np.int64),
                )
            )
        merged = merge_graph_features(gfs)
        union = sorted(set(int(i) for gf in gfs for i in gf.node_ids))
        assert merged.node_ids.tolist() == union
