"""Baseline systems (full-graph trainers, original inference) and utilities
(timers, RNG helpers)."""

import numpy as np
import pytest

from repro.baselines import FullGraphConfig, FullGraphTrainer, OriginalInference
from repro.baselines.fullgraph import GraphTooLargeError
from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.nn.gnn import GCNModel
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.timer import Timer, TimerRegistry


class TestFullGraphTrainer:
    def test_trains_to_better_than_chance(self, mini_cora):
        ds = mini_cora
        model = GCNModel(ds.feature_dim, 12, ds.num_classes, num_layers=2, seed=0)
        trainer = FullGraphTrainer(model, ds, FullGraphConfig(epochs=30, lr=0.02))
        history = trainer.fit()
        assert history[-1]["loss"] < history[0]["loss"] * 0.5
        assert trainer.evaluate("val") > 2.0 / ds.num_classes

    def test_fused_and_scatter_identical_results(self, mini_cora):
        """The DGL/PyG proxies differ in kernel, never in math."""
        ds = mini_cora
        outs = []
        for aggregation in ("fused", "scatter"):
            model = GCNModel(ds.feature_dim, 8, ds.num_classes, num_layers=2, seed=1)
            trainer = FullGraphTrainer(
                model, ds, FullGraphConfig(epochs=3, lr=0.01, aggregation=aggregation)
            )
            history = trainer.fit()
            outs.append([h["loss"] for h in history])
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-4)

    def test_oom_guard_trips(self, mini_cora):
        ds = mini_cora
        model = GCNModel(ds.feature_dim, 8, ds.num_classes, seed=0)
        with pytest.raises(GraphTooLargeError):
            FullGraphTrainer(
                model, ds, FullGraphConfig(max_nodes_in_memory=10)
            )

    def test_bad_aggregation(self):
        with pytest.raises(ValueError):
            FullGraphConfig(aggregation="magic")


class TestOriginalInference:
    def test_counts_repetition(self, mini_cora):
        ds = mini_cora
        model = GCNModel(ds.feature_dim, 8, ds.num_classes, num_layers=2, seed=0)
        flat = graph_flat(
            ds.nodes, ds.edges, ds.train_ids[:10],
            GraphFlatConfig(hops=2, max_neighbors=10**9, hub_threshold=10**9),
        )
        small_batches = OriginalInference(model, batch_size=1, pruning=False).run(flat.samples)
        one_batch = OriginalInference(model, batch_size=10, pruning=False).run(flat.samples)
        # merging shares overlap, so bigger batches do strictly less work
        assert one_batch.embedding_computations <= small_batches.embedding_computations
        # same answers either way
        for tid, scores in small_batches.scores.items():
            np.testing.assert_allclose(one_batch.scores[tid], scores, rtol=1e-4, atol=1e-5)

    def test_pruning_reduces_work_not_results(self, mini_cora):
        ds = mini_cora
        model = GCNModel(ds.feature_dim, 8, ds.num_classes, num_layers=2, seed=0)
        flat = graph_flat(
            ds.nodes, ds.edges, ds.train_ids[:10],
            GraphFlatConfig(hops=2, max_neighbors=10**9, hub_threshold=10**9),
        )
        pruned = OriginalInference(model, batch_size=5, pruning=True).run(flat.samples)
        full = OriginalInference(model, batch_size=5, pruning=False).run(flat.samples)
        assert pruned.embedding_computations < full.embedding_computations
        for tid, scores in full.scores.items():
            np.testing.assert_allclose(pruned.scores[tid], scores, rtol=1e-3, atol=1e-4)


class TestTimerIntervals:
    def test_intervals_recorded_when_enabled(self):
        t = Timer("x", keep_intervals=True)
        with t.timing():
            pass
        assert len(t.intervals) == 1
        start, stop = t.intervals[0]
        assert stop >= start

    def test_intervals_off_by_default(self):
        t = Timer("x")
        with t.timing():
            pass
        assert t.intervals == []

    def test_overlap_seconds(self):
        a = Timer("a", keep_intervals=True)
        b = Timer("b", keep_intervals=True)
        a.intervals = [(0.0, 2.0), (5.0, 6.0)]
        b.intervals = [(1.0, 5.5)]
        assert Timer.overlap_seconds(a, b) == pytest.approx(1.0 + 0.5)

    def test_registry_propagates_flag(self):
        reg = TimerRegistry(keep_intervals=True)
        with reg.timing("x"):
            pass
        assert len(reg["x"].intervals) == 1

    def test_reset_clears_intervals(self):
        t = Timer("x", keep_intervals=True)
        with t.timing():
            pass
        t.reset()
        assert t.intervals == []


class TestTimer:
    def test_accumulates(self):
        t = Timer("x")
        with t.timing():
            pass
        with t.timing():
            pass
        assert t.count == 2
        assert t.total >= 0
        assert t.mean == pytest.approx(t.total / 2)

    def test_double_start_rejected(self):
        t = Timer("x")
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer("x").stop()

    def test_registry_report(self):
        reg = TimerRegistry()
        with reg.timing("alpha"):
            pass
        assert "alpha" in reg
        assert "alpha" in reg.report()
        reg.reset()
        assert reg["alpha"].count == 0


class TestRng:
    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_new_rng_seeded_deterministic(self):
        assert new_rng(5).random() == new_rng(5).random()

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        first = [g.random() for g in spawn_rngs(42, 3)]
        second = [g.random() for g in spawn_rngs(42, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
