"""Shared fixtures: miniature datasets and graphs sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import cora_like, ppi_like, uug_like
from repro.graph.tables import EdgeTable, NodeTable


@pytest.fixture(scope="session")
def mini_cora():
    """300-node cora-like graph (session-scoped: generators are pure)."""
    return cora_like(seed=7, num_nodes=300, num_edges=900)


@pytest.fixture(scope="session")
def mini_ppi():
    return ppi_like(seed=7, num_graphs=6, nodes_per_graph=80, avg_degree=6, num_labels=12)


@pytest.fixture(scope="session")
def mini_uug():
    return uug_like(
        seed=7, num_nodes=800, avg_degree=6, feature_dim=16, num_hubs=3, hub_degree=120
    )


@pytest.fixture()
def tiny_tables():
    """Hand-built 5-node graph (the Figure 2 example shape):

        B -> A,  C -> A,  D -> B,  D -> C,  E -> D,  A -> E
    """
    ids = np.array([10, 11, 12, 13, 14])  # A B C D E
    feats = np.eye(5, 3, dtype=np.float32)
    labels = np.array([1, 0, 0, 1, 0])
    nodes = NodeTable(ids, feats, labels)
    src = np.array([11, 12, 13, 13, 14, 10])
    dst = np.array([10, 10, 11, 12, 13, 14])
    weights = np.array([1.0, 2.0, 1.0, 1.0, 3.0, 1.0], dtype=np.float32)
    edge_feat = np.arange(12, dtype=np.float32).reshape(6, 2)
    edges = EdgeTable(src, dst, edge_feat, weights)
    return nodes, edges


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
