"""Wire format: varints, GraphFeature codec, framed streams (property-based
round trips — this is what 'flattened to protobuf strings' must guarantee)."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.subgraph import GraphFeature
from repro.proto import (
    CodecError,
    decode_graph_feature,
    decode_sample,
    decode_signed,
    decode_unsigned,
    encode_graph_feature,
    encode_sample,
    encode_signed,
    encode_unsigned,
    read_records,
    write_records,
)
from repro.proto.stream import StreamCorruptionError


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_unsigned_round_trip(self, value):
        decoded, offset = decode_unsigned(encode_unsigned(value))
        assert decoded == value
        assert offset == len(encode_unsigned(value))

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_signed_round_trip(self, value):
        decoded, _ = decode_signed(encode_signed(value))
        assert decoded == value

    def test_small_values_one_byte(self):
        for v in range(128):
            assert len(encode_unsigned(v)) == 1

    def test_zigzag_keeps_small_negatives_small(self):
        assert len(encode_signed(-1)) == 1
        assert len(encode_signed(-64)) == 1

    def test_negative_unsigned_rejected(self):
        with pytest.raises(ValueError):
            encode_unsigned(-1)

    def test_truncated_varint(self):
        with pytest.raises(ValueError):
            decode_unsigned(b"\x80")

    def test_overlong_varint_rejected(self):
        with pytest.raises(ValueError):
            decode_unsigned(b"\x80" * 11)


def make_gf(rng, n=6, m=10, fn=4, fe=2, with_edge_feat=True):
    node_ids = np.sort(rng.choice(10_000, size=n, replace=False)).astype(np.int64)
    x = rng.standard_normal((n, fn)).astype(np.float32)
    hops = rng.integers(0, 3, n)
    target = node_ids[int(np.flatnonzero(hops == hops.min())[0])]
    hops[node_ids == target] = 0
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    ef = rng.standard_normal((m, fe)).astype(np.float32) if with_edge_feat else None
    w = rng.uniform(0.1, 2.0, m).astype(np.float32)
    return GraphFeature([target], node_ids, x, hops, src, dst, ef, w)


class TestGraphFeatureCodec:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 12),
        m=st.integers(0, 25),
        with_ef=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, seed, n, m, with_ef):
        rng = np.random.default_rng(seed)
        gf = make_gf(rng, n=n, m=m, with_edge_feat=with_ef)
        decoded, _ = decode_graph_feature(encode_graph_feature(gf))
        np.testing.assert_array_equal(decoded.node_ids, gf.node_ids)
        np.testing.assert_array_equal(decoded.target_ids, gf.target_ids)
        np.testing.assert_array_equal(decoded.hops, gf.hops)
        np.testing.assert_array_equal(decoded.edge_src, gf.edge_src)
        np.testing.assert_array_equal(decoded.edge_dst, gf.edge_dst)
        np.testing.assert_allclose(decoded.x, gf.x)
        np.testing.assert_allclose(decoded.edge_weight, gf.edge_weight)
        if with_ef:
            np.testing.assert_allclose(decoded.edge_feat, gf.edge_feat)
        else:
            assert decoded.edge_feat is None

    def test_bad_magic(self, rng):
        data = bytearray(encode_graph_feature(make_gf(rng)))
        data[0] = ord("X")
        with pytest.raises(CodecError):
            decode_graph_feature(bytes(data))

    def test_truncation_detected(self, rng):
        data = encode_graph_feature(make_gf(rng))
        with pytest.raises((CodecError, ValueError)):
            decode_graph_feature(data[: len(data) // 2])


class TestDecoderRobustness:
    @given(st.binary(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_never_crash_unexpectedly(self, blob):
        """Fuzz: hostile/corrupt input must raise a codec-family error,
        never segfault-style surprises or silent success on garbage."""
        try:
            decode_graph_feature(blob)
        except (CodecError, ValueError):
            pass

    @given(st.integers(0, 2**16), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_random_truncations_detected(self, seed, cut):
        rng = np.random.default_rng(seed)
        data = encode_graph_feature(make_gf(rng))
        cut = min(cut, len(data) - 1)
        try:
            gf, offset = decode_graph_feature(data[:-cut])
            # decoding may only "succeed" if the truncation hit trailing
            # bytes beyond what the record needed — then offset is exact
            assert offset <= len(data) - cut
        except (CodecError, ValueError):
            pass


class TestSampleCodec:
    def test_int_label(self, rng):
        gf = make_gf(rng)
        tid, label, decoded = decode_sample(encode_sample(42, 3, gf))
        assert (tid, label) == (42, 3)
        np.testing.assert_array_equal(decoded.node_ids, gf.node_ids)

    def test_vector_label(self, rng):
        gf = make_gf(rng)
        vec = np.array([0.0, 1.0, 1.0], dtype=np.float32)
        _, label, _ = decode_sample(encode_sample(-7, vec, gf))
        np.testing.assert_allclose(label, vec)

    def test_none_label(self, rng):
        _, label, _ = decode_sample(encode_sample(0, None, make_gf(rng)))
        assert label is None

    def test_trailing_bytes_rejected(self, rng):
        data = encode_sample(1, None, make_gf(rng)) + b"junk"
        with pytest.raises(CodecError):
            decode_sample(data)


class TestRecordStream:
    def test_round_trip_file(self, tmp_path):
        records = [b"alpha", b"", b"x" * 1000]
        path = tmp_path / "part-00000"
        assert write_records(path, records) == 3
        assert list(read_records(path)) == records

    def test_round_trip_buffer(self):
        buf = io.BytesIO()
        write_records(buf, [b"a", b"bb"])
        assert list(read_records(buf.getvalue())) == [b"a", b"bb"]

    def test_crc_corruption_detected(self, tmp_path):
        path = tmp_path / "part"
        write_records(path, [b"hello world"])
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StreamCorruptionError):
            list(read_records(path))

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "part"
        write_records(path, [b"hello world"])
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(StreamCorruptionError):
            list(read_records(path))

    @given(st.lists(st.binary(max_size=200), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_payloads(self, records):
        buf = io.BytesIO()
        write_records(buf, records)
        assert list(read_records(buf.getvalue())) == records
