"""GraphFlat: k-hop correctness vs BFS ground truth, sampling caps,
re-indexing equivalence, fault-tolerance invariance, storing."""

import numpy as np
import pytest

from repro.core.graphflat import (
    GraphFlatConfig,
    SubgraphInfo,
    TopKSampling,
    UniformSampling,
    WeightedSampling,
    graph_flat,
    make_sampler,
)
from repro.core.graphflat.records import InEdgeInfo
from repro.graph import AttributedGraph
from repro.mapreduce import DistFileSystem, FailureInjector, LocalRuntime
from repro.proto import decode_sample

NO_SAMPLING = dict(max_neighbors=10**9, hub_threshold=10**9)


def flat_samples(nodes, edges, targets, **kwargs):
    config = GraphFlatConfig(**{**NO_SAMPLING, **kwargs})
    return graph_flat(nodes, edges, targets, config).samples


class TestKHopCorrectness:
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_nodes_and_hops_match_bfs(self, mini_cora, hops):
        ds = mini_cora
        graph = ds.to_graph()
        targets = ds.train_ids[:12]
        samples = flat_samples(ds.nodes, ds.edges, targets, hops=hops)
        assert len(samples) == len(targets)
        for record in samples:
            tid, _, gf = decode_sample(record)
            keep, dist = graph.k_hop_ancestors(graph.index_of(tid), hops)
            expected = {int(graph.node_ids[k]): int(d) for k, d in zip(keep, dist)}
            got = {int(i): int(h) for i, h in zip(gf.node_ids, gf.hops)}
            assert got == expected

    def test_tiny_graph_shape(self, tiny_tables):
        nodes, edges = tiny_tables
        samples = flat_samples(nodes, edges, [10], hops=2)
        _, label, gf = decode_sample(samples[0])
        assert label == 1
        # A's 2-hop in-ancestry: A(0), B(1), C(1), D(2)
        assert sorted(gf.node_ids.tolist()) == [10, 11, 12, 13]
        # edges on paths: B->A, C->A, D->B, D->C
        assert gf.num_edges == 4
        # edge features survive the pipeline
        assert gf.edge_feat is not None and gf.edge_feat.shape[1] == 2

    def test_labels_carried(self, mini_cora):
        ds = mini_cora
        targets = ds.train_ids[:5]
        samples = flat_samples(ds.nodes, ds.edges, targets)
        for record in samples:
            tid, label, _ = decode_sample(record)
            assert label == int(ds.labels_of([tid])[0])

    def test_multilabel_labels_carried(self, mini_ppi):
        ds = mini_ppi
        targets = ds.train_ids[:4]
        samples = flat_samples(ds.nodes, ds.edges, targets)
        for record in samples:
            tid, label, _ = decode_sample(record)
            np.testing.assert_allclose(label, ds.labels_of([tid])[0])

    def test_missing_target_rejected(self, tiny_tables):
        nodes, edges = tiny_tables
        with pytest.raises(KeyError):
            flat_samples(nodes, edges, [999])

    def test_all_nodes_when_targets_none(self, tiny_tables):
        nodes, edges = tiny_tables
        samples = flat_samples(nodes, edges, None)
        assert len(samples) == len(nodes)

    def test_self_loops_in_input_survive(self):
        """Industrial edge tables contain self-interactions; the pipeline
        must keep them as ordinary edges without corrupting hop counts."""
        from repro.graph import EdgeTable, NodeTable

        nodes = NodeTable(np.array([1, 2]), np.eye(2, 3, dtype=np.float32))
        edges = EdgeTable(np.array([1, 2]), np.array([1, 1]))  # 1->1 loop
        samples = flat_samples(nodes, edges, [1], hops=2)
        _, _, gf = decode_sample(samples[0])
        assert gf.hops[gf.node_ids == 1][0] == 0  # loop never inflates hops
        pairs = set(zip(gf.node_ids[gf.edge_src], gf.node_ids[gf.edge_dst]))
        assert (1, 1) in pairs and (2, 1) in pairs


class TestSampling:
    def make_ins(self, n):
        return [
            InEdgeInfo(src=i, weight=float(i + 1), edge_feat=None, subgraph=None)
            for i in range(n)
        ]

    def test_no_op_below_cap(self):
        sampler = UniformSampling(10, seed=0)
        ins = self.make_ins(5)
        assert sampler.select(ins, 1, 1) == ins

    def test_uniform_caps_and_is_deterministic(self):
        sampler = UniformSampling(4, seed=0)
        ins = self.make_ins(20)
        a = sampler.select(ins, 7, 1)
        b = sampler.select(list(reversed(ins)), 7, 1)  # arrival order must not matter
        assert len(a) == 4
        assert [e.src for e in a] == [e.src for e in b]

    def test_different_nodes_sample_differently(self):
        sampler = UniformSampling(4, seed=0)
        ins = self.make_ins(30)
        a = [e.src for e in sampler.select(ins, 1, 1)]
        b = [e.src for e in sampler.select(ins, 2, 1)]
        assert a != b  # overwhelmingly likely by construction

    def test_topk_keeps_heaviest(self):
        sampler = TopKSampling(3, seed=0)
        kept = sampler.select(self.make_ins(10), 1, 1)
        assert sorted(e.src for e in kept) == [7, 8, 9]

    def test_weighted_biases_toward_heavy(self):
        sampler = WeightedSampling(5, seed=0)
        ins = self.make_ins(100)
        kept = {e.src for e in sampler.select(ins, 1, 1)}
        assert np.mean(sorted(kept)) > 40  # heavy tail favoured

    def test_registry(self):
        assert isinstance(make_sampler("uniform", 5), UniformSampling)
        with pytest.raises(KeyError):
            make_sampler("magic", 5)

    def test_neighborhood_size_capped(self, mini_uug):
        ds = mini_uug
        config = GraphFlatConfig(
            hops=2, max_neighbors=5, hub_threshold=10**9, sampling="uniform"
        )
        res = graph_flat(ds.nodes, ds.edges, ds.train_ids[:20], config)
        # each round caps in-edges at 5, so nodes <= 1 + 5 + 5*5
        assert res.neighborhood_nodes.max() <= 31


class TestReindexing:
    def test_reindex_matches_plain_when_no_sampling(self, mini_uug):
        """Hub splitting + inverted indexing must be a pure repartitioning:
        with sampling disabled the outputs are identical byte-for-byte."""
        ds = mini_uug
        targets = ds.train_ids[:15]
        plain = flat_samples(ds.nodes, ds.edges, targets, hops=2)
        config = GraphFlatConfig(
            hops=2, max_neighbors=10**9, hub_threshold=50, reindex_fanout=4
        )
        res = graph_flat(ds.nodes, ds.edges, targets, config)
        assert res.hub_nodes  # the uug fixture has hubs above threshold
        assert sorted(plain) == sorted(res.samples)

    def test_reindex_improves_reducer_balance(self, mini_uug):
        """With re-indexing, the max records a single reducer group sees in
        the merge round drops (hub in-edges are split across suffixes)."""
        ds = mini_uug
        config = GraphFlatConfig(hops=1, max_neighbors=10**9, hub_threshold=50)
        res = graph_flat(ds.nodes, ds.edges, ds.train_ids[:10], config)
        assert res.hub_nodes
        # the partial (re-indexed) round exists: rounds = map, reindex, merge
        names = [s.job for s in res.round_stats]
        assert any("reindex" in n for n in names)


class TestFaultTolerance:
    def test_same_output_under_failures(self, mini_cora):
        ds = mini_cora
        targets = ds.train_ids[:8]
        baseline = flat_samples(ds.nodes, ds.edges, targets, hops=2)
        runtime = LocalRuntime(
            max_attempts=10, failure_injector=FailureInjector(0.25, seed=13)
        )
        config = GraphFlatConfig(hops=2, **NO_SAMPLING)
        out = graph_flat(ds.nodes, ds.edges, targets, config, runtime=runtime).samples
        assert runtime.injector.injected > 0
        assert sorted(baseline) == sorted(out)

    def test_sampling_stable_under_failures(self, mini_uug):
        """Sampling is keyed by (seed, node, round), so re-executed reducers
        pick the same neighbors — output invariant even with sampling on."""
        ds = mini_uug
        targets = ds.train_ids[:8]
        config = GraphFlatConfig(hops=2, max_neighbors=6, hub_threshold=10**9, seed=3)
        baseline = graph_flat(ds.nodes, ds.edges, targets, config).samples
        runtime = LocalRuntime(
            max_attempts=10, failure_injector=FailureInjector(0.25, seed=29)
        )
        out = graph_flat(ds.nodes, ds.edges, targets, config, runtime=runtime).samples
        assert sorted(baseline) == sorted(out)


class TestStoring:
    def test_writes_sharded_dataset(self, tiny_tables, tmp_path):
        """Default (reducer-owned) sink: one shard per final-round reducer."""
        nodes, edges = tiny_tables
        fs = DistFileSystem(tmp_path)
        config = GraphFlatConfig(hops=2, num_reducers=4, **NO_SAMPLING)
        res = graph_flat(nodes, edges, None, config, fs=fs, dataset_name="flat/all")
        assert res.dataset == "flat/all"
        assert fs.num_shards("flat/all") == 4
        decoded = [decode_sample(r)[0] for r in fs.read_dataset("flat/all")]
        assert sorted(decoded) == sorted(nodes.ids.tolist())

    def test_parent_sink_honors_num_shards(self, tiny_tables, tmp_path):
        nodes, edges = tiny_tables
        fs = DistFileSystem(tmp_path)
        config = GraphFlatConfig(
            hops=2, num_shards=2, dataset_sink="parent", **NO_SAMPLING
        )
        res = graph_flat(nodes, edges, None, config, fs=fs, dataset_name="flat/all")
        assert res.dataset == "flat/all"
        assert fs.num_shards("flat/all") == 2
        decoded = [decode_sample(r)[0] for r in fs.read_dataset("flat/all")]
        assert sorted(decoded) == sorted(nodes.ids.tolist())

    def test_sink_modes_byte_identical_stream(self, tiny_tables, tmp_path):
        """The global record stream must not depend on who wrote the shards."""
        nodes, edges = tiny_tables
        fs = DistFileSystem(tmp_path)
        base = GraphFlatConfig(hops=2, **NO_SAMPLING)
        graph_flat(nodes, edges, None, base, fs=fs, dataset_name="flat/reducer")
        parent_cfg = GraphFlatConfig(hops=2, dataset_sink="parent", **NO_SAMPLING)
        graph_flat(nodes, edges, None, parent_cfg, fs=fs, dataset_name="flat/parent")
        assert list(fs.read_dataset("flat/reducer")) == list(fs.read_dataset("flat/parent"))


class TestSubgraphInfo:
    def test_absorb_neighbor_hops_shift(self):
        a = SubgraphInfo.seed(1, np.zeros(2, np.float32))
        b = SubgraphInfo.seed(2, np.ones(2, np.float32))
        a.absorb_neighbor(b, weight=1.5, edge_feat=None)
        assert a.nodes[2][1] == 1
        assert a.edges[(2, 1)][0] == 1.5

    def test_absorb_keeps_min_hop(self):
        a = SubgraphInfo.seed(1, np.zeros(1, np.float32))
        far = SubgraphInfo(root=3, nodes={3: (np.ones(1, np.float32), 0), 1: (np.zeros(1, np.float32), 5)})
        a.absorb_neighbor(far, 1.0, None)
        assert a.nodes[1][1] == 0  # own distance never degraded

    def test_partial_merge_requires_same_root(self):
        a = SubgraphInfo.seed(1, np.zeros(1, np.float32))
        b = SubgraphInfo.seed(2, np.zeros(1, np.float32))
        with pytest.raises(ValueError):
            a.absorb_partial(b)

    def test_to_graph_feature_round_trip(self):
        a = SubgraphInfo.seed(5, np.array([1.0, 2.0], np.float32))
        b = SubgraphInfo.seed(9, np.array([3.0, 4.0], np.float32))
        a.absorb_neighbor(b, 2.0, np.array([7.0], np.float32))
        gf = a.to_graph_feature()
        assert gf.num_nodes == 2 and gf.num_edges == 1
        assert gf.target_ids.tolist() == [5]
        s, d = gf.edge_src[0], gf.edge_dst[0]
        assert gf.node_ids[s] == 9 and gf.node_ids[d] == 5
        np.testing.assert_allclose(gf.edge_feat, [[7.0]])
