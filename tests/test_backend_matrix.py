"""Backend matrix for the full pipelines: the ``processes`` backend (and the
partitioned spill shuffle) must be byte-identical to ``serial`` on GraphFlat
— including hub re-indexing — and on GraphInfer, with and without injected
worker failures.  This is the acceptance bar for §3.2's claim that MapReduce
parallelism never changes pipeline output."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.infer import GraphInferConfig, graph_infer
from repro.mapreduce import FailureInjector, LocalRuntime
from repro.nn.gnn import build_model


@pytest.fixture(scope="module")
def hub_graph():
    """~120-node graph with two genuine hubs (in-degree 30 > threshold 8),
    so hub re-indexing is active in every test here."""
    from repro.datasets import uug_like

    return uug_like(
        seed=5, num_nodes=120, avg_degree=4, feature_dim=6, num_hubs=2, hub_degree=30
    )


def flat_config(**overrides):
    base = dict(hops=2, max_neighbors=4, hub_threshold=8, num_reducers=4, seed=0)
    base.update(overrides)
    return GraphFlatConfig(**base)


class TestGraphFlatBackendMatrix:
    def test_processes_byte_identical_with_hub_reindexing(self, hub_graph):
        ds = hub_graph
        targets = ds.train_ids[:30]
        serial = graph_flat(ds.nodes, ds.edges, targets, flat_config())
        assert serial.hub_nodes, "fixture must trigger re-indexing"
        with LocalRuntime(backend="processes", max_workers=2) as runtime:
            procs = graph_flat(ds.nodes, ds.edges, targets, flat_config(), runtime)
        assert procs.hub_nodes == serial.hub_nodes
        assert procs.samples == serial.samples  # encoded wire bytes

    def test_processes_via_config_knobs(self, hub_graph):
        ds = hub_graph
        targets = ds.train_ids[:20]
        serial = graph_flat(ds.nodes, ds.edges, targets, flat_config())
        procs = graph_flat(
            ds.nodes, ds.edges, targets,
            flat_config(backend="processes", num_workers=2),
        )
        assert procs.samples == serial.samples

    def test_fault_injection_under_processes(self, hub_graph):
        ds = hub_graph
        targets = ds.train_ids[:20]
        baseline = graph_flat(ds.nodes, ds.edges, targets, flat_config())
        injector = FailureInjector(rate=0.2, seed=13)
        with LocalRuntime(
            backend="processes", max_workers=2, max_attempts=10,
            failure_injector=injector,
        ) as runtime:
            faulty = graph_flat(ds.nodes, ds.edges, targets, flat_config(), runtime)
        assert injector.injected > 0
        assert faulty.samples == baseline.samples

    def test_spill_shuffle_byte_identical(self, hub_graph, tmp_path):
        ds = hub_graph
        targets = ds.train_ids[:20]
        baseline = graph_flat(ds.nodes, ds.edges, targets, flat_config())
        with LocalRuntime(
            backend="threads", max_workers=3, spill_dir=tmp_path
        ) as runtime:
            spilled = graph_flat(ds.nodes, ds.edges, targets, flat_config(), runtime)
        assert spilled.samples == baseline.samples
        assert not list(tmp_path.glob("*.pkl"))  # cleaned up per job


class TestShuffleCodecMatrix:
    """The codec invariant of the binary spill format: GraphFlat/GraphInfer
    output is byte-identical across {serial, threads, processes} x {pickle,
    binary} x {1, 2, 4} workers — the acceptance bar for swapping pickled
    object graphs for flat records on the hot shuffle path."""

    def test_graphflat_codecs_byte_identical(self, hub_graph, tmp_path):
        ds = hub_graph
        targets = ds.train_ids[:30]
        baseline = graph_flat(
            ds.nodes, ds.edges, targets, flat_config(shuffle_codec="pickle")
        )
        assert baseline.hub_nodes, "fixture must trigger re-indexing"
        bytes_by_codec = {}
        for codec in ("pickle", "binary"):
            for backend, workers in [("serial", None), ("threads", 2)]:
                with LocalRuntime(
                    backend=backend, max_workers=workers,
                    spill_dir=tmp_path / f"{codec}-{backend}", shuffle_codec=codec,
                ) as runtime:
                    result = graph_flat(
                        ds.nodes, ds.edges, targets, flat_config(), runtime
                    )
                assert result.samples == baseline.samples, (codec, backend)
                bytes_by_codec[codec] = sum(
                    rs.shuffle_bytes_written for rs in result.round_stats
                )
        # the codec's point: same bytes out of the pipeline, fewer on disk
        assert 0 < bytes_by_codec["binary"] < bytes_by_codec["pickle"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_graphflat_binary_processes_byte_identical(self, hub_graph, workers):
        ds = hub_graph
        targets = ds.train_ids[:30]
        baseline = graph_flat(
            ds.nodes, ds.edges, targets, flat_config(shuffle_codec="pickle")
        )
        with LocalRuntime(
            backend="processes", max_workers=workers, shuffle_codec="binary"
        ) as runtime:
            result = graph_flat(ds.nodes, ds.edges, targets, flat_config(), runtime)
        assert result.samples == baseline.samples

    @pytest.mark.parametrize("codec", ["pickle", "binary"])
    def test_graphinfer_codecs_identical_scores(self, hub_graph, tmp_path, codec):
        ds = hub_graph
        model = build_model(
            "gcn", in_dim=6, hidden_dim=8, num_classes=2, num_layers=2, seed=0
        )
        config = GraphInferConfig(
            max_neighbors=4, hub_threshold=8, num_reducers=4, seed=0
        )
        serial = graph_infer(model, ds.nodes, ds.edges, config)
        with LocalRuntime(
            backend="threads", max_workers=2, spill_dir=tmp_path, shuffle_codec=codec
        ) as runtime:
            spilled = graph_infer(model, ds.nodes, ds.edges, config, runtime)
        assert set(spilled.scores) == set(serial.scores)
        for node_id, scores in serial.scores.items():
            assert np.array_equal(spilled.scores[node_id], scores)

    def test_graphinfer_binary_processes_identical_scores(self, hub_graph):
        ds = hub_graph
        model = build_model(
            "gcn", in_dim=6, hidden_dim=8, num_classes=2, num_layers=2, seed=0
        )
        config = GraphInferConfig(
            max_neighbors=4, hub_threshold=8, num_reducers=4, seed=0,
        )
        serial = graph_infer(model, ds.nodes, ds.edges, config)
        with LocalRuntime(
            backend="processes", max_workers=2, shuffle_codec="binary"
        ) as runtime:
            procs = graph_infer(model, ds.nodes, ds.edges, config, runtime)
        assert set(procs.scores) == set(serial.scores)
        for node_id, scores in serial.scores.items():
            assert np.array_equal(procs.scores[node_id], scores)


class TestTaskBackendMatrix:
    """The byte-identity bar extended across the task zoo: every task's
    GraphFlat output is identical over {serial, threads, processes} x
    {pickle, binary}, so the task plugin layer inherits the full
    parallelism guarantee rather than re-proving it per task."""

    @pytest.fixture(scope="class")
    def edge_graph(self):
        from repro.datasets import labeled_edges_like

        return labeled_edges_like(seed=7, num_nodes=100, num_edges=360, feature_dim=6)

    def task_config(self, task):
        base = dict(hops=2, max_neighbors=6, num_reducers=4, seed=0, task=task)
        if task != "node_classification":
            base["edge_targets"] = 25
        return GraphFlatConfig(**base)

    @pytest.mark.parametrize(
        "task", ["node_classification", "link_prediction", "edge_classification"]
    )
    @pytest.mark.parametrize("backend,codec", [
        ("threads", "pickle"), ("threads", "binary"), ("processes", "binary"),
    ])
    def test_graphflat_byte_identical_per_task(
        self, edge_graph, tmp_path, task, backend, codec
    ):
        nodes, edges = edge_graph
        targets = None
        if task == "node_classification":
            targets = np.arange(0, 100, 4)
        baseline = graph_flat(nodes, edges, targets, self.task_config(task))
        with LocalRuntime(
            backend=backend, max_workers=2,
            spill_dir=tmp_path, shuffle_codec=codec,
        ) as runtime:
            result = graph_flat(
                nodes, edges, targets, self.task_config(task), runtime
            )
        assert result.samples == baseline.samples

    @pytest.mark.parametrize("task", ["link_prediction", "edge_classification"])
    def test_graphflat_fault_injection_per_edge_task(self, edge_graph, task):
        nodes, edges = edge_graph
        baseline = graph_flat(nodes, edges, config=self.task_config(task))
        injector = FailureInjector(rate=0.2, seed=13)
        with LocalRuntime(
            backend="processes", max_workers=2, max_attempts=10,
            failure_injector=injector,
        ) as runtime:
            faulty = graph_flat(nodes, edges, config=self.task_config(task), runtime=runtime)
        assert injector.injected > 0
        assert faulty.samples == baseline.samples


class TestGraphInferBackendMatrix:
    def test_processes_identical_scores(self, hub_graph):
        ds = hub_graph
        model = build_model(
            "gcn", in_dim=6, hidden_dim=8, num_classes=2, num_layers=2, seed=0
        )
        config = GraphInferConfig(
            max_neighbors=4, hub_threshold=8, num_reducers=4, seed=0
        )
        serial = graph_infer(model, ds.nodes, ds.edges, config)
        with LocalRuntime(backend="processes", max_workers=2) as runtime:
            procs = graph_infer(model, ds.nodes, ds.edges, config, runtime)
        assert set(procs.scores) == set(serial.scores)
        for node_id, scores in serial.scores.items():
            assert np.array_equal(procs.scores[node_id], scores)
