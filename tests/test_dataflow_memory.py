"""Constant-memory dataflow: external-sorted reducer spill, frame-level
map-side combine, reducer-owned columnar sinks, shm prefetch handoff, and
spill-session hygiene."""

import subprocess
import tempfile
import tracemalloc
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.mapreduce import (
    DistFileSystem,
    LocalRuntime,
    MapReduceJob,
    SpillLayout,
    SumCombiner,
    default_partition,
)
from repro.proto.framing import encode_value


# Top-level operators: picklable, so they ship to worker processes.
def split_mapper(_, line):
    for word in line.split():
        yield word, 1


def sum_reducer(word, counts):
    yield word, sum(counts)


def echo_reducer(key, values):
    for value in values:
        yield key, value


CORPUS = [(i, line) for i, line in enumerate(["a b b", "b c", "a a a c", ""])]


@dataclass(frozen=True)
class CountSink:
    """Final-round sink that keeps nothing: the constant-memory baseline."""

    def store(self, task_index, pairs):
        count = 0
        for _ in pairs:
            count += 1
        return count


# --------------------------------------------------------------------------
# Tentpole (a): external-sorted spill runs
# --------------------------------------------------------------------------
class TestExternalSortedSpill:
    NUM_PARTITIONS = 3

    def _write_both(self, pairs, codec, root, run_records):
        """Same stream through the eager single-run writer and the bounded
        multi-run writer; returns both layouts."""
        eager = SpillLayout(str(root / "eager"), "job", self.NUM_PARTITIONS, codec)
        stream = SpillLayout(str(root / "stream"), "job", self.NUM_PARTITIONS, codec)
        buckets = [[] for _ in range(self.NUM_PARTITIONS)]
        writer = stream.run_writer(0, run_records=run_records)
        for key, value in pairs:
            p = default_partition(key, self.NUM_PARTITIONS)
            buckets[p].append((key, value))
            writer.append(p, key, value)
        writer.finish()
        eager.write_map_output(0, buckets)
        return eager, stream

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 9), st.integers(-(10**6), 10**6)),
            max_size=60,
        ),
        codec=st.sampled_from(["binary", "pickle"]),
        run_records=st.integers(1, 8),
    )
    def test_multi_run_merge_matches_eager_write(self, pairs, codec, run_records):
        with tempfile.TemporaryDirectory() as tmp:
            eager, stream = self._write_both(pairs, codec, Path(tmp), run_records)
            for p in range(self.NUM_PARTITIONS):
                assert list(stream.iter_partition(p, 1)) == list(
                    eager.iter_partition(p, 1)
                )
                assert list(stream.iter_groups(p, 1)) == list(eager.iter_groups(p, 1))

    @pytest.mark.parametrize("codec", ["binary", "pickle"])
    def test_small_run_bound_actually_spills_multiple_runs(self, tmp_path, codec):
        pairs = [(k, v) for v in range(20) for k in range(6)]
        _, stream = self._write_both(pairs, codec, tmp_path, run_records=5)
        multi = [
            p
            for p in range(self.NUM_PARTITIONS)
            if stream.run_path(0, p, 1).exists()
        ]
        assert multi, "run bound of 5 over 120 records must produce >1 run"

    def test_byte_budget_bounds_binary_runs(self, tmp_path):
        layout = SpillLayout(str(tmp_path), "job", 1, "binary")
        writer = layout.run_writer(0, run_bytes=256)
        for i in range(200):
            writer.append(0, i, i * 7)
        result = writer.finish()
        assert layout.run_path(0, 0, 1).exists()
        # Every flush stayed within the same order of magnitude as the
        # budget (a single appended record may overshoot it by one frame).
        assert 0 < result.peak_buffer_bytes < 4 * 256

    @pytest.mark.parametrize("codec", ["binary", "pickle"])
    def test_runtime_spill_output_matches_in_memory(self, tmp_path, codec):
        job = MapReduceJob("wc", sum_reducer, mapper=split_mapper)
        memory = LocalRuntime(backend="serial")
        expected = memory.run(job, CORPUS)
        spilling = LocalRuntime(
            backend="serial",
            spill_dir=tmp_path,
            shuffle_codec=codec,
            spill_run_records=2,
        )
        try:
            assert spilling.run(job, CORPUS) == expected
        finally:
            spilling.close()


# --------------------------------------------------------------------------
# Tentpole (b): frame-level map-side combine
# --------------------------------------------------------------------------
class TestFrameLevelCombine:
    def test_combine_encoded_folds_without_decoding_loss(self):
        combiner = SumCombiner()
        items = [encode_value(v) for v in [1, 2, 3.5]]
        (folded,) = combiner.combine_encoded(b"k", items)
        assert folded == encode_value(6.5)

    def test_combine_encoded_refuses_non_numeric(self):
        combiner = SumCombiner()
        assert combiner.combine_encoded(b"k", [encode_value("x")]) is None
        assert combiner.combine_encoded(b"k", [encode_value(True)]) is None

    def test_classic_protocol_matches_combine(self):
        combiner = SumCombiner()
        assert list(combiner("k", [1, 2, 3])) == [("k", 6)]

    @pytest.mark.parametrize("codec", ["binary", "pickle"])
    def test_combined_job_output_and_stats(self, tmp_path, codec):
        plain = MapReduceJob("wc", sum_reducer, mapper=split_mapper)
        combined = MapReduceJob(
            "wc", sum_reducer, mapper=split_mapper, combiner=SumCombiner()
        )
        baseline = LocalRuntime(backend="serial").run(plain, CORPUS)

        runtimes = {}
        for name, job in [("plain", plain), ("combined", combined)]:
            rt = LocalRuntime(
                backend="serial", spill_dir=tmp_path / name, shuffle_codec=codec
            )
            try:
                assert rt.run(job, CORPUS) == baseline
            finally:
                rt.close()
            runtimes[name] = rt.last_stats
        assert runtimes["combined"].combined_records > 0
        assert runtimes["plain"].combined_records == 0
        assert (
            runtimes["combined"].shuffle_bytes_written
            < runtimes["plain"].shuffle_bytes_written
        )

    def test_combine_spans_runs_within_a_flush_only(self, tmp_path):
        """Records split across runs still reduce to the right totals: the
        combiner squeezes each flush, the reducer folds across runs."""
        job = MapReduceJob(
            "wc", sum_reducer, mapper=split_mapper, combiner=SumCombiner(), num_reducers=2
        )
        big = [(i, "a b") for i in range(50)]
        rt = LocalRuntime(
            backend="serial",
            spill_dir=tmp_path,
            shuffle_codec="binary",
            spill_run_records=8,
        )
        try:
            assert sorted(rt.run(job, big)) == [("a", 50), ("b", 50)]
        finally:
            rt.close()


# --------------------------------------------------------------------------
# Bounded reducer memory
# --------------------------------------------------------------------------
class TestBoundedReducerMemory:
    def _chained_peak(self, tmp_path, n, tag):
        jobs = [
            MapReduceJob("expand", echo_reducer, mapper=split_mapper, num_reducers=2),
            MapReduceJob("count", sum_reducer, num_reducers=2),
        ]
        inputs = [(i, "w%d x" % (i % 32)) for i in range(n)]
        rt = LocalRuntime(
            backend="serial",
            spill_dir=tmp_path / tag,
            shuffle_codec="binary",
            spill_run_records=64,
        )
        try:
            rt.run_rounds(jobs, inputs, final_sink=CountSink())
            return rt.last_stats.peak_reducer_buffer_bytes
        finally:
            rt.close()

    def test_peak_reducer_buffer_flat_as_input_grows_8x(self, tmp_path):
        small = self._chained_peak(tmp_path, 400, "small")
        large = self._chained_peak(tmp_path, 3200, "large")
        assert small > 0
        # Bounded by the run size (64 records), not the input size: 8x the
        # records must not approach 8x the buffer.
        assert large <= 2 * small

    def test_streamed_reduce_read_is_flat_tracemalloc(self, tmp_path):
        """Consuming a partition with 8x the bytes must not allocate 8x the
        peak: the merge holds one 64 KiB buffer per run (run count is fixed
        here) plus one frame per run plus one reduce group — never the
        partition."""

        def build_and_scan(payload_len, tag):
            layout = SpillLayout(str(tmp_path / tag), "job", 1, "binary")
            writer = layout.run_writer(0, run_records=64)
            payload = list(range(payload_len))
            for i in range(512):
                writer.append(0, i % 64, payload)
            written = writer.finish()
            tracemalloc.start()
            total = 0
            for _key, values in layout.iter_groups(0, 1):
                total += len(values)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert total == 512
            return peak, written.bytes_written

        small_peak, small_bytes = build_and_scan(16, "small")
        large_peak, large_bytes = build_and_scan(128, "large")
        assert large_bytes >= 6 * small_bytes  # the shard really grew ~8x
        assert large_peak < 2 * small_peak + (1 << 17)


# --------------------------------------------------------------------------
# Tentpole (c): reducer-owned columnar sinks — matrix byte-identity
# --------------------------------------------------------------------------
class TestSinkMatrix:
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    @pytest.mark.parametrize("codec", ["binary", "pickle"])
    @pytest.mark.parametrize("sink", ["parent", "reducer"])
    def test_graphflat_stream_invariant(
        self, mini_cora, tmp_path, backend, codec, sink
    ):
        ds = mini_cora
        targets = ds.train_ids[:10]
        fs = DistFileSystem(tmp_path / f"{backend}-{codec}-{sink}")
        config = GraphFlatConfig(
            hops=2,
            max_neighbors=10**9,
            hub_threshold=10**9,
            backend=backend,
            num_workers=2,
            spill_dir=tmp_path / "spill",
            shuffle_codec=codec,
            dataset_sink=sink,
        )
        result = graph_flat(
            ds.nodes, ds.edges, targets, config, fs=fs, dataset_name="flat"
        )
        assert result.num_targets == len(targets)
        stream = list(fs.read_dataset("flat"))
        if not hasattr(self, "_reference"):
            type(self)._reference = stream
        assert stream == self._reference


# --------------------------------------------------------------------------
# Tentpole (d): shm prefetch batch handoff
# --------------------------------------------------------------------------
def _mk_sample(i, rng):
    from repro.core.trainer.vectorize import TrainSample
    from repro.proto.codec import GraphFeature

    n = 6
    ids = np.arange(i * 10, i * 10 + n, dtype=np.int64)
    gf = GraphFeature(
        target_ids=ids[:1],
        node_ids=ids,
        x=rng.standard_normal((n, 4)).astype(np.float32),
        hops=np.zeros(n, dtype=np.int64),
        edge_src=rng.integers(0, n, 10).astype(np.int64),
        edge_dst=rng.integers(0, n, 10).astype(np.int64),
        edge_feat=None,
        edge_weight=np.ones(10, dtype=np.float32),
    )
    return TrainSample(target_id=int(ids[0]), label=float(i % 2), graph_feature=gf)


class TestShmBatchHandoff:
    def test_slab_round_trip_preserves_arrays_and_writability(self):
        from repro.ps.shm import BatchSlab, ShmBatchRef, slab_dump, slab_load

        obj = (
            {"a": np.arange(1000, dtype=np.float32), "b": np.ones((3, 5))},
            np.array([1, 2, 3]),
        )
        with BatchSlab(1 << 20) as slab:
            ref = slab_dump(obj, slab.name, slab.capacity)
            assert isinstance(ref, ShmBatchRef)
            assert ref.slab_bytes >= 4000
            got = slab_load(ref, slab.buf)
            np.testing.assert_array_equal(got[0]["a"], obj[0]["a"])
            np.testing.assert_array_equal(got[0]["b"], obj[0]["b"])
            np.testing.assert_array_equal(got[1], obj[1])
            # Private copy: mutating the result must not require the slab.
            assert got[0]["a"].flags.writeable
            got[0]["a"][0] = 99.0
            assert obj[0]["a"][0] == 0.0

    def test_overflow_returns_none(self):
        from repro.ps.shm import BatchSlab, slab_dump

        with BatchSlab(64) as slab:
            assert slab_dump(np.zeros(1024), slab.name, slab.capacity) is None

    def test_close_unlinks(self):
        from repro.ps.shm import BatchSlab, attach_shared_memory

        slab = BatchSlab(128)
        name = slab.name
        slab.close()
        slab.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            attach_shared_memory(name)

    def test_shm_requires_pickling_backend(self):
        from repro.core.trainer.pipeline import BatchPipeline

        with pytest.raises(ValueError, match="pickling backend"):
            BatchPipeline([], num_layers=2, backend="threads", transport="shm")

    def test_process_pool_shm_matches_pickle_transport(self, rng):
        from repro.core.trainer.pipeline import BatchPipeline

        batches = [[_mk_sample(i * 3 + j, rng) for j in range(3)] for i in range(4)]

        def run(transport, slab_bytes=64 << 20):
            pipe = BatchPipeline(
                batches,
                num_layers=2,
                backend="processes",
                workers=2,
                transport=transport,
                slab_bytes=slab_bytes,
            )
            return list(pipe), pipe

        ref, _ = run("pickle")
        shm, pipe = run("shm")
        assert pipe.shm_batches == len(batches) and pipe.inband_batches == 0
        for (a_in, a_lab), (b_in, b_lab) in zip(ref, shm):
            np.testing.assert_array_equal(np.asarray(a_lab), np.asarray(b_lab))
            for field in a_in.__dataclass_fields__:
                av, bv = getattr(a_in, field), getattr(b_in, field)
                if isinstance(av, np.ndarray):
                    np.testing.assert_array_equal(av, bv)

        # A slab too small for any batch degrades to the pickle pipe
        # batch-by-batch without changing results.
        tiny, tiny_pipe = run("shm", slab_bytes=1)
        assert tiny_pipe.inband_batches == len(batches)
        assert tiny_pipe.shm_batches == 0
        assert len(tiny) == len(ref)


# --------------------------------------------------------------------------
# Satellite: spill-session hygiene
# --------------------------------------------------------------------------
class TestSpillSessionHygiene:
    def test_dead_session_directories_are_swept(self, tmp_path):
        # A pid that existed but is guaranteed gone by the time we sweep.
        proc = subprocess.Popen(["true"])
        proc.wait()
        stale = tmp_path / f"mr{proc.pid}.deadbeef"
        (stale / "round.abc").mkdir(parents=True)
        (stale / "round.abc" / "job.m00000.p00000.r00000.bin").write_bytes(b"x")

        rt = LocalRuntime(backend="serial", spill_dir=tmp_path, shuffle_codec="binary")
        try:
            rt.run(MapReduceJob("wc", sum_reducer, mapper=split_mapper), CORPUS)
        finally:
            rt.close()
        assert not stale.exists()

    def test_live_foreign_session_is_left_alone(self, tmp_path):
        import os

        live = tmp_path / f"mr{os.getpid()}.other"
        live.mkdir()
        rt = LocalRuntime(backend="serial", spill_dir=tmp_path, shuffle_codec="binary")
        try:
            rt.run(MapReduceJob("wc", sum_reducer, mapper=split_mapper), CORPUS)
            assert live.exists()
        finally:
            rt.close()

    def test_chained_rounds_leave_no_intermediate_files(self, tmp_path):
        jobs = [
            MapReduceJob("expand", echo_reducer, mapper=split_mapper),
            MapReduceJob("count", sum_reducer),
        ]
        rt = LocalRuntime(backend="serial", spill_dir=tmp_path, shuffle_codec="binary")
        try:
            rt.run_rounds(jobs, CORPUS)
            leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
            assert leftovers == []
        finally:
            rt.close()
        assert list(tmp_path.iterdir()) == []
