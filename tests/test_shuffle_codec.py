"""Binary shuffle-record codec: round-trip fidelity for every record type
that crosses a GraphFlat/GraphInfer spill, plus the frame stream format.

The contract under test is *exact* reproduction — dict insertion order,
array dtypes, float bits — because the pipelines' byte-identity across
codecs (asserted in test_backend_matrix) rests on it.
"""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graphflat.records import InEdgeInfo, OutEdgeInfo, PartialMerge, SubgraphInfo
from repro.core.infer.pipeline import _InEmb, _OutEdge
from repro.mapreduce.shuffle import decode_key, key_bytes
from repro.proto.framing import (
    FrameCorruptionError,
    decode_value,
    encode_value,
    iter_frames,
    read_stream_header,
    register_record,
    write_frame,
    write_stream_header,
)


def round_trip(value):
    payload = encode_value(value)
    decoded, offset = decode_value(payload)
    assert offset == len(payload), "trailing bytes after decode"
    return decoded


def assert_array_equal_strict(a, b):
    assert isinstance(b, np.ndarray)
    assert a.dtype == b.dtype
    assert a.shape == b.shape
    np.testing.assert_array_equal(a, b)


def assert_subgraph_equal(a: SubgraphInfo, b: SubgraphInfo):
    assert a.root == b.root
    assert list(a.nodes) == list(b.nodes)  # ids *and* insertion order
    for node_id in a.nodes:
        feat_a, hop_a = a.nodes[node_id]
        feat_b, hop_b = b.nodes[node_id]
        assert hop_a == hop_b
        assert_array_equal_strict(feat_a, feat_b)
    assert list(a.edges) == list(b.edges)
    for key in a.edges:
        w_a, ef_a = a.edges[key]
        w_b, ef_b = b.edges[key]
        assert struct.pack("<d", w_a) == struct.pack("<d", w_b)  # exact bits
        if ef_a is None:
            assert ef_b is None
        else:
            assert_array_equal_strict(ef_a, ef_b)


def make_subgraph(rng: np.random.Generator, *, dim=5, num_nodes=6, num_edges=8,
                  edge_feat="uniform", edge_dim=3) -> SubgraphInfo:
    ids = rng.choice(10_000, size=num_nodes, replace=False).astype(np.int64)
    root = int(ids[0])
    nodes = {
        int(i): (rng.standard_normal(dim).astype(np.float32), int(rng.integers(0, 4)))
        for i in ids
    }
    edges = {}
    for _ in range(num_edges):
        s, d = (int(x) for x in rng.choice(ids, size=2))
        if edge_feat == "uniform":
            ef = rng.standard_normal(edge_dim).astype(np.float32)
        elif edge_feat == "mixed":
            ef = rng.standard_normal(edge_dim).astype(np.float32) if rng.random() < 0.5 else None
        elif edge_feat == "empty":
            ef = np.zeros(0, dtype=np.float32)
        else:  # none
            ef = None
        edges[(s, d)] = (float(rng.standard_normal()), ef)
    return SubgraphInfo(root, nodes, edges)


class TestGenericValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**40,
            -(2**40),
            0.0,
            -1.5,
            3.141592653589793,
            float("inf"),
            "",
            "héllo",
            b"",
            b"\x00\xffbytes",
            (),
            (1, "two", None),
            [1, [2, [3]], (4, 5)],
        ],
    )
    def test_scalars_and_containers(self, value):
        decoded = round_trip(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_nan_bits_survive(self):
        decoded = round_trip(float("nan"))
        assert struct.pack("<d", decoded) == struct.pack("<d", float("nan"))

    @pytest.mark.parametrize("dtype", ["<f4", "<f8", "<i8", "<i4", "|b1", "<u2"])
    def test_array_dtypes(self, dtype):
        rng = np.random.default_rng(3)
        arr = (rng.standard_normal((4, 3)) * 10).astype(dtype)
        assert_array_equal_strict(arr, round_trip(arr))

    def test_array_shapes(self):
        for shape in [(), (0,), (5,), (2, 0), (2, 3, 4)]:
            arr = np.arange(int(np.prod(shape)), dtype=np.float32).reshape(shape)
            assert_array_equal_strict(arr, round_trip(arr))

    def test_float_vector_labels(self):
        """Multi-label tasks (PPI) carry float-vector labels; they must
        round-trip bit-exactly through the generic codec."""
        label = np.asarray([0.0, 1.0, 0.25, 1e-30], dtype=np.float32)
        assert_array_equal_strict(label, round_trip(label))

    def test_big_endian_array_dtype_preserved(self):
        arr = np.arange(4, dtype=">i4")
        assert_array_equal_strict(arr, round_trip(arr))  # dtype stays >i4

    def test_unencodable_type_raises(self):
        with pytest.raises(TypeError, match="no binary wire form"):
            encode_value(object())

    def test_int_beyond_64_bits_rejected_at_encode_time(self):
        """Out-of-range ints must fail on the map side with guidance, not
        as a 'corrupt stream' error on the reduce side."""
        for value in (1 << 63, -(1 << 63) - 1, 1 << 70):
            with pytest.raises(TypeError, match="pickle"):
                encode_value(value)
        # boundary values survive
        assert round_trip((1 << 63) - 1) == (1 << 63) - 1
        assert round_trip(-(1 << 63)) == -(1 << 63)

    def test_unknown_tag_raises(self):
        with pytest.raises(FrameCorruptionError):
            decode_value(b"\xfe")

    @given(st.recursive(
        st.none() | st.booleans() | st.integers(-2**62, 2**62) | st.floats(allow_nan=False)
        | st.text(max_size=8) | st.binary(max_size=8),
        lambda inner: st.lists(inner, max_size=4) | st.tuples(inner, inner),
        max_leaves=10,
    ))
    @settings(max_examples=60, deadline=None)
    def test_value_round_trip_property(self, value):
        decoded = round_trip(value)
        assert decoded == value


class TestRecordRegistry:
    def test_conflicting_tag_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_record(0x20, dict, lambda *a: None, lambda *a: None)

    def test_reserved_tag_range_enforced(self):
        with pytest.raises(ValueError, match="record tag"):
            register_record(0x05, dict, lambda *a: None, lambda *a: None)


class TestGraphFlatRecords:
    @pytest.mark.parametrize("edge_feat", ["uniform", "mixed", "none", "empty"])
    def test_subgraph_round_trip(self, edge_feat):
        rng = np.random.default_rng(len(edge_feat))  # deterministic per case
        sg = make_subgraph(rng, edge_feat=edge_feat)
        assert_subgraph_equal(sg, round_trip(sg))

    def test_zero_edge_subgraph(self):
        sg = SubgraphInfo.seed(42, np.arange(3, dtype=np.float32))
        decoded = round_trip(sg)
        assert_subgraph_equal(sg, decoded)
        assert decoded.num_edges == 0

    def test_single_node_zero_dim_features(self):
        sg = SubgraphInfo.seed(-7, np.zeros(0, dtype=np.float32))
        assert_subgraph_equal(sg, round_trip(sg))

    @given(seed=st.integers(0, 2**16), num_nodes=st.integers(1, 12),
           num_edges=st.integers(0, 20), dim=st.integers(0, 8))
    @settings(max_examples=40, deadline=None)
    def test_subgraph_property(self, seed, num_nodes, num_edges, dim):
        rng = np.random.default_rng(seed)
        kind = ["uniform", "mixed", "none", "empty"][seed % 4]
        sg = make_subgraph(rng, dim=dim, num_nodes=num_nodes,
                           num_edges=num_edges, edge_feat=kind)
        assert_subgraph_equal(sg, round_trip(sg))

    def test_in_edge_round_trip(self):
        rng = np.random.default_rng(11)
        inner = make_subgraph(rng)
        edge = InEdgeInfo(17, 0.75, rng.standard_normal(2).astype(np.float32), inner)
        decoded = round_trip(edge)
        assert decoded.src == 17 and decoded.weight == 0.75
        assert_array_equal_strict(edge.edge_feat, decoded.edge_feat)
        assert_subgraph_equal(inner, decoded.subgraph)

    def test_out_edge_round_trip(self):
        edge = OutEdgeInfo(-3, 2.5, None)
        decoded = round_trip(edge)
        assert decoded == edge

    def test_out_edge_list(self):
        outs = [OutEdgeInfo(i, float(i), None) for i in range(5)]
        assert round_trip(outs) == outs

    def test_partial_merge_round_trip(self):
        rng = np.random.default_rng(23)
        partial = PartialMerge([
            InEdgeInfo(int(i), float(i) / 3, None, make_subgraph(rng, num_nodes=2, num_edges=1))
            for i in range(3)
        ])
        decoded = round_trip(partial)
        assert isinstance(decoded, PartialMerge)
        assert len(decoded.in_edges) == 3
        for a, b in zip(partial.in_edges, decoded.in_edges):
            assert a.src == b.src and a.weight == b.weight
            assert_subgraph_equal(a.subgraph, b.subgraph)

    def test_tagged_tuples_as_shuffled(self):
        """The exact value shapes GraphFlat ships: ("self", info),
        ("out", [outs]), ("in", in_edge), ("partial", [in_edges])."""
        rng = np.random.default_rng(5)
        sg = make_subgraph(rng)
        for value in [
            ("self", sg),
            ("out", [OutEdgeInfo(1, 1.0, None)]),
            ("in", InEdgeInfo(2, 0.5, None, sg)),
            ("partial", [InEdgeInfo(2, 0.5, None, sg)]),
            ("node", rng.standard_normal(4).astype(np.float32)),
            (3, 9, 0.25, None),  # raw edge row
        ]:
            decoded = round_trip(value)
            assert type(decoded) is tuple and decoded[0] == value[0]


class TestInferRecords:
    def test_in_emb_round_trip(self):
        rng = np.random.default_rng(7)
        emb = _InEmb(5, 0.125, None, rng.standard_normal(8).astype(np.float32))
        decoded = round_trip(emb)
        assert decoded.src == 5 and decoded.weight == 0.125 and decoded.edge_feat is None
        assert_array_equal_strict(emb.h, decoded.h)

    def test_out_edge_round_trip(self):
        edge = _OutEdge(9, 1.5, np.asarray([1.0], dtype=np.float32))
        decoded = round_trip(edge)
        assert decoded.dst == 9 and decoded.weight == 1.5
        assert_array_equal_strict(edge.edge_feat, decoded.edge_feat)


class TestKeyCodec:
    @pytest.mark.parametrize(
        "key", [0, -1, 2**40, "node", "", b"\x00raw", True, False,
                (7, 3), (1, ("a", b"b", False), -9), ()],
    )
    def test_decode_inverts_key_bytes(self, key):
        decoded = decode_key(key_bytes(key))
        assert decoded == key
        assert type(decoded) is type(key)

    @given(st.recursive(
        st.integers(-2**62, 2**62) | st.text(max_size=6) | st.binary(max_size=6)
        | st.booleans(),
        lambda inner: st.tuples(inner) | st.tuples(inner, inner),
        max_leaves=8,
    ))
    @settings(max_examples=60, deadline=None)
    def test_key_round_trip_property(self, key):
        decoded = decode_key(key_bytes(key))
        assert decoded == key and type(decoded) is type(key)

    def test_oversized_int_key_rejected_at_emit_time(self):
        """A 128-bit-hash-style int key must fail when the key is encoded,
        not later as a bogus 'corrupt stream' error in the spill reader."""
        for key in (1 << 70, -(1 << 63) - 1, (3, 1 << 70)):
            with pytest.raises(TypeError, match="64 bits"):
                key_bytes(key)
        assert decode_key(key_bytes((1 << 63) - 1)) == (1 << 63) - 1

    def test_truncated_string_payload_raises(self):
        # b"\x05" (STR tag) + length 5 but only 2 bytes of content
        with pytest.raises(FrameCorruptionError, match="truncated string"):
            decode_value(b"\x05\x05ab")
        with pytest.raises(FrameCorruptionError, match="truncated bytes"):
            decode_value(b"\x06\x05ab")

    def test_corrupt_run_payload_raises_in_spill(self, tmp_path):
        """A length-varint bit-flip inside a frame payload must surface as
        FrameCorruptionError, not silently truncated reducer input."""
        from repro.mapreduce.spill import SpillLayout

        layout = SpillLayout(str(tmp_path), "job", num_partitions=1, codec="binary")
        layout.write_map_output(0, [[(1, "hello-world")]])
        path = layout.path(0, 0)
        data = bytearray(path.read_bytes())
        data[-8] ^= 0x01  # flip a bit inside the payload's string bytes/length
        truncated = bytes(data[:-4])  # and chop the tail so lengths disagree
        path.write_bytes(truncated)
        with pytest.raises((FrameCorruptionError, ValueError)):
            list(layout.iter_groups(0, num_map_tasks=1))


class TestFrameStreams:
    def test_header_and_frames_round_trip(self):
        buf = io.BytesIO()
        write_stream_header(buf, codec_id=1)
        frames = [(key_bytes(i), b"payload-%d" % i) for i in range(50)]
        for kb, payload in frames:
            write_frame(buf, kb, payload)
        buf.seek(0)
        assert read_stream_header(buf) == 1
        assert list(iter_frames(buf)) == frames

    def test_bad_magic_rejected(self):
        with pytest.raises(FrameCorruptionError, match="magic"):
            read_stream_header(io.BytesIO(b"JUNKxx"))

    def test_truncated_frame_rejected(self):
        buf = io.BytesIO()
        write_stream_header(buf, codec_id=0)
        write_frame(buf, b"ikey", b"payload")
        data = buf.getvalue()[:-3]  # chop mid-payload
        fh = io.BytesIO(data)
        read_stream_header(fh)
        with pytest.raises(FrameCorruptionError, match="truncated"):
            list(iter_frames(fh))
