"""GraphTrainer machinery: vectorization, pruning (Equation 3 invariance),
edge partitioning (backend equivalence + balance), prefetch pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import (
    BatchPipeline,
    EdgePartitionAggregator,
    decode_samples,
    layer_edge_masks,
    partitioned_backend_factory,
    prune_blocks,
    vectorize_batch,
)
from repro.nn import Tensor, no_grad
from repro.nn.gnn import EdgeBlock, GATModel, GCNModel
from repro.nn.ops import scatter_add_backend
from repro.utils.timer import TimerRegistry


@pytest.fixture(scope="module")
def cora_samples(mini_cora):
    ds = mini_cora
    config = GraphFlatConfig(hops=2, max_neighbors=10**9, hub_threshold=10**9)
    res = graph_flat(ds.nodes, ds.edges, ds.train_ids[:24], config)
    return decode_samples(res.samples)


# conftest fixtures are function-scoped by default; redeclare session dataset
@pytest.fixture(scope="module")
def mini_cora():
    from repro.datasets import cora_like

    return cora_like(seed=7, num_nodes=300, num_edges=900)


class TestVectorize:
    def test_three_matrices_contract(self, cora_samples):
        batch, labels = vectorize_batch(cora_samples[:8], num_layers=2)
        block = batch.layer_blocks[0]
        assert np.all(np.diff(block.dst) >= 0)  # sorted by destination
        assert batch.x.shape[0] == block.num_nodes
        assert labels.shape == (len(batch.target_index),)

    def test_target_rows_match_features(self, cora_samples):
        samples = cora_samples[:6]
        batch, labels = vectorize_batch(samples, num_layers=2)
        by_id = {s.target_id: s for s in samples}
        merged_ids = np.sort([s.target_id for s in samples])
        for row, tid in zip(batch.target_index, merged_ids):
            gf = by_id[int(tid)]
            np.testing.assert_allclose(
                batch.x[row], gf.graph_feature.x[gf.graph_feature.target_index[0]]
            )
            assert labels[list(merged_ids).index(tid)] == by_id[int(tid)].label

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            vectorize_batch([], num_layers=2)

    def test_no_pruning_shares_single_block(self, cora_samples):
        batch, _ = vectorize_batch(cora_samples[:4], num_layers=3, pruning=False)
        assert batch.layer_blocks[0] is batch.layer_blocks[1] is batch.layer_blocks[2]


class TestPruning:
    def test_masks_monotone_and_last_layer_targets_only(self, cora_samples):
        batch, _ = vectorize_batch(cora_samples[:8], num_layers=2, pruning=True)
        b0, b1 = batch.layer_blocks
        assert b1.num_edges <= b0.num_edges
        # last layer only aggregates into targets (hop 0)
        target_rows = set(batch.target_index.tolist())
        assert set(b1.dst.tolist()) <= target_rows

    def test_first_layer_keeps_all_edges(self, cora_samples):
        """For a K-hop neighborhood and a K-layer model, layer 0 prunes
        nothing (every edge destination is within K-1 hops)."""
        batch_p, _ = vectorize_batch(cora_samples[:8], num_layers=2, pruning=True)
        batch_f, _ = vectorize_batch(cora_samples[:8], num_layers=2, pruning=False)
        assert batch_p.layer_blocks[0].num_edges == batch_f.layer_blocks[0].num_edges

    def test_one_layer_model_pruning_is_noop(self, mini_cora):
        """Table 4: 'the pruning strategy won't work in 1-layer models' —
        on 1-hop neighborhoods every edge already points at a target."""
        ds = mini_cora
        res = graph_flat(
            ds.nodes,
            ds.edges,
            ds.train_ids[:10],
            GraphFlatConfig(hops=1, max_neighbors=10**9, hub_threshold=10**9),
        )
        samples = decode_samples(res.samples)
        pruned, _ = vectorize_batch(samples, num_layers=1, pruning=True)
        full, _ = vectorize_batch(samples, num_layers=1, pruning=False)
        assert pruned.layer_blocks[0].num_edges == full.layer_blocks[0].num_edges

    @pytest.mark.parametrize("model_cls", [GCNModel, GATModel])
    def test_equation3_target_logits_unchanged(self, cora_samples, model_cls):
        """The theorem behind Equation 3: pruning never changes target
        outputs, only drops computation that could not reach them."""
        samples = cora_samples[:10]
        feature_dim = samples[0].graph_feature.feature_dim
        model = model_cls(feature_dim, 8, 5, num_layers=2, seed=0)
        model.eval()
        batch_p, _ = vectorize_batch(samples, num_layers=2, pruning=True)
        batch_f, _ = vectorize_batch(samples, num_layers=2, pruning=False)
        with no_grad():
            np.testing.assert_allclose(
                model(batch_p).data, model(batch_f).data, rtol=1e-4, atol=1e-5
            )

    def test_layer_edge_masks_validation(self):
        with pytest.raises(ValueError):
            layer_edge_masks(np.zeros(3, np.int64), np.zeros(3, np.int64), 0)


class TestEdgePartition:
    def test_matches_scatter_backend(self, rng):
        m, n, f = 500, 60, 7
        dst = np.sort(rng.integers(0, n, m))
        vals = rng.standard_normal((m, f)).astype(np.float32)
        agg = EdgePartitionAggregator(dst, num_partitions=4)
        np.testing.assert_allclose(
            agg(vals, dst, n), scatter_add_backend(vals, dst, n), rtol=1e-5, atol=1e-6
        )

    def test_threaded_matches_serial(self, rng):
        m, n = 400, 30
        dst = np.sort(rng.integers(0, n, m))
        vals = rng.standard_normal((m, 3)).astype(np.float32)
        serial = EdgePartitionAggregator(dst, 4, threads=1)(vals, dst, n)
        threaded = EdgePartitionAggregator(dst, 4, threads=3)(vals, dst, n)
        np.testing.assert_allclose(serial, threaded)

    def test_3d_values(self, rng):
        m, n = 120, 20
        dst = np.sort(rng.integers(0, n, m))
        vals = rng.standard_normal((m, 4, 2)).astype(np.float32)
        agg = EdgePartitionAggregator(dst, 3)
        np.testing.assert_allclose(
            agg(vals, dst, n), scatter_add_backend(vals, dst, n), rtol=1e-5, atol=1e-6
        )

    def test_partitions_never_split_a_destination(self, rng):
        dst = np.sort(rng.integers(0, 50, 1000))
        agg = EdgePartitionAggregator(dst, num_partitions=8)
        seen: set[int] = set()
        for lo, hi, _, rows in agg._parts:
            rows_set = set(rows.tolist())
            assert not rows_set & seen  # conflict-free guarantee
            seen |= rows_set

    def test_balance_within_factor_two(self, rng):
        dst = np.sort(rng.integers(0, 200, 4000))
        sizes = EdgePartitionAggregator(dst, 8).partition_sizes()
        assert len(sizes) == 8
        assert max(sizes) <= 2 * (4000 // 8)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            EdgePartitionAggregator(np.array([3, 1, 2]))

    def test_layout_mismatch_rejected(self, rng):
        dst = np.sort(rng.integers(0, 5, 20))
        agg = EdgePartitionAggregator(dst, 2)
        with pytest.raises(ValueError, match="rebind"):
            agg(np.ones((5, 1), np.float32), dst[:5], 5)

    def test_empty_edges(self):
        agg = EdgePartitionAggregator(np.zeros(0, np.int64), 4)
        out = agg(np.zeros((0, 3), np.float32), np.zeros(0, np.int64), 7)
        np.testing.assert_allclose(out, np.zeros((7, 3)))

    def test_rebind_for_self_loops(self, rng):
        dst = np.sort(rng.integers(0, 8, 30))
        src = rng.integers(0, 8, 30)
        block = EdgeBlock(src, dst, 8)
        block.aggregator = EdgePartitionAggregator(block.dst, 4)
        aug = block.with_self_loops()
        assert aug.aggregator is not block.aggregator
        assert aug.aggregator.num_edges == aug.num_edges

    def test_gat_forward_same_with_partitioned_backend(self, cora_samples):
        feature_dim = cora_samples[0].graph_feature.feature_dim
        model = GATModel(feature_dim, 6, 4, num_layers=2, seed=0)
        model.eval()
        plain, _ = vectorize_batch(cora_samples[:8], 2, pruning=True)
        fast, _ = vectorize_batch(
            cora_samples[:8], 2, pruning=True,
            aggregator_factory=partitioned_backend_factory(4),
        )
        with no_grad():
            np.testing.assert_allclose(
                model(plain).data, model(fast).data, rtol=1e-4, atol=1e-5
            )

    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 40),
        m=st.integers(0, 300),
        parts=st.integers(1, 9),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, seed, n, m, parts):
        """Property: any partitioning of any layout equals the scatter
        reference — partitioning is purely a performance choice."""
        rng = np.random.default_rng(seed)
        dst = np.sort(rng.integers(0, n, m))
        vals = rng.standard_normal((m, 2)).astype(np.float32)
        agg = EdgePartitionAggregator(dst, parts)
        np.testing.assert_allclose(
            agg(vals, dst, n), scatter_add_backend(vals, dst, n), rtol=1e-4, atol=1e-5
        )


class TestBatchPipeline:
    def _batches(self, cora_samples):
        return [cora_samples[i : i + 6] for i in range(0, len(cora_samples), 6)]

    def test_pipelined_equals_sequential(self, cora_samples):
        batches = self._batches(cora_samples)
        seq = list(BatchPipeline(batches, 2, enabled=False))
        par = list(BatchPipeline(batches, 2, enabled=True))
        assert len(seq) == len(par) == len(batches)
        for (b1, l1), (b2, l2) in zip(seq, par):
            np.testing.assert_allclose(b1.x, b2.x)
            np.testing.assert_array_equal(l1, l2)

    def test_decodes_raw_bytes(self, mini_cora):
        ds = mini_cora
        res = graph_flat(
            ds.nodes, ds.edges, ds.train_ids[:6],
            GraphFlatConfig(hops=1, max_neighbors=10**9, hub_threshold=10**9),
        )
        out = list(BatchPipeline([res.samples], 1))
        assert len(out) == 1
        assert out[0][1] is not None

    def test_producer_errors_surface(self):
        with pytest.raises(ValueError):
            list(BatchPipeline([[]], 2, enabled=True))  # empty batch

    def test_preprocess_time_recorded(self, cora_samples):
        timers = TimerRegistry()
        batches = self._batches(cora_samples)
        list(BatchPipeline(batches, 2, timers=timers))
        assert timers["preprocess"].count == len(batches)
        assert timers["preprocess"].total > 0
