"""Parameter servers: sharding, consistency modes, distributed training,
and the calibrated speedup simulator."""

import threading

import numpy as np
import pytest

from repro.core.graphflat import GraphFlatConfig, graph_flat
from repro.core.trainer import TrainerConfig
from repro.nn.gnn import GCNModel
from repro.ps import (
    ClusterModel,
    DistributedConfig,
    DistributedTrainer,
    ParameterServerGroup,
    simulate_speedup,
)
from repro.ps.simulate import simulate_epoch_seconds


def small_state(rng=None):
    rng = rng or np.random.default_rng(0)
    return {
        "layer.weight": rng.standard_normal((4, 3)).astype(np.float32),
        "layer.bias": np.zeros(3, dtype=np.float32),
        "head.weight": rng.standard_normal((3, 2)).astype(np.float32),
    }


class TestServerGroup:
    def test_pull_returns_initial_state(self):
        group = ParameterServerGroup(num_servers=3, num_workers=1)
        state = small_state()
        group.initialize(state)
        pulled = group.pull()
        assert set(pulled) == set(state)
        for name in state:
            np.testing.assert_allclose(pulled[name], state[name])

    def test_params_spread_across_shards(self):
        group = ParameterServerGroup(num_servers=2, num_workers=1)
        group.initialize(small_state())
        held = [len(s.values) for s in group.shards]
        assert sum(held) == 3

    def test_push_moves_parameters(self):
        group = ParameterServerGroup(num_servers=2, num_workers=1, lr=0.1)
        group.initialize(small_state())
        grads = {name: np.ones_like(v) for name, v in group.pull().items()}
        before = group.pull()
        group.push(0, grads)
        after = group.pull()
        assert any(np.abs(after[n] - before[n]).max() > 0 for n in before)

    def test_uninitialized_rejected(self):
        group = ParameterServerGroup()
        with pytest.raises(RuntimeError):
            group.pull()

    def test_pull_returns_copies(self):
        group = ParameterServerGroup(num_servers=1, num_workers=1)
        group.initialize(small_state())
        pulled = group.pull()
        pulled["layer.bias"][...] = 77.0
        assert group.pull()["layer.bias"].max() == 0.0

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ParameterServerGroup(mode="eventual")

    def test_worker_id_validated(self):
        group = ParameterServerGroup(num_workers=2)
        group.initialize(small_state())
        with pytest.raises(ValueError):
            group.push(5, {})


class TestBSP:
    def test_barrier_applies_mean_once(self):
        group = ParameterServerGroup(
            num_servers=1, num_workers=3, optimizer="sgd", lr=1.0, mode="bsp"
        )
        group.initialize({"w": np.zeros(1, dtype=np.float32)})
        grads = [np.array([3.0]), np.array([6.0]), np.array([0.0])]

        threads = [
            threading.Thread(target=group.push, args=(i, {"w": grads[i]}))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # one SGD step with the averaged gradient (3+6+0)/3 = 3 -> w = -3
        np.testing.assert_allclose(group.pull()["w"], [-3.0])
        assert group.shards[0].applied_updates == 1


class TestSSP:
    def test_fast_worker_blocks_until_slow_catches_up(self):
        group = ParameterServerGroup(
            num_servers=1, num_workers=2, optimizer="sgd", lr=0.1, mode="ssp", staleness=1
        )
        group.initialize({"w": np.zeros(1, dtype=np.float32)})
        order: list[str] = []

        def fast():
            for i in range(4):
                group.push(0, {"w": np.ones(1, dtype=np.float32)})
                order.append(f"fast{i}")

        def slow():
            import time

            time.sleep(0.15)
            group.push(1, {"w": np.ones(1, dtype=np.float32)})
            order.append("slow0")
            group.finish_worker(1)

        t1, t2 = threading.Thread(target=fast), threading.Thread(target=slow)
        t1.start(), t2.start()
        t1.join(timeout=5), t2.join(timeout=5)
        assert not t1.is_alive() and not t2.is_alive()
        # fast worker got at most staleness+1=2 pushes ahead before slow0
        assert order.index("slow0") <= 2


class TestDistributedTrainer:
    @pytest.fixture(scope="class")
    def flat(self):
        from repro.datasets import cora_like

        ds = cora_like(seed=7, num_nodes=300, num_edges=900)
        config = GraphFlatConfig(hops=1, max_neighbors=20, hub_threshold=10**9)
        train = graph_flat(ds.nodes, ds.edges, ds.train_ids, config).samples
        val = graph_flat(ds.nodes, ds.edges, ds.val_ids[:30], config).samples
        return ds, train, val

    @pytest.mark.parametrize("mode", ["async", "bsp", "ssp"])
    def test_multiworker_converges(self, flat, mode):
        ds, train, val = flat
        factory = lambda: GCNModel(ds.feature_dim, 8, ds.num_classes, num_layers=1, seed=4)
        trainer = DistributedTrainer(
            factory,
            TrainerConfig(batch_size=4, epochs=4, lr=0.02, seed=1),
            DistributedConfig(num_workers=3, num_servers=2, mode=mode),
        )
        history = trainer.fit(train, val_samples=val)
        assert history[-1]["loss"] < history[0]["loss"]
        assert history[-1]["val_metric"] > 1.0 / ds.num_classes

    def test_too_few_samples_rejected(self, flat):
        ds, train, _ = flat
        factory = lambda: GCNModel(ds.feature_dim, 8, ds.num_classes, num_layers=1, seed=4)
        trainer = DistributedTrainer(
            factory,
            TrainerConfig(batch_size=4, epochs=1),
            DistributedConfig(num_workers=8),
        )
        with pytest.raises(ValueError):
            trainer.fit(train[:3])

    def test_partition_disjoint_and_complete(self, flat):
        ds, train, _ = flat
        factory = lambda: GCNModel(ds.feature_dim, 8, ds.num_classes, num_layers=1, seed=4)
        trainer = DistributedTrainer(
            factory, TrainerConfig(batch_size=4), DistributedConfig(num_workers=3)
        )
        from repro.core.trainer import decode_samples

        samples = decode_samples(train)
        shards = trainer.partition(samples)
        ids = [s.target_id for shard in shards for s in shard]
        assert sorted(ids) == sorted(s.target_id for s in samples)


class TestSimulator:
    MODEL = ClusterModel(batch_compute_seconds=0.05, batch_payload_mb=0.5)

    def test_one_worker_baseline(self):
        t = simulate_epoch_seconds(self.MODEL, num_batches=100, num_workers=1)
        assert t > 100 * 0.05  # compute plus transaction overhead

    def test_speedup_monotone_then_saturates(self):
        speedups = simulate_speedup(self.MODEL, 400, [1, 2, 4, 8, 16, 32])
        values = list(speedups.values())
        assert values[0] == pytest.approx(1.0, abs=0.15)  # jitter draws differ
        assert all(b > a * 0.9 for a, b in zip(values, values[1:]))  # grows
        assert speedups[32] < 32  # sublinear

    def test_near_linear_regime_slope(self):
        """In the unsaturated regime the slope should be around the paper's
        ~0.8 (we accept 0.6-1.0 — shape, not absolute)."""
        speedups = simulate_speedup(self.MODEL, 1000, [10, 20, 50, 100])
        for w, s in speedups.items():
            assert 0.55 * w <= s <= 1.0 * w

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            simulate_epoch_seconds(self.MODEL, 10, 0)

    def test_deterministic_given_seed(self):
        a = simulate_epoch_seconds(self.MODEL, 200, 7, seed=5)
        b = simulate_epoch_seconds(self.MODEL, 200, 7, seed=5)
        assert a == b
